#!/usr/bin/env python3
"""Docs link checker: fail on dead *relative* links in markdown files.

Scans ``README.md`` and ``docs/*.md`` (or the files passed as arguments)
for markdown links and image references, and verifies that every
relative target resolves to a real file or directory in the repository.
External links (``http://``, ``https://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped — this tool guards against
the docs rot the observability PR is meant to prevent, not network
flakiness.  Exit code 1 lists every dead link; 0 means the docs are
internally consistent.

Used by CI (see ``.github/workflows/ci.yml``) and by
``tests/test_docs_links.py``, which share :func:`check_files`.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Sequence, Tuple

#: inline markdown links/images: [text](target) / ![alt](target)
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: targets that are not files in this repository.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text: str) -> List[str]:
    """Every link target in one markdown document, in order."""
    return [match.group(1) for match in _LINK.finditer(text)]


def is_checkable(target: str) -> bool:
    """Whether a link target is a repository-relative path we can verify."""
    if target.startswith(_EXTERNAL):
        return False
    if target.startswith("#"):
        return False  # in-page anchor
    return True


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Dead relative links in one markdown file, as (target, reason)."""
    problems: List[Tuple[str, str]] = []
    text = path.read_text(encoding="utf-8")
    for target in iter_links(text):
        if not is_checkable(target):
            continue
        # Strip an anchor suffix: docs/internals.md#section checks the file.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append((target, f"{resolved} does not exist"))
    return problems


def default_docs(root: Path) -> List[Path]:
    """The markdown set CI checks: README.md plus everything in docs/."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_files(paths: Sequence[Path]) -> List[str]:
    """Human-readable problem lines for every dead link in ``paths``."""
    report: List[str] = []
    for path in paths:
        for target, reason in check_file(path):
            report.append(f"{path}: dead link {target!r} ({reason})")
    return report


def main(argv: Sequence[str]) -> int:
    """CLI entry point; prints problems and returns the exit code."""
    root = Path(__file__).resolve().parent.parent
    paths = [Path(arg) for arg in argv] if argv else default_docs(root)
    problems = check_files(paths)
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"{len(problems)} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(paths)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
