#!/usr/bin/env python3
"""CI regression gate over an E18 epoch-windowing JSON artifact.

Reads the ``BENCH_e18.json`` written by ``pres bench e18 --json`` and
fails (exit 1) when epoch-windowed recording has regressed:

* any bug's epoch walk failed to reproduce within the attempt cap;
* any bug's epoch walk needed *more* attempts than the full-history
  baseline on the same production run — last-epoch replay must never be
  a diagnosability downgrade;
* a long-running server bug's windowed log is not *strictly* smaller
  than the full-history log — the entire point of the rolling window;
* a server bug's report was not byte-identical across ``--jobs`` arms
  or across window sizes K and K+1 — the determinism contracts.

Used by the ``epoch-gate`` CI job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List


def check(data: Dict[str, Any]) -> List[str]:
    """Every gate failure in ``data`` (an E18 BenchResult JSON dict)."""
    failures: List[str] = []
    records = data.get("records", [])
    if not records:
        return ["no bugs in the artifact (records is empty)"]

    for row in records:
        bug = row.get("bug", "?")
        if not row.get("windowed_success", False):
            failures.append(
                f"{bug}: epoch-windowed reproduction failed "
                f"(>{row.get('windowed_attempts', '?')} attempts)"
            )
        elif row.get("full_success", False) and (
            int(row.get("windowed_attempts", 0))
            > int(row.get("full_attempts", 0))
        ):
            failures.append(
                f"{bug}: epoch walk needed {row.get('windowed_attempts')} "
                f"attempt(s) vs {row.get('full_attempts')} from full "
                "history — last-epoch replay regressed"
            )
        if row.get("server_bug", False):
            if int(row.get("windowed_bytes", 0)) >= int(
                row.get("full_bytes", 0)
            ):
                failures.append(
                    f"{bug}: windowed log ({row.get('windowed_bytes')} B) "
                    f"is not strictly smaller than full history "
                    f"({row.get('full_bytes')} B)"
                )
            if row.get("jobs_identical") is not True:
                failures.append(
                    f"{bug}: report is not byte-identical across --jobs "
                    "arms"
                )
            if row.get("window_identical") is not True:
                failures.append(
                    f"{bug}: report is not byte-identical across window "
                    "K vs K+1"
                )
    return failures


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: check_epochs.py BENCH_e18.json", file=sys.stderr)
        return 2
    path = Path(argv[0])
    data = json.loads(path.read_text(encoding="utf-8"))
    for row in data.get("records", []):
        print(
            f"  {row.get('bug', '?'):>20}: "
            f"{row.get('windowed_bytes', '?')}/{row.get('full_bytes', '?')} B, "
            f"attempts {row.get('windowed_attempts', '?')} vs "
            f"{row.get('full_attempts', '?')}, "
            f"from {row.get('reproduced_from') or 'nowhere'}"
        )
    failures = check(data)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("epoch gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
