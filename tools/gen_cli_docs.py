#!/usr/bin/env python3
"""Generate ``docs/cli.md`` from the live argument parser.

The CLI reference is rendered straight out of ``repro.cli.build_parser``
— every subcommand's ``--help`` text, including the nested ``pres
store`` subcommands — so the page cannot drift from the code without CI
noticing: ``tools/check_docs.py`` regenerates the text and fails when
the committed page differs.

Deterministic by construction: ``COLUMNS`` is pinned before argparse
ever computes a terminal width, and argparse output is itself a pure
function of the parser.  Run from the repository root::

    PYTHONPATH=src python tools/gen_cli_docs.py          # write docs/cli.md
    PYTHONPATH=src python tools/gen_cli_docs.py --stdout # print instead
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# argparse wraps help text to the terminal; pin it before importing the
# parser so local runs and CI render identical bytes.
os.environ["COLUMNS"] = "80"

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import build_parser  # noqa: E402  (path set up above)

HEADER = """\
# CLI reference

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: PYTHONPATH=src python tools/gen_cli_docs.py
     CI fails when this page drifts from `pres --help`
     (tools/check_docs.py). -->

Every `pres` subcommand, rendered from the live argument parser.
`pres` and `python -m repro` are the same entry point.
"""


def _subparsers(
    parser: argparse.ArgumentParser,
) -> Iterator[Tuple[str, argparse.ArgumentParser]]:
    """(name, parser) for each subcommand, in declaration order."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                yield name, sub


def render() -> str:
    """The whole reference page as one markdown string."""
    parser = build_parser()
    sections: List[str] = [HEADER]
    sections.append("## `pres`\n\n```\n" + parser.format_help() + "```\n")
    for name, sub in _subparsers(parser):
        sections.append(
            f"## `pres {name}`\n\n```\n" + sub.format_help() + "```\n"
        )
        for nested_name, nested in _subparsers(sub):
            sections.append(
                f"### `pres {name} {nested_name}`\n\n```\n"
                + nested.format_help() + "```\n"
            )
    return "\n".join(sections)


def main(argv) -> int:
    text = render()
    if "--stdout" in argv:
        sys.stdout.write(text)
        return 0
    out = ROOT / "docs" / "cli.md"
    out.write_text(text, encoding="utf-8")
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
