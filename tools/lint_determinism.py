#!/usr/bin/env python3
"""Determinism lint: flag nondeterminism hazards in the replay stack.

PRES's core contract is that every reproduction session is a pure
function of its inputs (sketch log, seeds, batch size) — results must
not depend on wall-clock time, global RNG state, hash order, or object
identity.  This linter walks Python ASTs and flags the patterns that
historically break that contract:

* **wall-clock reads** — ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` / ``datetime.utcnow()`` / ``datetime.today()``.
  (``time.perf_counter`` and ``time.monotonic`` are *not* flagged: they
  measure durations for benchmarks/observability and never feed replay
  decisions.)
* **unseeded global randomness** — any call through the ``random``
  *module* (``random.random()``, ``random.shuffle()``, ...).  Replay
  code must use an explicitly seeded ``random.Random(seed)`` instance.

Module and attribute rules see through import bindings: ``import time
as t`` / ``t.time()``, ``from time import time`` / ``time()``, and
``from random import shuffle`` / ``shuffle(xs)`` all resolve to the
same ``(module, attr)`` pairs the rules match on (``from random import
Random`` stays exempt — a seeded instance is the sanctioned spelling).
Relative imports are ignored: they cannot name the watched stdlib
modules.
* **unordered iteration feeding ordered output** — ``for`` loops and
  comprehensions that iterate a syntactic set (literal, comprehension,
  or ``set()``/``frozenset()`` call) without wrapping it in
  ``sorted(...)``.  Set iteration order depends on insertion and hash
  history; anything derived from it is schedule-dependent.
* **object-identity ordering** — ``id`` used as (or inside) a sort key
  (``sorted(xs, key=id)``).  CPython ids are allocation addresses;
  ordering by them differs run to run.
* **unsorted directory listings** — ``os.listdir(...)``,
  ``os.scandir(...)``, or ``.iterdir()`` calls not wrapped directly in
  ``sorted(...)``.  Listing order is filesystem-dependent (and differs
  across hosts even for identical trees), so anything derived from an
  unsorted listing — shard load order, GC scan order — is
  host-dependent.  The attempt store (:mod:`repro.store`) depends on
  this rule for its deterministic-GC contract.
* **re-sorting an already-canonical set in a loop** —
  ``canonical_order(...)`` called inside a ``for``/``while`` body or a
  ``lambda`` body (sort keys run once per element).  The canonical sort
  is deterministic but not free; hot paths must sort each constraint
  set once per session via
  :func:`repro.core.constraints.ordered_constraints` (or an equivalent
  memo) instead of re-sorting per attempt.  Calls in a loop *header*
  or a comprehension's iterable position run once and are fine.
* **clocks in the service layer** — any monotonic-timer read (or an
  event loop's ``loop.time()``) inside ``src/repro/service/``.  A job's
  report must be a pure function of its request, and the queue must
  order on admission sequence numbers — never on timestamps — so the
  service layer gets the strictest clock rule: even monotonic reads are
  flagged unless the line carries the pragma (reserved for latency
  *measurement*, which is reported beside job state, never inside it).
  Wall-clock reads there are flagged by the wall-clock rule as usual.
* **clock-driven retry decisions** — ``time.monotonic()`` /
  ``time.perf_counter()`` (and their ``_ns`` variants) inside functions
  whose names mention ``retry``, ``backoff``, ``deadline``, or
  ``timeout``.  Monotonic timers are fine for *measuring*, but a retry
  or backoff decision derived from one makes fault handling
  load-dependent.  All such decisions belong in the supervision module
  (``robust/supervise.py``, the rule's one exempt file), which keeps
  them functions of the attempt index and configuration alone.

A line can opt out with a trailing ``# determinism: ok`` comment — for
code that *measures* time rather than deciding on it, or iterates a set
where order provably cannot escape.  Exit code 1 lists every violation;
0 means the scanned tree is clean.  Used by CI next to the docs link
checker and by ``tests/test_determinism_lint.py``, which share
:func:`lint_paths`.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence

#: trailing comment that suppresses findings on its line.
PRAGMA = "# determinism: ok"

#: (module, attribute) call pairs that read the wall clock.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

#: callables whose ``key=`` argument orders things.
_ORDERING_CALLS = {"sorted", "sort", "min", "max"}

#: (module, attribute) call pairs that read a monotonic timer.
_MONOTONIC_CLOCK = {
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
}

#: function-name fragments that mark retry/deadline decision logic.
_RETRY_NAMES = ("retry", "backoff", "deadline", "timeout")

#: the one module allowed to time out and retry attempts: supervision
#: keeps its decisions deterministic by construction (see its tests).
_RETRY_CLOCK_EXEMPT = "robust/supervise.py"

#: files under this fragment get the strictest clock rule (service-clock).
_SERVICE_PATH_FRAGMENT = "repro/service/"


@dataclass(frozen=True)
class Violation:
    """One determinism hazard at a specific source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """Format as ``path:line: [rule] message`` for tool output."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _import_bindings(tree: ast.AST):
    """Map a module's local names to what they import.

    Returns ``(modules, members)``: ``modules`` maps a local name to the
    module it names (``import time as t`` binds ``t`` to ``time``;
    ``import os.path`` binds ``os`` to ``os``), and ``members`` maps a
    local name to its ``(module, attr)`` origin (``from time import
    time``, ``from random import shuffle as mix``).  Relative and
    star imports are skipped — they cannot name the stdlib modules the
    rules watch.  Bindings are collected module-wide without scope
    tracking: a linter over-approximates, and the pragma is the escape
    hatch for a genuinely shadowed name.
    """
    modules = {}
    members = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if alias.asname is not None:
                    modules[alias.asname] = alias.name
                else:
                    modules[top] = top
        elif isinstance(node, ast.ImportFrom) and not node.level and node.module:
            for alias in node.names:
                if alias.name != "*":
                    members[alias.asname or alias.name] = (
                        node.module, alias.name
                    )
    return modules, members


def _attr_call(node: ast.Call):
    """The (module_name, attr_name) of a ``module.attr(...)`` call."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def _is_set_expression(node: ast.AST) -> bool:
    """Whether a node is syntactically a set (literal, comp, or call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _uses_id_name(node: ast.AST) -> bool:
    """Whether the builtin name ``id`` appears anywhere under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == "id":
            return True
    return False


class _Checker(ast.NodeVisitor):
    """Collect determinism hazards from one module's AST."""

    def __init__(self, path: str, modules=None, members=None) -> None:
        self.path = path
        #: local name -> imported module (``import time as t``).
        self._modules = modules or {}
        #: local name -> (module, attr) origin (``from time import time``).
        self._members = members or {}
        self.violations: List[Violation] = []
        #: argument nodes of a ``sorted(...)`` call currently in scope;
        #: a directory-listing call found here is sanctioned.  Works
        #: because a parent Call is visited before its children.
        self._sorted_args: set = set()
        #: enclosing function names, innermost last.
        self._func_stack: List[str] = []
        #: nesting depth of loop/lambda bodies (re-sort hot paths).
        self._repeat_depth = 0

    def _resolve_call(self, node: ast.Call):
        """The (module, attr) a call resolves to, following imports.

        ``module.attr(...)`` resolves the receiver through import
        aliases (``t.time()`` after ``import time as t`` is ``("time",
        "time")``) and from-imported members (``dt.now()`` after ``from
        datetime import datetime as dt`` is ``("datetime", "now")``);
        a bare call resolves through from-import bindings
        (``shuffle(xs)`` after ``from random import shuffle`` is
        ``("random", "shuffle")``).
        """
        pair = _attr_call(node)
        if pair is not None:
            receiver, attr = pair
            if receiver in self._modules:
                return self._modules[receiver], attr
            if receiver in self._members:
                return self._members[receiver][1], attr
            return receiver, attr
        if isinstance(node.func, ast.Name):
            return self._members.get(node.func.id)
        return None

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, node.lineno, rule, message)
        )

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if _is_set_expression(iter_node):
            self._flag(
                iter_node,
                "set-iteration",
                "iterating a set in hash order; wrap it in sorted(...)",
            )

    def _check_dir_listing(self, node: ast.Call, pair) -> None:
        listing = None
        if pair is not None and pair[0] == "os" and pair[1] in ("listdir", "scandir"):
            listing = f"os.{pair[1]}(...)"
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "iterdir":
            listing = ".iterdir()"
        if listing is not None and id(node) not in self._sorted_args:
            self._flag(
                node,
                "unsorted-dir-listing",
                f"{listing} yields entries in filesystem order, which "
                "differs across hosts; wrap the call in sorted(...)",
            )

    def visit_Call(self, node: ast.Call) -> None:
        pair = self._resolve_call(node)
        if isinstance(node.func, ast.Name) and node.func.id == "sorted":
            self._sorted_args.update(id(arg) for arg in node.args)
        self._check_dir_listing(node, pair)
        if pair in _WALL_CLOCK:
            self._flag(
                node,
                "wall-clock",
                f"{pair[0]}.{pair[1]}() reads the wall clock; results "
                "must be pure functions of their inputs",
            )
        elif (
            _SERVICE_PATH_FRAGMENT in self.path.replace("\\", "/")
            and (
                pair in _MONOTONIC_CLOCK
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "time"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id.endswith("loop")
                )
            )
        ):
            where = (
                f"{pair[0]}.{pair[1]}()" if pair in _MONOTONIC_CLOCK
                else f"{node.func.value.id}.time()"
            )
            self._flag(
                node,
                "service-clock",
                f"{where} in the service layer: job reports and queue "
                "order must not depend on any clock (queues key on "
                "admission sequence numbers); latency measurement needs "
                "the explicit pragma",
            )
        elif (
            pair in _MONOTONIC_CLOCK
            and not self.path.replace("\\", "/").endswith(_RETRY_CLOCK_EXEMPT)
            and any(
                fragment in name.lower()
                for name in self._func_stack
                for fragment in _RETRY_NAMES
            )
        ):
            self._flag(
                node,
                "retry-clock",
                f"{pair[0]}.{pair[1]}() inside "
                f"{self._func_stack[-1]}(): retry/backoff/deadline "
                "decisions must derive from the attempt index and "
                "configuration, not a clock (supervision logic belongs "
                "in robust/supervise.py)",
            )
        elif pair is not None and pair[0] == "random" and pair[1] != "Random":
            self._flag(
                node,
                "global-random",
                f"random.{pair[1]}() uses the unseeded global RNG; use "
                "an explicit random.Random(seed) instance",
            )
        name = node.func.attr if isinstance(node.func, ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        if name == "canonical_order" and self._repeat_depth > 0:
            self._flag(
                node,
                "canonical-resort",
                "canonical_order(...) inside a loop or lambda body "
                "re-sorts per iteration; sort once per session via "
                "ordered_constraints (or a local memo)",
            )
        if name in _ORDERING_CALLS:
            for keyword in node.keywords:
                if keyword.arg == "key" and _uses_id_name(keyword.value):
                    self._flag(
                        node,
                        "id-ordering",
                        f"{name}(..., key=id) orders by allocation "
                        "address, which differs run to run",
                    )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def _visit_repeated(self, nodes) -> None:
        """Visit statements whose bodies re-run per iteration/element."""
        self._repeat_depth += 1
        for child in nodes:
            self.visit(child)
        self._repeat_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        # the header runs once; only the body repeats.
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_repeated(node.body + node.orelse)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_repeated(node.body + node.orelse)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_repeated(node.body + node.orelse)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # sort/filter keys: the body runs once per element.
        self._visit_repeated([node.body])

    def visit_comprehension_node(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_node
    visit_SetComp = visit_comprehension_node
    visit_DictComp = visit_comprehension_node
    visit_GeneratorExp = visit_comprehension_node


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one module's source text; pragma-suppressed lines excluded."""
    tree = ast.parse(source, filename=path)
    modules, members = _import_bindings(tree)
    checker = _Checker(path, modules, members)
    checker.visit(tree)
    lines = source.splitlines()
    kept = []
    for violation in checker.violations:
        line_text = (
            lines[violation.line - 1] if violation.line <= len(lines) else ""
        )
        if PRAGMA not in line_text:
            kept.append(violation)
    return kept


def lint_file(path: Path) -> List[Violation]:
    """Lint one Python file."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into the Python files beneath them."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: Sequence[Path]) -> List[Violation]:
    """Every violation under the given files/directories, in path order."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations


def default_targets(root: Path) -> List[Path]:
    """The tree CI lints: the installable package, the tools, and the
    benchmark harnesses (published tables must be as reproducible as the
    replays they measure)."""
    return [root / "src", root / "tools", root / "benchmarks"]


def main(argv: Sequence[str]) -> int:
    """CLI entry point; prints violations and returns the exit code."""
    root = Path(__file__).resolve().parent.parent
    paths = [Path(arg) for arg in argv] if argv else default_targets(root)
    violations = lint_paths(paths)
    for violation in violations:
        print(violation.render(), file=sys.stderr)
    if violations:
        print(f"{len(violations)} determinism hazard(s)", file=sys.stderr)
        return 1
    checked = sum(1 for _ in iter_python_files(paths))
    print(f"checked {checked} file(s): no determinism hazards")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
