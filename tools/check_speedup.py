#!/usr/bin/env python3
"""CI regression gate over an E12 speedup JSON artifact.

Reads the ``BENCH_e12.json`` written by ``pres bench e12 --json`` and
fails (exit 1) when the parallel engine has regressed:

* any arm reports ``matches_serial: false`` — the deterministic-merge
  contract broke, which is a correctness bug whatever the wall times;
* the ``pool jobs=4`` arm's wall speedup fell below the floor
  (default 1.5x — the CI runner has spare cores, so the warm pool must
  actually beat serial);
* the ``pool jobs=4`` arm made no schedule-prefix resumes
  (``prefix_hits == 0``) — the memoization path silently stopped
  engaging.

The speedup floor is only enforced when the host really had more usable
cores than the arm asked for (``meta.host_cpus``); on a starved runner
the gate reports the measurement but only the correctness checks fail
the build.  Used by the ``speedup-gate`` CI job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List

#: minimum acceptable wall speedup for the widest pool arm on a
#: multi-core runner (ISSUE acceptance asks for >2x; the gate floor is
#: deliberately looser so runner noise cannot flake the build).
SPEEDUP_FLOOR = 1.5
GATED_ARM = "pool jobs=4"


def check(data: Dict[str, Any], floor: float = SPEEDUP_FLOOR) -> List[str]:
    """Every gate failure in ``data`` (an E12 BenchResult JSON dict)."""
    failures: List[str] = []
    records = data.get("records", [])
    meta = data.get("meta", {})
    if not records:
        return ["no arms in the artifact (records is empty)"]

    for arm in records:
        if not arm.get("matches_serial", False):
            failures.append(
                f"{arm.get('label', '?')}: matches_serial is false — "
                "the deterministic-merge contract broke"
            )

    gated = next((a for a in records if a.get("label") == GATED_ARM), None)
    if gated is None:
        failures.append(f"artifact has no '{GATED_ARM}' arm")
        return failures

    host_cpus = int(meta.get("host_cpus", 0))
    enough_cores = host_cpus >= int(gated.get("jobs", 0))
    speedup = float(gated.get("speedup", 0.0))
    if enough_cores and speedup < floor:
        failures.append(
            f"{GATED_ARM}: speedup {speedup:.2f}x is below the "
            f"{floor:.1f}x floor on a {host_cpus}-core host"
        )
    if int(gated.get("prefix_hits", 0)) <= 0:
        failures.append(
            f"{GATED_ARM}: prefix_hits is 0 — schedule-prefix "
            "memoization never engaged"
        )
    return failures


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: check_speedup.py BENCH_e12.json", file=sys.stderr)
        return 2
    path = Path(argv[0])
    data = json.loads(path.read_text(encoding="utf-8"))
    meta = data.get("meta", {})
    if "warning" in meta:
        print(f"note: {meta['warning']}")
    for arm in data.get("records", []):
        print(
            f"  {arm.get('label', '?'):>16}: {arm.get('speedup', 0):>6}x, "
            f"prefix_hits={arm.get('prefix_hits', 0)}, "
            f"matches_serial={arm.get('matches_serial')}"
        )
    failures = check(data)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("speedup gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
