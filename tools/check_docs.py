#!/usr/bin/env python3
"""Docs drift gate: generated pages current, every page reachable.

Two checks, both cheap enough to run on every CI push:

* **CLI reference drift** — regenerate the reference from the live
  parser (``tools/gen_cli_docs.py``) and compare against the committed
  ``docs/cli.md``.  A new flag or subcommand that lands without
  regenerating the page fails here, with the exact command to run.
* **README coverage** — every page under ``docs/`` must be linked from
  ``README.md`` (the architecture map / documentation section).  A page
  nobody can navigate to is a page that rots.

Exit code 1 lists every problem; 0 means the docs are current.  Used by
CI next to ``tools/check_links.py`` and by
``tests/service/test_docs_drift.py``, which share :func:`check_docs`.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import gen_cli_docs  # noqa: E402  (path set up above)

REGEN_HINT = "PYTHONPATH=src python tools/gen_cli_docs.py"


def check_cli_reference(root: Path = ROOT) -> List[str]:
    """Problems with the generated CLI page (empty list = current)."""
    page = root / "docs" / "cli.md"
    if not page.exists():
        return [f"docs/cli.md is missing; generate it with: {REGEN_HINT}"]
    committed = page.read_text(encoding="utf-8")
    current = gen_cli_docs.render()
    if committed != current:
        return [
            "docs/cli.md is stale (the parser changed); regenerate "
            f"with: {REGEN_HINT}"
        ]
    return []


def check_readme_coverage(root: Path = ROOT) -> List[str]:
    """docs/ pages the README never links to (empty list = all covered)."""
    readme = (root / "README.md").read_text(encoding="utf-8")
    problems = []
    for page in sorted((root / "docs").glob("*.md")):
        target = f"docs/{page.name}"
        if target not in readme:
            problems.append(
                f"{target} is not linked from README.md; add it to the "
                "documentation section / architecture map"
            )
    return problems


def check_docs(root: Path = ROOT) -> List[str]:
    """Every docs problem, CLI drift first."""
    return check_cli_reference(root) + check_readme_coverage(root)


def main() -> int:
    problems = check_docs()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} docs problem(s)", file=sys.stderr)
        return 1
    print("docs current: CLI reference matches the parser, "
          "README links every docs page")
    return 0


if __name__ == "__main__":
    sys.exit(main())
