"""miniLU: a SPLASH-2-style blocked LU factorization with an injected
atomicity bug.

Structure follows the SPLASH-2 LU kernel: the matrix is split into blocks
owned by workers; each elimination step updates the owned blocks (real
integer arithmetic) and accumulates each block's contribution into the
shared pivot accumulator, with a barrier between steps.

Injected bug: the accumulator update is lock-protected on every step
*except the last*, where a hand-optimized fast path does the classic
read-compute-write without the lock ("the barrier is right there anyway").
Two workers in the window lose an update; the factorization check at the
end ("accumulated pivot == sequential result") fails.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.spec import ATOMICITY, SCIENTIFIC, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext

_MOD = 65_521


def _block_update(step: int, wid: int, value: int) -> int:
    """Per-step in-place block elimination (exact integer stand-in)."""
    return (value * (step + 2) + wid * 13 + 5) % _MOD


def _block_contribution(value: int) -> int:
    """This block's contribution to the pivot accumulator."""
    return (value * 7 + 11) % _MOD


def expected_pivot(workers: int, cells: int, steps: int) -> int:
    """Sequentially computed final accumulator value."""
    pivot = 1
    blocks = {
        (w, c): (w * cells + c + 1) % _MOD
        for w in range(workers)
        for c in range(cells)
    }
    for step in range(steps):
        for w in range(workers):
            for c in range(cells):
                blocks[(w, c)] = _block_update(step, w, blocks[(w, c)])
            contribution = sum(
                _block_contribution(blocks[(w, c)]) for c in range(cells)
            ) % _MOD
            pivot = (pivot + contribution) % _MOD
    return pivot


def _lu_worker(ctx: ThreadContext, wid: int, cells: int, steps: int,
               compute: int, buggy: bool):
    for step in range(steps):
        yield ctx.bb(f"lu.w{wid}.step")
        contribution = 0
        for c in range(cells):
            value = yield ctx.read(("lu_block", wid, c))
            yield ctx.local(compute)
            # Block sizes differ per owner, so workers reach the pivot
            # update at staggered times (as in the real kernel).
            yield from ctx.work(2 + 3 * wid)
            updated = _block_update(step, wid, value)
            yield ctx.write(("lu_block", wid, c), updated)
            contribution = (contribution + _block_contribution(updated)) % _MOD
        last_step = step == steps - 1
        if buggy and last_step:
            # BUG: unlocked read-compute-write on the shared accumulator.
            pivot = yield ctx.read("lu_pivot")
            yield ctx.local(1)
            yield ctx.write("lu_pivot", (pivot + contribution) % _MOD)
        else:
            yield ctx.lock("lu_mu")
            pivot = yield ctx.read("lu_pivot")
            yield ctx.write("lu_pivot", (pivot + contribution) % _MOD)
            yield ctx.unlock("lu_mu")
        yield ctx.barrier("lu_step")
    return steps


def _main(ctx: ThreadContext, workers: int, cells: int, steps: int,
          compute: int, buggy: bool, expected: int):
    tids = yield from spawn_all(
        ctx, _lu_worker,
        [(w, cells, steps, compute, buggy) for w in range(workers)],
    )
    yield from join_all(ctx, tids)
    pivot = yield ctx.read("lu_pivot")
    yield ctx.output(("lu_pivot", pivot, "expected", expected))
    yield ctx.check(pivot == expected, "lu pivot accumulator lost an update")


def build_atom_diag(
    workers: int = 3,
    cells: int = 3,
    steps: int = 2,
    compute: int = 8,
    buggy: bool = True,
) -> Program:
    memory: Dict = {"lu_pivot": 1}
    for w in range(workers):
        for c in range(cells):
            memory[("lu_block", w, c)] = (w * cells + c + 1) % _MOD
    return Program(
        name="lu-atom-diag",
        main=_main,
        params={
            "workers": workers,
            "cells": cells,
            "steps": steps,
            "compute": compute,
            "buggy": buggy,
            "expected": expected_pivot(workers, cells, steps),
        },
        initial_memory=memory,
        barriers={"lu_step": workers},
    )


SPECS = [
    BugSpec(
        bug_id="lu-atom-diag",
        app="lu",
        category=SCIENTIFIC,
        bug_type=ATOMICITY,
        build=build_atom_diag,
        default_params={},
        description="last-step pivot accumulation skips the lock and loses updates (injected)",
        fixed_params={"buggy": False},
    ),
]
