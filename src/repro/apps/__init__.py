"""The evaluation application suite.

Faithful miniatures of the paper's 11 applications, rebuilt against the
simulator API with the same threading structure and the same bug patterns
as the real bug reports (see DESIGN.md for the substitution argument):

* servers — :mod:`mysql`, :mod:`apache`, :mod:`openldap`, :mod:`cherokee`;
* desktop/client — :mod:`mozilla`, :mod:`pbzip2`, :mod:`httrack`;
* scientific/graphics — :mod:`fft`, :mod:`lu`, :mod:`barnes`, :mod:`radix`.

Thirteen bugs across them: atomicity violations (single- and
multi-variable), order violations and a deadlock.  Everything is indexed
by :mod:`repro.apps.registry`.
"""

from repro.apps.registry import (
    ALL_BUG_IDS,
    BugSpec,
    all_bugs,
    bugs_by_category,
    get_bug,
)

__all__ = [
    "ALL_BUG_IDS",
    "BugSpec",
    "all_bugs",
    "bugs_by_category",
    "get_bug",
]
