"""miniOpenLDAP: a directory server miniature with a lock-order deadlock.

Structure: per-connection handler threads process operations on their
connection; a single writer thread flushes responses back to connections.
The handler path locks ``conn_<i>`` then (to enqueue a response) the
global ``writer_mu``; the writer thread locks ``writer_mu`` then the
target ``conn_<j>`` — the classic lock-order inversion seen in OpenLDAP's
connection manager (ITS#3932 class).  When the writer picks connection j
exactly while handler j sits between its two acquisitions, both block
forever: a DEADLOCK failure with the two mutexes in the cycle.

``bug-free`` variants for tests can pass ``inversion=False`` to make the
writer release ``writer_mu`` before touching the connection.
"""

from __future__ import annotations

from repro.apps.spec import DEADLOCK, SERVER, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext


def _handler(ctx: ThreadContext, cid: int, ops: int):
    for op in range(ops):
        yield ctx.bb(f"ldap.conn{cid}.op")
        yield from ctx.work(14)  # decode the operation, search the directory
        needs_response = op == ops - 1  # only the final op sends a result
        yield ctx.lock(f"conn_{cid}")
        yield ctx.local(2)  # update per-connection state
        pending = yield ctx.read(("conn_pending", cid))
        yield ctx.write(("conn_pending", cid), pending + 1)
        if needs_response:
            # Enqueue the response with the writer: conn -> writer order.
            yield ctx.lock("writer_mu")
            queue = yield ctx.read("writer_queue")
            yield ctx.write("writer_queue", queue + [(cid, op)])
            yield ctx.unlock("writer_mu")
        yield ctx.unlock(f"conn_{cid}")
    return ops


def _writer(ctx: ThreadContext, conns: int, rounds: int, inversion: bool):
    flushed = 0
    for _ in range(rounds):
        yield ctx.bb("ldap.writer.round")
        yield from ctx.work(18)  # wait for epoll / batch responses
        target = yield ctx.rand(conns)
        if inversion:
            # BUG: writer -> conn order, inverted w.r.t. the handlers.
            yield ctx.lock("writer_mu")
            queue = yield ctx.read("writer_queue")
            yield ctx.local(1)
            yield ctx.lock(f"conn_{target}")
            pending = yield ctx.read(("conn_pending", target))
            if pending > 0:
                yield ctx.write(("conn_pending", target), pending - 1)
                yield ctx.syscall("send", f"client_{target}", "response")
                flushed += 1
            yield ctx.unlock(f"conn_{target}")
            yield ctx.write("writer_queue", queue[1:] if queue else [])
            yield ctx.unlock("writer_mu")
        else:
            # Fixed ordering: decide under writer_mu, act outside it.
            yield ctx.lock("writer_mu")
            queue = yield ctx.read("writer_queue")
            yield ctx.write("writer_queue", queue[1:] if queue else [])
            yield ctx.unlock("writer_mu")
            yield ctx.lock(f"conn_{target}")
            pending = yield ctx.read(("conn_pending", target))
            if pending > 0:
                yield ctx.write(("conn_pending", target), pending - 1)
                yield ctx.syscall("send", f"client_{target}", "response")
                flushed += 1
            yield ctx.unlock(f"conn_{target}")
    return flushed


def _main(ctx: ThreadContext, conns: int, ops: int, writer_rounds: int, inversion: bool):
    handlers = yield from spawn_all(
        ctx, _handler, [(cid, ops) for cid in range(conns)]
    )
    writer = yield ctx.spawn(_writer, conns, writer_rounds, inversion)
    yield from join_all(ctx, handlers)
    flushed = yield ctx.join(writer)
    yield ctx.output(("flushed", flushed))


def build_deadlock(
    conns: int = 3,
    ops: int = 3,
    writer_rounds: int = 2,
    inversion: bool = True,
) -> Program:
    memory: dict = {"writer_queue": []}
    for cid in range(conns):
        memory[("conn_pending", cid)] = 0
    return Program(
        name="openldap-deadlock",
        main=_main,
        params={
            "conns": conns,
            "ops": ops,
            "writer_rounds": writer_rounds,
            "inversion": inversion,
        },
        initial_memory=memory,
    )


SPECS = [
    BugSpec(
        bug_id="openldap-deadlock",
        app="openldap",
        category=SERVER,
        bug_type=DEADLOCK,
        build=build_deadlock,
        default_params={},
        description="conn->writer vs writer->conn lock-order inversion deadlocks handler and writer",
        fixed_params={"inversion": False},
    ),
]
