"""The bug registry: every evaluated bug, indexed by id.

This is the machine-readable version of the paper's Table 1: 11
applications (4 servers, 3 desktop/client, 4 scientific/graphics) and 13
real-world-pattern concurrency bugs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import (
    apache,
    barnes,
    cherokee,
    fft,
    httrack,
    lu,
    mozilla,
    mysql,
    openldap,
    pbzip2,
    radix,
)
from repro.apps.spec import BugSpec

_MODULES = (
    mysql,
    apache,
    openldap,
    cherokee,
    mozilla,
    pbzip2,
    httrack,
    fft,
    lu,
    barnes,
    radix,
)

_REGISTRY: Dict[str, BugSpec] = {}
for _module in _MODULES:
    for _spec in _module.SPECS:
        if _spec.bug_id in _REGISTRY:
            raise RuntimeError(f"duplicate bug id {_spec.bug_id}")
        _REGISTRY[_spec.bug_id] = _spec

#: All bug ids in suite order (servers, desktop, scientific).
ALL_BUG_IDS = tuple(_REGISTRY)


def get_bug(bug_id: str) -> BugSpec:
    """Look a bug up by id; raises KeyError with the valid ids."""
    try:
        return _REGISTRY[bug_id]
    except KeyError:
        known = ", ".join(ALL_BUG_IDS)
        raise KeyError(f"unknown bug {bug_id!r}; known bugs: {known}") from None


def all_bugs() -> List[BugSpec]:
    """Every spec, in suite order."""
    return [_REGISTRY[bug_id] for bug_id in ALL_BUG_IDS]


def bugs_by_category(category: str) -> List[BugSpec]:
    """Specs in one category (server / desktop / scientific), suite order."""
    return [spec for spec in all_bugs() if spec.category == category]


def apps() -> List[str]:
    """The 11 application names, in suite order, deduplicated."""
    seen: List[str] = []
    for spec in all_bugs():
        if spec.app not in seen:
            seen.append(spec.app)
    return seen
