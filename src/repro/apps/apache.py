"""miniApache: a worker-pool HTTP server with two real Apache bug patterns.

Structure: a listener thread accepts requests and distributes them over a
channel; worker threads receive, serve (simulated file read + compute) and
append an access-log entry to a shared in-memory buffer; a flusher thread
periodically writes the buffer out.

Bugs:

* ``apache-atom-buf`` — modeled after Apache bug #25520: the access-log
  append reads the buffer length, formats, then writes the slot and the
  new length — without holding the buffer mutex (the real code only
  locked the flush path).  Two workers in the window clobber the same
  slot and an entry disappears; the end-of-run audit "entries in buffer +
  entries flushed == requests served" fails.
* ``apache-order-ref`` — modeled after Apache bug #21287: a worker frees
  its request pool as soon as the response is sent, but the logger thread
  may still be reading fields out of that pool; the free is supposed to
  happen *after* the log write (order violation), and when it does not,
  the logger crashes on freed memory.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.apps.spec import ATOMICITY, ORDER, SERVER, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.ops import Op
from repro.sim.program import Program, ThreadContext

# --------------------------------------------------------------------------
# apache-atom-buf: access-log buffer atomicity violation
# --------------------------------------------------------------------------


def _serve(ctx: ThreadContext, req: int) -> Generator[Op, Any, None]:
    """Serve one request: locate the resource, read it, render."""
    yield from ctx.work(6)
    yield ctx.syscall("read_file", "htdocs", req % 4)
    yield from ctx.work(3)


def _log_append(ctx: ThreadContext, wid: int, req: int,
                locked: bool) -> Generator[Op, Any, None]:
    """Append an access-log line.

    The regular path locks the buffer; the error-log path (the real
    #25520 culprit) was written earlier and does the length read, format
    and writes with no lock — that unlocked window is the bug.
    """
    if locked:
        yield ctx.lock("LOCK_logbuf")
    n = yield ctx.read("ap_buf_len")
    yield ctx.local(2)  # format the log line (single step: snprintf)
    yield ctx.write(("ap_buf", n), (wid, req))
    yield ctx.write("ap_buf_len", n + 1)
    if locked:
        yield ctx.unlock("LOCK_logbuf")
    yield ctx.rmw("served", lambda v: v + 1)


def _buf_worker(ctx: ThreadContext, wid: int, bugfix: bool):
    while True:
        yield ctx.bb(f"apache.worker{wid}.accept")
        req = yield ctx.syscall("recv", "requests")
        if req is None:  # shutdown sentinel
            return wid
        yield from ctx.call(_serve, req, name="serve")
        is_error = req % 11 == 10  # 404s etc. go through the error path
        # The fix routes the error path through the mutex too.
        locked = bugfix or not is_error
        yield from ctx.call(_log_append, wid, req, locked, name="log_append")


def _listener(ctx: ThreadContext, requests: int, workers: int):
    for req in range(requests):
        yield ctx.bb("apache.listener.accept")
        yield from ctx.work(2)
        yield ctx.syscall("send", "requests", req)
    for _ in range(workers):
        yield ctx.syscall("send", "requests", None)


def _flusher(ctx: ThreadContext, flushes: int, flush_delay: int):
    for _ in range(flushes):
        yield ctx.bb("apache.flusher.cycle")
        yield from ctx.work(flush_delay)
        yield ctx.lock("LOCK_logbuf")
        n = yield ctx.read("ap_buf_len")
        for i in range(n):
            entry = yield ctx.read(("ap_buf", i))
            yield ctx.syscall("write_file", "access_log", entry)
        yield ctx.write("ap_buf_len", 0)
        yield ctx.rmw("flushed", lambda v, n=n: v + n)
        yield ctx.unlock("LOCK_logbuf")


def _atom_buf_main(ctx: ThreadContext, workers: int, requests: int,
                   flushes: int, flush_delay: int, bugfix: bool):
    listener = yield ctx.spawn(_listener, requests, workers)
    tids = yield from spawn_all(
        ctx, _buf_worker, [(w, bugfix) for w in range(workers)]
    )
    flusher = yield ctx.spawn(_flusher, flushes, flush_delay)
    yield ctx.join(listener)
    yield from join_all(ctx, tids)
    yield ctx.join(flusher)
    served = yield ctx.read("served")
    flushed = yield ctx.read("flushed")
    remaining = yield ctx.read("ap_buf_len")
    yield ctx.output(("served", served, "flushed", flushed, "buffered", remaining))
    yield ctx.check(
        flushed + remaining == served,
        "access-log entries lost in buffer race",
    )


def build_atom_buf(
    workers: int = 2,
    requests: int = 12,
    flushes: int = 1,
    flush_delay: int = 70,
    buf_capacity: int = 64,
    bugfix: bool = False,
) -> Program:
    memory: dict = {"ap_buf_len": 0, "served": 0, "flushed": 0}
    for i in range(buf_capacity):
        memory[("ap_buf", i)] = None
    return Program(
        name="apache-atom-buf",
        main=_atom_buf_main,
        params={
            "workers": workers,
            "requests": requests,
            "flushes": flushes,
            "flush_delay": flush_delay,
            "bugfix": bugfix,
        },
        initial_memory=memory,
        initial_files={"htdocs": ["index", "about", "news", "contact"]},
    )


# --------------------------------------------------------------------------
# apache-order-ref: request pool freed while the logger still reads it
# --------------------------------------------------------------------------


def _ref_worker(ctx: ThreadContext, wid: int, requests: int, linger: int,
                bugfix: bool):
    for r in range(requests):
        rid = yield ctx.rmw("next_rid", lambda v: v + 1)
        yield ctx.bb(f"apache.refworker{wid}.request")
        # Fill the request pool and serve.
        yield ctx.write(("pool", rid, "uri"), f"/page/{rid}")
        yield ctx.write(("pool", rid, "status"), 200)
        yield from ctx.call(_serve, rid, name="serve")
        # Hand the request to the logger...
        yield ctx.syscall("send", "to_log", rid)
        if bugfix:
            # The fix: wait for the logger's ack before tearing down.
            yield ctx.syscall("recv", f"logged_{rid}")
        # ...do a little teardown work, then free the pool.  BUG (when
        # unfixed): nothing orders this free after the logger's reads.
        yield from ctx.work(linger)
        yield ctx.free(("pool", rid, "uri"))
        yield ctx.free(("pool", rid, "status"))
    return requests


def _ref_logger(ctx: ThreadContext, total: int, log_cost: int, bugfix: bool):
    for _ in range(total):
        rid = yield ctx.syscall("recv", "to_log")
        yield ctx.bb("apache.logger.entry")
        yield from ctx.work(log_cost)  # logger pace vs the workers
        uri = yield ctx.read(("pool", rid, "uri"))  # may be freed already
        status = yield ctx.read(("pool", rid, "status"))
        yield ctx.syscall("write_file", "access_log", (rid, uri, status))
        if bugfix:
            yield ctx.syscall("send", f"logged_{rid}", True)
    return total


def _order_ref_main(ctx: ThreadContext, workers: int, requests: int,
                    linger: int, log_cost: int, bugfix: bool):
    logger = yield ctx.spawn(_ref_logger, workers * requests, log_cost, bugfix)
    tids = yield from spawn_all(
        ctx, _ref_worker,
        [(w, requests, linger, bugfix) for w in range(workers)],
    )
    yield from join_all(ctx, tids)
    yield ctx.join(logger)


def build_order_ref(
    workers: int = 2,
    requests: int = 5,
    linger: int = 16,
    log_cost: int = 1,
    bugfix: bool = False,
) -> Program:
    return Program(
        name="apache-order-ref",
        main=_order_ref_main,
        params={
            "workers": workers,
            "requests": requests,
            "linger": linger,
            "log_cost": log_cost,
            "bugfix": bugfix,
        },
        initial_memory={"next_rid": 0},
        initial_files={"htdocs": ["index", "about", "news", "contact"]},
    )


SPECS = [
    BugSpec(
        bug_id="apache-atom-buf",
        app="apache",
        category=SERVER,
        bug_type=ATOMICITY,
        build=build_atom_buf,
        default_params={},
        description="unlocked access-log buffer append loses entries (Apache #25520 pattern)",
        fixed_params={"bugfix": True},
    ),
    BugSpec(
        bug_id="apache-order-ref",
        app="apache",
        category=SERVER,
        bug_type=ORDER,
        build=build_order_ref,
        default_params={},
        description="request pool freed before the logger reads it (Apache #21287 pattern)",
        fixed_params={"bugfix": True},
    ),
]
