"""miniHTTrack: a website mirrorer with a use-before-init order violation.

Modeled after the HTTrack 3.x crash class the paper's suite uses: the main
thread fires off fetch workers and *concurrently* finishes building the
global options structure (proxy settings, depth limits).  Nothing orders
"options published" before "worker reads options": a worker that wins the
race dereferences an unallocated global and crashes.
"""

from __future__ import annotations

from repro.apps.spec import DESKTOP, ORDER, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext


def _fetch(ctx: ThreadContext, url: int):
    """Download one URL (simulated network roundtrip + parse)."""
    yield ctx.syscall("send", "net_req", url)
    yield from ctx.work(3)
    yield ctx.syscall("recv", f"net_resp_{url}")
    yield from ctx.work(2)


def _worker(ctx: ThreadContext, wid: int, urls: int, prep: int, bugfix: bool):
    yield ctx.bb(f"httrack.worker{wid}.start")
    yield from ctx.work(prep)  # per-thread setup (cache dirs, buffers)
    if bugfix:
        # The fix: workers wait until main publishes the options.
        yield ctx.sem_acquire("opt_sem")
    fetched = 0
    for u in range(urls):
        yield ctx.bb(f"httrack.worker{wid}.url")
        # BUG: reads the global options; crashes if not yet published.
        depth = yield ctx.read(("opt", "depth"))
        if depth <= 0:
            break
        yield from ctx.call(_fetch, wid * urls + u, name="fetch")
        fetched += 1
    return fetched


def _net_stub(ctx: ThreadContext, total: int):
    """Fake remote server answering fetch requests."""
    for _ in range(total):
        url = yield ctx.syscall("recv", "net_req")
        yield ctx.local(1)
        yield ctx.syscall("send", f"net_resp_{url}", f"<html>{url}</html>")
    return total


def _init_options(ctx: ThreadContext, parse_cost: int, workers: int,
                  bugfix: bool):
    """Builds and publishes the global options structure."""
    yield ctx.bb("httrack.init.parse")
    yield from ctx.work(parse_cost)  # parse CLI/config
    yield ctx.write(("opt", "proxy"), "none")
    yield ctx.write(("opt", "depth"), 2)
    yield ctx.write("opt_ready", True)  # advisory flag nobody checks (bug)
    if bugfix:
        for _ in range(workers):
            yield ctx.sem_release("opt_sem")


def _main(ctx: ThreadContext, workers: int, urls: int, prep: int,
          parse_cost: int, bugfix: bool):
    # The real code spawns the backing threads first "to warm them up",
    # then finishes initialization on the main thread.
    stub = yield ctx.spawn(_net_stub, workers * urls)
    tids = yield from spawn_all(
        ctx, _worker, [(w, urls, prep, bugfix) for w in range(workers)]
    )
    yield from ctx.call(_init_options, parse_cost, workers, bugfix,
                        name="init_options")
    results = yield from join_all(ctx, tids)
    yield ctx.join(stub)
    yield ctx.output(("fetched", sum(results)))


def build_order_init(
    workers: int = 2,
    urls: int = 3,
    prep: int = 14,
    parse_cost: int = 5,
    bugfix: bool = False,
) -> Program:
    return Program(
        name="httrack-order-init",
        main=_main,
        params={
            "workers": workers,
            "urls": urls,
            "prep": prep,
            "parse_cost": parse_cost,
            "bugfix": bugfix,
        },
        initial_memory={"opt_ready": False},
        semaphores={"opt_sem": 0},
    )


SPECS = [
    BugSpec(
        bug_id="httrack-order-init",
        app="httrack",
        category=DESKTOP,
        bug_type=ORDER,
        build=build_order_init,
        default_params={},
        description="worker dereferences the global options before main publishes them (HTTrack 3.x crash)",
        fixed_params={"bugfix": True},
    ),
]
