"""Shared helpers for application thread bodies.

All helpers are generator functions meant for ``yield from`` inside a
thread body.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Sequence, Tuple

from repro.sim.ops import Op
from repro.sim.program import ThreadBody, ThreadContext


def spawn_all(
    ctx: ThreadContext, body: ThreadBody, args_list: Sequence[Tuple[Any, ...]]
) -> Generator[Op, Any, List[int]]:
    """Spawn one thread per args tuple; returns their tids."""
    tids: List[int] = []
    for args in args_list:
        tid = yield ctx.spawn(body, *args)
        tids.append(tid)
    return tids


def join_all(
    ctx: ThreadContext, tids: Iterable[int]
) -> Generator[Op, Any, List[Any]]:
    """Join threads in order; returns their return values."""
    results: List[Any] = []
    for tid in tids:
        value = yield ctx.join(tid)
        results.append(value)
    return results


def compute(ctx: ThreadContext, cost: int) -> Op:
    """Alias that reads better in numeric kernels."""
    return ctx.local(cost)
