"""miniBarnes: a Barnes-Hut-style N-body step with an injected atomicity
bug in tree construction.

Structure follows SPLASH-2 Barnes: workers insert their bodies into a
shared cell array (the flattened octree), then run a compute-heavy force
phase over the finished tree.  Real Barnes protects cell mutation with
per-cell locks; the injected bug gives small cells a lock-free
"leaf fast path" — read the occupancy count, store the body in that slot,
bump the count.  Two inserters hitting the same sparse cell in the window
store into the same slot, and a body vanishes from the tree; the
conservation check after the force phase ("tree holds every body") fails.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.spec import ATOMICITY, SCIENTIFIC, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext

#: cells with fewer than this many bodies take the buggy lock-free path
_LEAF_LIMIT = 1


def _cell_of(body: int, cells: int) -> int:
    """Spatial hashing of a body id to its octree cell."""
    return (body * 7 + 3) % cells


def _insert_body(ctx: ThreadContext, wid: int, body: int, cells: int,
                 bugfix: bool):
    cell = _cell_of(body, cells)
    count = yield ctx.read(("cell_count", cell))
    if count < _LEAF_LIMIT and not bugfix:
        # BUG: leaf fast path, no lock between the count read and writes.
        yield ctx.local(2)  # compute center-of-mass incrementally
        yield ctx.write(("cell_body", cell, count), body)
        yield ctx.write(("cell_count", cell), count + 1)
    else:
        yield ctx.lock(f"cell_mu_{cell}")
        count = yield ctx.read(("cell_count", cell))
        yield ctx.local(2)
        yield ctx.write(("cell_body", cell, count), body)
        yield ctx.write(("cell_count", cell), count + 1)
        yield ctx.unlock(f"cell_mu_{cell}")
    return cell


def _barnes_worker(ctx: ThreadContext, wid: int, workers: int, bodies: int,
                   cells: int, compute: int, bugfix: bool):
    # Tree-construction phase: insert my bodies.
    for b in range(bodies):
        yield ctx.bb(f"barnes.w{wid}.insert")
        body = wid * bodies + b
        yield from ctx.call(_insert_body, wid, body, cells, bugfix,
                            name="insert_body")
    yield ctx.barrier("barnes_tree")
    # Force phase: walk the finished tree (read-only, compute heavy).
    force = 0
    for cell in range(wid, cells, workers):
        yield ctx.bb(f"barnes.w{wid}.force")
        count = yield ctx.read(("cell_count", cell))
        for slot in range(count):
            body = yield ctx.read(("cell_body", cell, slot))
            yield ctx.local(compute)
            force = (force + (body or 0) * 3 + 1) % 65_521
    yield ctx.write(("force", wid), force)
    yield ctx.barrier("barnes_done")
    return force


def _main(ctx: ThreadContext, workers: int, bodies: int, cells: int,
          compute: int, bugfix: bool):
    tids = yield from spawn_all(
        ctx, _barnes_worker,
        [(w, workers, bodies, cells, compute, bugfix) for w in range(workers)],
    )
    yield from join_all(ctx, tids)
    in_tree = 0
    for cell in range(cells):
        count = yield ctx.read(("cell_count", cell))
        in_tree += count
    total = workers * bodies
    yield ctx.output(("bodies_in_tree", in_tree, "expected", total))
    yield ctx.check(in_tree == total, "barnes tree lost a body during insertion")


def build_atom_cell(
    workers: int = 3,
    bodies: int = 5,
    cells: int = 12,
    compute: int = 6,
    bugfix: bool = False,
) -> Program:
    memory: Dict = {}
    for cell in range(cells):
        memory[("cell_count", cell)] = 0
        for slot in range(workers * bodies):
            memory[("cell_body", cell, slot)] = None
    for w in range(workers):
        memory[("force", w)] = 0
    return Program(
        name="barnes-atom-cell",
        main=_main,
        params={
            "workers": workers,
            "bodies": bodies,
            "cells": cells,
            "compute": compute,
            "bugfix": bugfix,
        },
        initial_memory=memory,
        barriers={"barnes_tree": workers, "barnes_done": workers},
    )


SPECS = [
    BugSpec(
        bug_id="barnes-atom-cell",
        app="barnes",
        category=SCIENTIFIC,
        bug_type=ATOMICITY,
        build=build_atom_cell,
        default_params={},
        description="lock-free leaf-cell insertion races two bodies into one slot (injected)",
        fixed_params={"bugfix": True},
    ),
]
