"""miniRadix: a SPLASH-2-style parallel radix sort with an injected
publish-order bug.

Structure follows SPLASH-2 Radix (one digit pass): workers histogram
their key segments in parallel (barrier), worker 0 prefix-sums the
histograms into the global rank table, and workers then permute their
keys using the ranks.

Injected bug: worker 0 publishes ``rank_ready`` *before* writing the rank
entry of the last digit — modeling the classic flag-before-data order
violation.  Workers poll the flag as a fast path (the "slow" path waits on
a semaphore the master posts after finishing); a fast-path worker can read
the stale last-digit rank and scatter keys to wrong slots, failing the
sortedness check at the end.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.spec import ORDER, SCIENTIFIC, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext


def _keys_for(workers: int, seg: int, digits: int) -> List[int]:
    """Deterministic input keys, mixed so every digit bucket is used."""
    n = workers * seg
    return [(i * 5 + 3) % digits for i in range(n)]


def _histogram(keys: List[int], digits: int) -> List[int]:
    counts = [0] * digits
    for key in keys:
        counts[key] += 1
    return counts


def _radix_worker(ctx: ThreadContext, wid: int, workers: int, seg: int,
                  digits: int, compute: int, bugfix: bool):
    base = wid * seg
    # Phase 1: local histogram of my segment.
    local_counts = [0] * digits
    for k in range(seg):
        yield ctx.bb(f"radix.w{wid}.hist")
        key = yield ctx.read(("keys", base + k))
        yield ctx.local(compute)
        local_counts[key] += 1
    for d in range(digits):
        yield ctx.write(("hist", wid, d), local_counts[d])
    yield ctx.barrier("radix_hist")

    if wid == 0:
        # Master: global prefix sums -> rank table.
        totals = [0] * digits
        for w in range(workers):
            for d in range(digits):
                c = yield ctx.read(("hist", w, d))
                totals[d] += c
        rank = 0
        ranks = []
        for d in range(digits):
            ranks.append(rank)
            rank += totals[d]
        for d in range(digits - 1):
            yield ctx.write(("rank", d), ranks[d])
        if bugfix:
            # The fix: complete the table, then publish.
            yield ctx.write(("rank", digits - 1), ranks[digits - 1])
            yield from ctx.work(3)  # update profiling counters
            yield ctx.write("rank_ready", True)
        else:
            # BUG: the ready flag is raised before the last rank write.
            yield ctx.write("rank_ready", True)
            yield from ctx.work(3)  # update profiling counters
            yield ctx.write(("rank", digits - 1), ranks[digits - 1])
        for _ in range(workers - 1):
            yield ctx.sem_release("rank_sem")

    # Phase 2: pick up the rank table (fast path: flag; slow path: sem).
    if wid != 0:
        # Per-thread cleanup before the pickup staggers when each worker
        # checks the flag.
        pause = yield ctx.rand(24)
        yield from ctx.work(1 + pause)
        ready = yield ctx.read("rank_ready")
        if not ready:
            yield ctx.sem_acquire("rank_sem")
    ranks_seen = []
    for d in range(digits):
        r = yield ctx.read(("rank", d))
        ranks_seen.append(r)

    # Phase 3: scatter my keys to their ranked positions.
    for k in range(seg):
        yield ctx.bb(f"radix.w{wid}.scatter")
        key = yield ctx.read(("keys", base + k))
        yield ctx.local(compute)
        slot = yield ctx.rmw(("cursor", key), lambda v: v + 1)
        yield ctx.write(("out", ranks_seen[key] + slot), key)
    yield ctx.barrier("radix_done")
    return seg


def _main(ctx: ThreadContext, workers: int, seg: int, digits: int,
          compute: int, bugfix: bool):
    tids = yield from spawn_all(
        ctx, _radix_worker,
        [(w, workers, seg, digits, compute, bugfix) for w in range(workers)],
    )
    yield from join_all(ctx, tids)
    n = workers * seg
    out = []
    for i in range(n):
        v = yield ctx.read(("out", i))
        out.append(v)
    # The program itself trusts its output (as the real kernel does); a
    # stale rank silently mis-sorts.  Detection happens downstream, via
    # the wrong-output oracle in this module - the paper's "incorrect
    # result" symptom class.
    yield ctx.output(("radix_out", tuple(out)))


def sorted_output_oracle(trace) -> "object":
    """End-state oracle: the emitted array must be a sorted permutation."""
    from repro.sim.failures import Failure, FailureKind

    for record in trace.stdout:
        if isinstance(record, tuple) and record and record[0] == "radix_out":
            out = list(record[1])
            if any(v is None for v in out) or out != sorted(out):
                return Failure(
                    FailureKind.WRONG_OUTPUT,
                    where="radix output not sorted (stale rank used)",
                )
            return None
    return Failure(FailureKind.WRONG_OUTPUT, where="radix produced no output")


def build_order_rank(
    workers: int = 3,
    seg: int = 4,
    digits: int = 4,
    compute: int = 7,
    bugfix: bool = False,
) -> Program:
    keys = _keys_for(workers, seg, digits)
    n = workers * seg
    memory: Dict = {"rank_ready": False}
    for i, key in enumerate(keys):
        memory[("keys", i)] = key
    for i in range(n):
        memory[("out", i)] = None
    for w in range(workers):
        for d in range(digits):
            memory[("hist", w, d)] = 0
    for d in range(digits):
        memory[("rank", d)] = 0
        memory[("cursor", d)] = 0
    return Program(
        name="radix-order-rank",
        main=_main,
        params={"workers": workers, "seg": seg, "digits": digits,
                "compute": compute, "bugfix": bugfix},
        initial_memory=memory,
        semaphores={"rank_sem": 0},
        barriers={"radix_hist": workers, "radix_done": workers},
    )


SPECS = [
    BugSpec(
        bug_id="radix-order-rank",
        app="radix",
        category=SCIENTIFIC,
        bug_type=ORDER,
        build=build_order_rank,
        oracle=sorted_output_oracle,
        default_params={},
        description="rank table published (flag raised) before its last entry is written (injected)",
        fixed_params={"bugfix": True},
    ),
]
