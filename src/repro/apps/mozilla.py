"""miniMozilla: a JS-engine miniature with a property-cache atomicity bug.

Modeled after the Mozilla js/src cache races the paper's suite draws on
(bug #18025 class): script threads consult a shared property cache and
pair each cached value with the cache *generation*; the GC/invalidation
thread rewrites the entries and then bumps the generation.  Script threads
read (entry, generation) in two unlocked steps, so an invalidation landing
between the two reads pairs an old entry with the new generation — a
multi-variable atomicity violation that makes the script use a stale
shape/property value.
"""

from __future__ import annotations

from repro.apps.spec import ATOMICITY, DESKTOP, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext


def _entry_value(generation: int, key: int) -> int:
    """The value a consistent cache holds for (generation, key)."""
    return generation * 100 + key


def _script_thread(ctx: ThreadContext, wid: int, lookups: int, keys: int,
                   bugfix: bool):
    for n in range(lookups):
        yield ctx.bb(f"mozilla.script{wid}.lookup")
        yield from ctx.work(7)  # interpret bytecode up to the property access
        key = yield ctx.rand(keys)
        # BUG WINDOW (when unfixed): entry and generation read in two
        # unlocked steps.
        if bugfix:
            yield ctx.lock("js_mu")
        value = yield ctx.read(("js_cache", key))
        yield ctx.local(1)
        generation = yield ctx.read("js_gen")
        if bugfix:
            yield ctx.unlock("js_mu")
        yield ctx.check(
            value == _entry_value(generation, key),
            "stale property-cache entry used",
        )
        yield from ctx.work(12)  # run with the property value
    return lookups


def _gc_thread(ctx: ThreadContext, cycles: int, keys: int, gc_delay: int,
               bugfix: bool):
    for _ in range(cycles):
        yield ctx.bb("mozilla.gc.cycle")
        yield from ctx.work(gc_delay)  # the mutator work that triggers GC
        if bugfix:
            yield ctx.lock("js_mu")
        generation = yield ctx.read("js_gen")
        new_gen = generation + 1
        # Rewrite every entry for the new generation, then publish it.
        for key in range(keys):
            yield ctx.write(("js_cache", key), _entry_value(new_gen, key))
        yield ctx.write("js_gen", new_gen)
        if bugfix:
            yield ctx.unlock("js_mu")
    return cycles


def _main(ctx: ThreadContext, scripts: int, lookups: int, keys: int,
          gc_cycles: int, gc_delay: int, bugfix: bool):
    tids = yield from spawn_all(
        ctx, _script_thread,
        [(w, lookups, keys, bugfix) for w in range(scripts)],
    )
    gc = yield ctx.spawn(_gc_thread, gc_cycles, keys, gc_delay, bugfix)
    yield from join_all(ctx, tids)
    yield ctx.join(gc)


def build_atom_js(
    scripts: int = 2,
    lookups: int = 4,
    keys: int = 4,
    gc_cycles: int = 1,
    gc_delay: int = 105,
    bugfix: bool = False,
) -> Program:
    memory: dict = {"js_gen": 0}
    for key in range(keys):
        memory[("js_cache", key)] = _entry_value(0, key)
    return Program(
        name="mozilla-atom-js",
        main=_main,
        params={
            "scripts": scripts,
            "lookups": lookups,
            "keys": keys,
            "gc_cycles": gc_cycles,
            "gc_delay": gc_delay,
            "bugfix": bugfix,
        },
        initial_memory=memory,
    )


SPECS = [
    BugSpec(
        bug_id="mozilla-atom-js",
        app="mozilla",
        category=DESKTOP,
        bug_type=ATOMICITY,
        build=build_atom_js,
        default_params={},
        description="property cache entry and generation read non-atomically across a GC invalidation",
        multi_variable=True,
        fixed_params={"bugfix": True},
    ),
]
