"""miniFFT: a SPLASH-2-style staged transform with an injected order bug.

Structure follows the SPLASH-2 FFT kernel: each worker owns a contiguous
segment of the data array; phase 1 applies a local butterfly to every
element, a barrier separates the phases, and phase 2 combines each element
with its transpose partner from another worker's segment.

Injected bug (the paper injects bugs into its scientific apps, which have
none of their own): worker 0's hand-unrolled loop defers the write of its
*last* phase-1 element until after the barrier — modeling a missing flush
before the barrier.  Phase 2 readers of that element race with the
deferred write; a stale read propagates into the final checksum, caught by
the end-of-run verification.  The computation itself is real integer
arithmetic, so the checksum is exact.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.spec import ORDER, SCIENTIFIC, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext

_MOD = 65_521  # largest prime < 2**16; keeps values bounded and exact


def _butterfly(value: int) -> int:
    """Phase-1 per-element transform."""
    return (3 * value * value + 7 * value + 1) % _MOD


def _combine(a: int, b: int) -> int:
    """Phase-2 pairwise combine."""
    return (a * 31 + b * 17) % _MOD


def _partner(i: int, n: int) -> int:
    """Transpose partner: bit-reversal stand-in (works for any n)."""
    return (n - 1) - i


def expected_output(inputs: List[int]) -> List[int]:
    """The correct final array, computed sequentially."""
    n = len(inputs)
    stage1 = [_butterfly(v) for v in inputs]
    return [_combine(stage1[i], stage1[_partner(i, n)]) for i in range(n)]


def _fft_worker(ctx: ThreadContext, wid: int, workers: int, seg: int,
                compute: int, buggy: bool):
    base = wid * seg
    deferred = None
    # Phase 1: local butterflies.
    for k in range(seg):
        yield ctx.bb(f"fft.w{wid}.phase1")
        i = base + k
        value = yield ctx.read(("fft_in", i))
        yield ctx.local(compute)
        result = _butterfly(value)
        if buggy and wid == 0 and k == seg - 1:
            deferred = (i, result)  # BUG: last element written post-barrier
        else:
            yield ctx.write(("fft_mid", i), result)
    yield ctx.barrier("fft_b1")
    if deferred is not None:
        i, result = deferred
        yield ctx.write(("fft_mid", i), result)
    # Phase 2: combine with the transpose partner (often another segment).
    n = workers * seg
    for k in range(seg):
        yield ctx.bb(f"fft.w{wid}.phase2")
        i = base + k
        mine = yield ctx.read(("fft_mid", i))
        yield ctx.local(compute)
        theirs = yield ctx.read(("fft_mid", _partner(i, n)))
        yield ctx.write(("fft_out", i), _combine(mine, theirs))
    yield ctx.barrier("fft_b2")
    return seg


def _main(ctx: ThreadContext, workers: int, seg: int, compute: int,
          buggy: bool, expected: List[int]):
    tids = yield from spawn_all(
        ctx, _fft_worker,
        [(w, workers, seg, compute, buggy) for w in range(workers)],
    )
    yield from join_all(ctx, tids)
    n = workers * seg
    ok = True
    for i in range(n):
        value = yield ctx.read(("fft_out", i))
        if value != expected[i]:
            ok = False
    yield ctx.output(("fft_ok", ok))
    yield ctx.check(ok, "fft checksum mismatch")


def build_order_sync(
    workers: int = 3,
    seg: int = 4,
    compute: int = 10,
    buggy: bool = True,
) -> Program:
    n = workers * seg
    inputs = [(5 * i + 3) % _MOD for i in range(n)]
    memory: Dict = {}
    for i in range(n):
        memory[("fft_in", i)] = inputs[i]
        memory[("fft_mid", i)] = 0
        memory[("fft_out", i)] = 0
    return Program(
        name="fft-order-sync",
        main=_main,
        params={
            "workers": workers,
            "seg": seg,
            "compute": compute,
            "buggy": buggy,
            "expected": expected_output(inputs),
        },
        initial_memory=memory,
        barriers={"fft_b1": workers, "fft_b2": workers},
    )


SPECS = [
    BugSpec(
        bug_id="fft-order-sync",
        app="fft",
        category=SCIENTIFIC,
        bug_type=ORDER,
        build=build_order_sync,
        default_params={},
        description="phase-1 element written after the phase barrier races with phase-2 readers (injected)",
        fixed_params={"buggy": False},
    ),
]
