"""miniPBZip2: parallel block compressor with the real PBZip2 order bug.

Structure mirrors pbzip2: a producer thread compresses blocks and pushes
them into a bounded output queue (mutex + condition variable); consumer
threads pop blocks and write them out.  The real bug (fixed in pbzip2
0.9.5): ``main()`` tears the output queue down once the producer finishes,
*without waiting for the consumers to drain it* — nothing orders the
consumers' last block reads before the free.  A consumer that popped an
index but has not yet copied the block data crashes on freed memory.
"""

from __future__ import annotations

from repro.apps.spec import DESKTOP, ORDER, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext


def _compress_block(ctx: ThreadContext, block: int, work: int):
    """The CPU-heavy part: run-length/huffman stand-in."""
    yield from ctx.work(work)
    return f"compressed-{block}"


def _producer(ctx: ThreadContext, blocks: int, work: int):
    for block in range(blocks):
        yield ctx.bb("pbzip2.producer.block")
        data = yield from ctx.call(_compress_block, block, work, name="compress_block")
        yield ctx.lock("q_mu")
        count = yield ctx.read("q_count")
        yield ctx.write(("q_item", block), data)
        yield ctx.write("q_count", count + 1)
        yield ctx.signal("q_cv")
        yield ctx.unlock("q_mu")
    yield ctx.lock("q_mu")
    yield ctx.write("prod_done", True)
    yield ctx.broadcast("q_cv")
    yield ctx.unlock("q_mu")
    return blocks


def _consumer(ctx: ThreadContext, cid: int, write_cost: int):
    written = 0
    while True:
        yield ctx.bb(f"pbzip2.consumer{cid}.loop")
        yield ctx.lock("q_mu")
        while True:
            head = yield ctx.read("q_head")
            count = yield ctx.read("q_count")
            done = yield ctx.read("prod_done")
            if head < count or done:
                break
            yield ctx.wait("q_cv", "q_mu")
        if head >= count and done:
            yield ctx.unlock("q_mu")
            return written
        yield ctx.write("q_head", head + 1)
        yield ctx.unlock("q_mu")
        # Copy the block data OUTSIDE the lock (as pbzip2 does).  This is
        # the read that races with main's teardown free.
        yield from ctx.work(write_cost)
        data = yield ctx.read(("q_item", head))
        yield ctx.syscall("write_file", "out.bz2", (head, data))
        written += 1


def _main(ctx: ThreadContext, blocks: int, consumers: int, work: int,
          write_cost: int, teardown_delay: int, bugfix: bool):
    cons = yield from spawn_all(
        ctx, _consumer, [(c, write_cost) for c in range(consumers)]
    )
    prod = yield ctx.spawn(_producer, blocks, work)
    yield ctx.join(prod)
    if bugfix:
        # The 0.9.5 fix: consumers drain before the queue is torn down.
        yield from join_all(ctx, cons)
        yield from ctx.work(teardown_delay)
        yield ctx.free("q_item")
    else:
        # BUG: tear down the queue after the *producer* exits; nothing
        # waits for the consumers.
        yield from ctx.work(teardown_delay)
        yield ctx.free("q_item")
        yield from join_all(ctx, cons)
    yield ctx.output(("blocks", blocks))


def build_order_free(
    blocks: int = 6,
    consumers: int = 2,
    work: int = 10,
    write_cost: int = 3,
    teardown_delay: int = 9,
    bugfix: bool = False,
) -> Program:
    memory: dict = {"q_count": 0, "q_head": 0, "prod_done": False}
    for block in range(blocks):
        memory[("q_item", block)] = None
    return Program(
        name="pbzip2-order-free",
        main=_main,
        params={
            "blocks": blocks,
            "consumers": consumers,
            "work": work,
            "write_cost": write_cost,
            "teardown_delay": teardown_delay,
            "bugfix": bugfix,
        },
        initial_memory=memory,
    )


SPECS = [
    BugSpec(
        bug_id="pbzip2-order-free",
        app="pbzip2",
        category=DESKTOP,
        bug_type=ORDER,
        build=build_order_free,
        default_params={},
        description="output queue freed when the producer exits, while consumers still read blocks (pbzip2 <0.9.5)",
        fixed_params={"bugfix": True},
    ),
]
