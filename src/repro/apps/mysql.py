"""miniMySQL: a database server miniature with two real MySQL bug patterns.

Structure: client worker threads execute INSERT statements against a
table protected by ``LOCK_table``; every insert is also appended to the
active binary log (a kernel file).  A rotator thread switches the active
binlog mid-run; an admin thread can drop a table.

Bugs:

* ``mysql-atom-log`` — modeled after MySQL bug #791: a worker reads the
  active binlog name, formats its entry, then appends — without holding
  ``LOCK_log``.  If the rotator closes that log inside the window, the
  entry lands in a closed log and is lost.  Detected by the end-of-run
  consistency check "every inserted row has a binlog entry".  This is the
  paper's canonical *multi-variable atomicity violation*: the invariant
  couples ``binlog_current`` with the per-log ``log_closed`` flag.
* ``mysql-atom-drop`` — modeled after MySQL bug #169 (DROP TABLE vs
  concurrent INSERT): the insert path resolves the table through the
  table cache, then writes the row — without re-checking under
  ``LOCK_open``.  A concurrent DROP frees the row storage inside that
  window and the insert crashes on freed memory.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.apps.spec import ATOMICITY, SERVER, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.ops import Op
from repro.sim.program import Program, ThreadContext

# --------------------------------------------------------------------------
# mysql-atom-log: binlog rotation atomicity violation
# --------------------------------------------------------------------------


def _parse_query(ctx: ThreadContext, cost: int) -> Generator[Op, Any, None]:
    """Stand-in for SQL parsing/optimization."""
    yield from ctx.work(cost)


def _insert_row(ctx: ThreadContext, wid: int, q: int) -> Generator[Op, Any, int]:
    """Insert one row under the table lock; returns the new row count."""
    yield ctx.lock("LOCK_table")
    rows = yield ctx.read("rows")
    yield ctx.write("rows", rows + 1)
    yield ctx.write(("row", rows), (wid, q))
    yield ctx.unlock("LOCK_table")
    return rows + 1


def _append_binlog(ctx: ThreadContext, wid: int, q: int,
                   bugfix: bool) -> Generator[Op, Any, None]:
    """BUG WINDOW: resolve the active log, format, append - no LOCK_log.

    The fix (``bugfix=True``) holds LOCK_log across the window, as the
    upstream patch for MySQL #791 does.
    """
    if bugfix:
        yield ctx.lock("LOCK_log")
    name = yield ctx.read("binlog_current")
    yield ctx.local(2)  # format the entry
    closed = yield ctx.read(("log_closed", name))
    if closed:
        # The log was rotated away under us; the entry is silently lost.
        yield ctx.rmw("lost_entries", lambda v: v + 1)
    else:
        yield ctx.syscall("write_file", name, ("insert", wid, q))
        yield ctx.rmw("logged_entries", lambda v: v + 1)
    if bugfix:
        yield ctx.unlock("LOCK_log")


def _log_worker(ctx: ThreadContext, wid: int, queries: int, bugfix: bool):
    for q in range(queries):
        yield ctx.bb(f"mysql.worker{wid}.query")
        yield from ctx.call(_parse_query, 9, name="parse_query")
        yield from ctx.call(_insert_row, wid, q, name="insert_row")
        yield from ctx.call(_append_binlog, wid, q, bugfix, name="append_binlog")
        yield from ctx.work(4)  # send result packet to the client
    return queries


def _rotator(ctx: ThreadContext, rotate_delay: int, rotations: int):
    """Rotates the binlog: correct on its own side (takes LOCK_log), but
    the workers' append path does not, which is the bug."""
    for r in range(rotations):
        yield ctx.bb("mysql.rotator.cycle")
        yield from ctx.work(rotate_delay)
        yield ctx.lock("LOCK_log")
        name = yield ctx.read("binlog_current")
        next_name = f"binlog.{r + 2}"
        yield ctx.write("binlog_current", next_name)
        yield ctx.write(("log_closed", name), True)
        yield ctx.unlock("LOCK_log")
    return rotations


def _atom_log_main(ctx: ThreadContext, workers: int, queries: int,
                   rotate_delay: int, rotations: int, bugfix: bool):
    args = [(wid, queries, bugfix) for wid in range(workers)]
    tids = yield from spawn_all(ctx, _log_worker, args)
    rot = yield ctx.spawn(_rotator, rotate_delay, rotations)
    yield from join_all(ctx, tids)
    yield ctx.join(rot)
    logged = yield ctx.read("logged_entries")
    lost = yield ctx.read("lost_entries")
    yield ctx.output(("binlog", logged, "lost", lost))
    yield ctx.check(
        logged == workers * queries,
        "binlog lost entries during rotation",
    )


def build_atom_log(
    workers: int = 4,
    queries: int = 6,
    rotate_delay: int = 60,
    rotations: int = 1,
    max_logs: int = 8,
    bugfix: bool = False,
) -> Program:
    """The miniMySQL instance with the binlog-rotation bug."""
    memory = {
        "rows": 0,
        "binlog_current": "binlog.1",
        "logged_entries": 0,
        "lost_entries": 0,
    }
    for i in range(1, max_logs + 2):
        memory[("log_closed", f"binlog.{i}")] = False
    return Program(
        name="mysql-atom-log",
        main=_atom_log_main,
        params={
            "workers": workers,
            "queries": queries,
            "rotate_delay": rotate_delay,
            "rotations": rotations,
            "bugfix": bugfix,
        },
        initial_memory=memory,
    )


# --------------------------------------------------------------------------
# mysql-atom-drop: DROP TABLE vs INSERT use-after-free
# --------------------------------------------------------------------------


def _drop_worker(ctx: ThreadContext, wid: int, inserts: int, bugfix: bool):
    done = 0
    for q in range(inserts):
        yield ctx.bb(f"mysql.ins{wid}.query")
        yield from ctx.call(_parse_query, 5, name="parse_query")
        # Prepared-statement cache hit; the fix revalidates under
        # LOCK_open even on the cached path.
        fast_path = (not bugfix) and q >= inserts - 2
        if fast_path:
            # BUG: the cached handle skips revalidation under LOCK_open,
            # so the write below can hit storage freed by a DROP.
            region = yield ctx.read(("tcache", "t1"))
            if region is None:
                yield ctx.rmw("rejected", lambda v: v + 1)
                continue
            yield ctx.local(3)  # build the row image
            slot = yield ctx.rmw("t1_next_slot", lambda v: v + 1)
            yield ctx.write((region, slot), (wid, q))
        else:
            yield ctx.lock("LOCK_open")
            region = yield ctx.read(("tcache", "t1"))
            if region is None:
                yield ctx.rmw("rejected", lambda v: v + 1)
                yield ctx.unlock("LOCK_open")
                continue
            yield ctx.local(3)
            slot = yield ctx.rmw("t1_next_slot", lambda v: v + 1)
            yield ctx.write((region, slot), (wid, q))
            yield ctx.unlock("LOCK_open")
        yield from ctx.work(3)  # reply to client
        done += 1
    return done


def _dropper(ctx: ThreadContext, drop_delay: int):
    yield from ctx.work(drop_delay)
    yield ctx.lock("LOCK_open")
    region = yield ctx.read(("tcache", "t1"))
    yield ctx.write(("tcache", "t1"), None)
    if region is not None:
        yield ctx.free(region)
    yield ctx.unlock("LOCK_open")


def _atom_drop_main(ctx: ThreadContext, workers: int, inserts: int,
                    drop_delay: int, bugfix: bool):
    args = [(wid, inserts, bugfix) for wid in range(workers)]
    tids = yield from spawn_all(ctx, _drop_worker, args)
    drop = yield ctx.spawn(_dropper, drop_delay)
    yield from join_all(ctx, tids)
    yield ctx.join(drop)
    rejected = yield ctx.read("rejected")
    yield ctx.output(("rejected", rejected))


def build_atom_drop(
    workers: int = 3,
    inserts: int = 6,
    drop_delay: int = 65,
    table_slots: int = 64,
    bugfix: bool = False,
) -> Program:
    """The miniMySQL instance with the DROP-vs-INSERT bug."""
    memory: dict = {
        ("tcache", "t1"): "t1_data",
        "t1_next_slot": 0,
        "rejected": 0,
    }
    for slot in range(table_slots):
        memory[("t1_data", slot)] = None
    return Program(
        name="mysql-atom-drop",
        main=_atom_drop_main,
        params={
            "workers": workers,
            "inserts": inserts,
            "drop_delay": drop_delay,
            "bugfix": bugfix,
        },
        initial_memory=memory,
    )


SPECS = [
    BugSpec(
        bug_id="mysql-atom-log",
        app="mysql",
        category=SERVER,
        bug_type=ATOMICITY,
        build=build_atom_log,
        default_params={},
        description="binlog rotation between log-name read and append loses entries (MySQL #791 pattern)",
        multi_variable=True,
        fixed_params={"bugfix": True},
    ),
    BugSpec(
        bug_id="mysql-atom-drop",
        app="mysql",
        category=SERVER,
        bug_type=ATOMICITY,
        build=build_atom_drop,
        default_params={},
        description="DROP TABLE frees row storage inside an INSERT's resolve-then-write window (MySQL #169 pattern)",
        fixed_params={"bugfix": True},
    ),
]
