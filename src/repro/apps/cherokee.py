"""miniCherokee: a lightweight web server with the cached-time bug.

Cherokee bug #326 class: the server keeps a formatted timestamp cache
(``cached_sec`` + ``cached_str``) that request threads refresh in place
when it goes stale — without a lock, and with the two variables updated
non-atomically.  A thread can observe a *new* second paired with the
*previous* second's string and emit a corrupted Date header.  This is a
multi-variable atomicity violation: each variable individually is fine,
the coupling invariant is what breaks.
"""

from __future__ import annotations

from repro.apps.spec import ATOMICITY, SERVER, BugSpec
from repro.apps.util import join_all, spawn_all
from repro.sim.program import Program, ThreadContext


def _format_time(sec: int) -> str:
    """The 'expensive' strftime the cache exists to amortize."""
    return f"Thu, 01 Jan 1970 00:00:{sec:02d} GMT"


def _request_thread(ctx: ThreadContext, wid: int, requests: int, bucket: int,
                    bugfix: bool):
    corrupt = 0
    for r in range(requests):
        yield ctx.bb(f"cherokee.worker{wid}.request")
        yield from ctx.work(12)  # parse request, route the handler
        now = yield ctx.now()
        sec = now // bucket
        # The upstream fix guards the cache with a reader-writer lock:
        # the hot serve path shares it, refreshes take it exclusively.
        if bugfix:
            yield ctx.rdlock("time_rw")
        cached_sec = yield ctx.read("cached_sec")
        if cached_sec != sec:
            if bugfix:
                # upgrade: drop the read side, refresh under the write side
                yield ctx.rwunlock("time_rw")
                yield ctx.wrlock("time_rw")
            # BUG WINDOW (when unfixed): the two cache variables are
            # refreshed without a lock.
            yield ctx.write("cached_sec", sec)
            yield ctx.local(2)  # strftime
            yield ctx.write("cached_str", _format_time(sec))
            if bugfix:
                yield ctx.rwunlock("time_rw")
                yield ctx.rdlock("time_rw")
        # Serve: read the pair and emit the Date header.
        hdr_sec = yield ctx.read("cached_sec")
        hdr_str = yield ctx.read("cached_str")
        if bugfix:
            yield ctx.rwunlock("time_rw")
        yield ctx.check(
            hdr_str == _format_time(hdr_sec),
            "stale Date header served from time cache",
        )
        yield ctx.syscall("write_file", "responses", (wid, r, hdr_str))
        yield from ctx.work(2)
    return corrupt


def _main(ctx: ThreadContext, workers: int, requests: int, bucket: int,
          bugfix: bool):
    tids = yield from spawn_all(
        ctx, _request_thread,
        [(w, requests, bucket, bugfix) for w in range(workers)],
    )
    yield from join_all(ctx, tids)


def build_atom_time(workers: int = 3, requests: int = 5, bucket: int = 200,
                    bugfix: bool = False) -> Program:
    return Program(
        name="cherokee-atom-time",
        main=_main,
        params={"workers": workers, "requests": requests, "bucket": bucket,
                "bugfix": bugfix},
        initial_memory={"cached_sec": -1, "cached_str": _format_time(-1)},
    )


SPECS = [
    BugSpec(
        bug_id="cherokee-atom-time",
        app="cherokee",
        category=SERVER,
        bug_type=ATOMICITY,
        build=build_atom_time,
        default_params={},
        description="unlocked two-variable time-cache refresh serves mismatched Date headers (Cherokee #326 pattern)",
        multi_variable=True,
        fixed_params={"bugfix": True},
    ),
]
