"""Bug specifications: how the benchmark suite names and builds its bugs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.recorder import Oracle
from repro.sim.program import Program

#: App categories, matching the paper's grouping.
SERVER = "server"
DESKTOP = "desktop"
SCIENTIFIC = "scientific"

#: Bug type taxonomy from the paper.
ATOMICITY = "atomicity-violation"
ORDER = "order-violation"
DEADLOCK = "deadlock"


@dataclass
class BugSpec:
    """One evaluated bug: identity, build recipe and failure oracle.

    :param bug_id: stable identifier, e.g. ``"mysql-atom-log"``.
    :param app: application name (one of the 11).
    :param category: SERVER / DESKTOP / SCIENTIFIC.
    :param bug_type: ATOMICITY / ORDER / DEADLOCK.
    :param build: factory ``build(**params) -> Program`` with the bug
        present; params default to :attr:`default_params`.
    :param oracle: optional end-state oracle for failures the machine
        cannot see on its own.
    :param default_params: workload sizing used by tests and benches.
    :param description: what real bug this models, one line.
    :param multi_variable: whether the violated invariant spans several
        shared variables (the paper calls these out separately).
    :param fixed_params: build overrides that compile the bug *out* — the
        upstream fix, used to validate that the failure really comes from
        the modeled defect and not the surrounding structure.
    """

    bug_id: str
    app: str
    category: str
    bug_type: str
    build: Callable[..., Program]
    oracle: Optional[Oracle] = None
    default_params: Dict[str, Any] = field(default_factory=dict)
    description: str = ""
    multi_variable: bool = False
    fixed_params: Dict[str, Any] = field(default_factory=dict)

    def make_program(self, **overrides: Any) -> Program:
        """Build the buggy program with defaults plus overrides."""
        params = dict(self.default_params)
        params.update(overrides)
        return self.build(**params)

    def make_fixed_program(self, **overrides: Any) -> Program:
        """Build the program with the upstream fix applied."""
        if not self.fixed_params:
            raise ValueError(f"{self.bug_id} has no fixed variant")
        params = dict(self.default_params)
        params.update(self.fixed_params)
        params.update(overrides)
        return self.build(**params)

    @property
    def has_fix(self) -> bool:
        return bool(self.fixed_params)

    def describe(self) -> str:
        flavor = " (multi-variable)" if self.multi_variable else ""
        return f"{self.bug_id}: {self.app} [{self.category}] {self.bug_type}{flavor} - {self.description}"
