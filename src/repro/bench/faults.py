"""E17 - report equivalence and overhead under injected faults.

The claim under test (see ``docs/resilience.md``): supervision changes
*where* an attempt's outcome is computed — retried on a rebuilt worker,
replayed inline after the retry budget, folded from a store that had a
shard corrupted — never *what* the outcome is.  For each bug the harness
runs the same reproduction twice:

* **fault-free**: plain ``--jobs 2`` exploration, no chaos;
* **chaos**: the same exploration under the deterministic chaos harness
  (:class:`~repro.robust.inject.ChaosInjector`) injecting worker crashes
  and attempt hangs at a combined 10% attempt rate plus store-shard
  corruption, with a zero-delay backoff supervisor.

Both must produce an identical :func:`~repro.robust.runs.report_signature`
— same attempt sequence, same winner, same complete log.  The table also
reports how much chaos the supervisor absorbed (``supervise.*`` counters)
and the wall-clock overhead ratio of the chaos arm.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import List, Optional

from repro.apps import get_bug
from repro.bench.results import BenchResult
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.obs.session import ObsSession
from repro.robust.runs import report_signature
from repro.robust.supervise import SuperviseConfig
from repro.sim import MachineConfig

#: Suite bugs exercised by E17 — the same spread E14 uses, so the two
#: robustness benchmarks stay comparable.
E17_BUGS = (
    "mysql-atom-log",
    "apache-atom-buf",
    "fft-order-sync",
    "pbzip2-order-free",
)

E17_MAX_ATTEMPTS = 200

#: The injected fault mix: 6% worker crashes + 4% attempt hangs (the 10%
#: combined attempt rate the acceptance bar names) + 5% per-batch store
#: corruption, all drawn from one fixed seed.
E17_CHAOS = "crash=0.06,hang=0.04,corrupt=0.05,seed=2017"

#: ``supervise.*`` counters folded into the per-bug records.
_SUPERVISE_COUNTERS = (
    "supervise.chaos_injected",
    "supervise.chaos_corruptions",
    "supervise.retries",
    "supervise.timeouts",
    "supervise.worker_deaths",
    "supervise.inline_fallbacks",
    "supervise.pool_rebuilds",
    "supervise.serial_fallbacks",
)


def build_e17(obs=None) -> BenchResult:
    """Run the fault-equivalence comparison and package it as a BenchResult.

    :param obs: optional :class:`~repro.obs.session.ObsSession`; the
        chaos arms' ``supervise.*`` counters are folded into it so
        ``pres bench e17 --metrics-out`` exports the suite totals.
    """
    rows: List[list] = []
    records: List[dict] = []
    all_identical = True
    total_injected = 0
    config = ExplorerConfig(
        max_attempts=E17_MAX_ATTEMPTS, jobs=2, batch_size=4
    )
    # Zero-delay backoff: retry decisions stay deterministic either way,
    # and the benchmark should measure supervision, not sleeping.
    supervise = SuperviseConfig(backoff_base=0.0)

    for bug_id in E17_BUGS:
        spec = get_bug(bug_id)
        seed = find_failing_seed(spec)
        assert seed is not None, f"{bug_id}: no failing seed"
        recorded = record(
            spec.make_program(),
            sketch=SketchKind.SYNC,
            seed=seed,
            config=MachineConfig(ncpus=4),
            oracle=spec.oracle,
        )

        started = time.perf_counter()
        baseline = reproduce(recorded, config, supervise=supervise)
        baseline_elapsed = time.perf_counter() - started

        chaos_obs = ObsSession.create(trace=False, metrics=True)
        with tempfile.TemporaryDirectory() as root:
            store_dir = os.path.join(root, "store")
            started = time.perf_counter()
            chaotic = reproduce(
                recorded, config, store=store_dir, obs=chaos_obs,
                supervise=supervise, chaos=E17_CHAOS,
            )
            chaos_elapsed = time.perf_counter() - started

        counters = {
            name: chaos_obs.metrics.counter(name).value
            for name in _SUPERVISE_COUNTERS
        }
        if obs is not None and obs.metrics.enabled:
            for name, value in counters.items():
                if value:
                    obs.metrics.counter(name).inc(value)

        identical = report_signature(baseline) == report_signature(chaotic)
        all_identical = all_identical and identical
        total_injected += counters["supervise.chaos_injected"]
        overhead = (
            chaos_elapsed / baseline_elapsed if baseline_elapsed > 0
            else float("inf")
        )

        rows.append(
            [bug_id, baseline.attempts,
             counters["supervise.chaos_injected"],
             counters["supervise.chaos_corruptions"],
             counters["supervise.retries"],
             counters["supervise.inline_fallbacks"],
             f"{overhead:.2f}x",
             "yes" if identical else "NO"]
        )
        records.append(
            {
                "bug": bug_id,
                "seed": seed,
                "success": baseline.success,
                "attempts": baseline.attempts,
                "chaos_spec": E17_CHAOS,
                "signature_baseline": report_signature(baseline),
                "signature_chaos": report_signature(chaotic),
                "identical_reports": identical,
                "overhead_ratio": overhead,
                "supervise": counters,
            }
        )

    return BenchResult(
        experiment="e17",
        title="E17: report equivalence under injected faults (10% rate)",
        headers=["bug", "attempts", "injected", "corrupted", "retries",
                 "inline", "overhead", "identical"],
        rows=rows,
        records=records,
        meta={
            "max_attempts": E17_MAX_ATTEMPTS,
            "chaos_spec": E17_CHAOS,
            "identical_reports": all_identical,
            "faults_injected": total_injected,
        },
    )
