"""E16: static guidance ablation (sketchless replay, structure-seeded).

The bug-report scenario under test: no recording exists, so the replayer
starts from a NONE sketch — zero ordering information.  The baseline arm
is plain NONE-mode exploration (empty attempt, then mined feedback
flips).  The static arm runs :func:`repro.analysis.static_.analyze_program`
over the program *source* — no execution — filtered by the recorded
failure message (the one artifact a bug report reliably carries), and
seeds the ranked candidates at ``TIER_STATIC``.

Attempt 1 is the baseline empty attempt in both arms, and attempt 2 is
the best mined flip in both arms — static candidates interleave with
the mined tier starting at attempt 3 (see
:class:`repro.core.explorer.Frontier`), so static guidance can tie but
never displace a bug the baseline reproduces within two attempts.  The
interesting rows are the multi-attempt bugs, where a correct structural
prediction collapses the search to "baseline, best flip, pin the
static candidate".

The harness also checks two invariances:

* **jobs**: with static seeds and a fixed ``batch_size``, the parallel
  explorer must render byte-identical reports for any ``--jobs`` value;
* **plan bytes**: two independent analyses of the same program must
  serialize to byte-identical :class:`StaticPlan` JSON (the analyzer is
  a pure function of the source).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.static_ import analyze_program
from repro.apps import all_bugs, get_bug
from repro.bench.results import BenchResult
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import RecordedRun, record
from repro.core.reproducer import render_report, reproduce
from repro.core.sketches import SketchKind
from repro.sim.machine import MachineConfig

from dataclasses import dataclass

#: Bugs used for the static-seeded jobs-invariance check (both carry
#: applicable static candidates, so the check exercises the seeded
#: frontier rather than an empty one).
INVARIANCE_BUGS = ("mysql-atom-log", "pbzip2-order-free")


@dataclass
class StaticRow:
    """One bug's static-vs-baseline comparison at the NONE level."""

    bug_id: str
    seed: int
    races: int
    violations: int
    deadlocks: int
    candidates: int
    applicable: int
    baseline_attempts: int
    baseline_success: bool
    static_attempts: int
    static_success: bool

    @property
    def improved(self) -> bool:
        """Strictly fewer attempts with static seeds (both succeeding)."""
        return (
            self.baseline_success
            and self.static_success
            and self.static_attempts < self.baseline_attempts
        )

    @property
    def regressed(self) -> bool:
        """More attempts (or lost success) with static seeds."""
        if self.baseline_success and not self.static_success:
            return True
        return (
            self.static_success
            and self.baseline_success
            and self.static_attempts > self.baseline_attempts
        )


def _record_none(spec, seed: int, ncpus: int) -> RecordedRun:
    return record(
        spec.make_program(),
        sketch=SketchKind.NONE,
        seed=seed,
        config=MachineConfig(ncpus=ncpus),
        oracle=spec.oracle,
    )


def static_row(
    spec,
    max_attempts: int = 400,
    ncpus: int = 4,
    obs=None,
) -> StaticRow:
    """Run one bug through both arms of the ablation."""
    seed = find_failing_seed(spec, ncpus=ncpus)
    if seed is None:
        raise RuntimeError(f"{spec.bug_id}: no failing production run found")
    recorded = _record_none(spec, seed, ncpus)
    plan = analyze_program(
        spec.make_program(), failure=recorded.failure.describe()
    )
    config = ExplorerConfig(max_attempts=max_attempts)
    kwargs = {} if obs is None else {"obs": obs}
    baseline = reproduce(recorded, config, **kwargs)
    guided = reproduce(recorded, config, static_plan=plan, **kwargs)
    return StaticRow(
        bug_id=spec.bug_id,
        seed=seed,
        races=len(plan.races),
        violations=len(plan.violations),
        deadlocks=len(plan.deadlocks),
        candidates=len(plan.candidates),
        applicable=len(plan.seeds_for(SketchKind.NONE)),
        baseline_attempts=baseline.attempts,
        baseline_success=baseline.success,
        static_attempts=guided.attempts,
        static_success=guided.success,
    )


def static_ablation(
    specs: Optional[Sequence] = None,
    max_attempts: int = 400,
    ncpus: int = 4,
    obs=None,
) -> List[StaticRow]:
    """The full E16 matrix over the bug suite."""
    return [
        static_row(spec, max_attempts=max_attempts, ncpus=ncpus, obs=obs)
        for spec in (all_bugs() if specs is None else specs)
    ]


def static_plan_deterministic(bug_ids: Sequence[str] = INVARIANCE_BUGS) -> bool:
    """Whether two independent analyses serialize byte-identically."""
    for bug_id in bug_ids:
        spec = get_bug(bug_id)
        first = analyze_program(spec.make_program()).to_json()
        second = analyze_program(spec.make_program()).to_json()
        if first != second:
            return False
    return True


def static_jobs_invariant(
    bug_ids: Sequence[str] = INVARIANCE_BUGS,
    jobs_values: Sequence[int] = (1, 4),
    batch_size: int = 4,
    max_attempts: int = 400,
    ncpus: int = 4,
) -> bool:
    """Whether static-seeded parallel exploration is ``--jobs``-independent.

    At a fixed ``batch_size`` the exploration schedule depends only on
    the batch size, never on worker count; static seeds must preserve
    that — the *rendered report* (the byte-for-byte CLI surface) must be
    identical across ``jobs_values``.
    """
    for bug_id in bug_ids:
        spec = get_bug(bug_id)
        seed = find_failing_seed(spec, ncpus=ncpus)
        if seed is None:
            return False
        recorded = _record_none(spec, seed, ncpus)
        plan = analyze_program(
            spec.make_program(), failure=recorded.failure.describe()
        )
        reports = []
        for jobs in jobs_values:
            report = reproduce(
                recorded,
                ExplorerConfig(
                    max_attempts=max_attempts,
                    jobs=jobs,
                    batch_size=batch_size,
                ),
                static_plan=plan,
            )
            reports.append(render_report(report))
        if any(text != reports[0] for text in reports[1:]):
            return False
    return True


def build_e16(obs=None) -> BenchResult:
    """E16 as a :class:`BenchResult` (table + JSON payload)."""
    matrix = static_ablation(obs=obs)
    invariant = static_jobs_invariant()
    plan_bytes = static_plan_deterministic()
    rows = []
    records = []
    for row in matrix:
        delta = row.baseline_attempts - row.static_attempts
        rows.append(
            [
                row.bug_id,
                f"{row.races}/{row.violations}/{row.deadlocks}",
                f"{row.applicable}/{row.candidates}",
                row.baseline_attempts if row.baseline_success else "cap",
                row.static_attempts if row.static_success else "cap",
                f"-{delta}" if row.improved else ("=" if not row.regressed else f"+{-delta}"),
            ]
        )
        records.append(
            {
                "bug": row.bug_id,
                "seed": row.seed,
                "predicted": {
                    "races": row.races,
                    "violations": row.violations,
                    "deadlocks": row.deadlocks,
                },
                "candidates": row.candidates,
                "applicable_candidates": row.applicable,
                "baseline": {
                    "attempts": row.baseline_attempts,
                    "success": row.baseline_success,
                },
                "static": {
                    "attempts": row.static_attempts,
                    "success": row.static_success,
                },
                "improved": row.improved,
                "regressed": row.regressed,
            }
        )
    wins = sum(1 for row in matrix if row.improved)
    regressions = sum(1 for row in matrix if row.regressed)
    return BenchResult(
        experiment="e16",
        title=(
            "E16: static guidance ablation "
            f"(NONE replay; {wins} bugs improved, {regressions} regressed)"
        ),
        headers=["bug", "races/viol/dl", "cands", "baseline", "static", "delta"],
        rows=rows,
        records=records,
        meta={
            "max_attempts": 400,
            "wins": wins,
            "regressions": regressions,
            "jobs_invariant": invariant,
            "plan_bytes_identical": plan_bytes,
        },
    )


__all__ = [
    "INVARIANCE_BUGS",
    "StaticRow",
    "build_e16",
    "static_ablation",
    "static_jobs_invariant",
    "static_plan_deterministic",
    "static_row",
]
