"""Benchmark harness: the machinery behind ``benchmarks/``.

Each experiment from DESIGN.md's index (T1, E1..E8) is a thin pytest
benchmark over these helpers, so the same sweeps are usable from the CLI
and from notebooks.
"""

from repro.bench.attempts import attempts_matrix, attempts_row
from repro.bench.overhead import overhead_matrix, overhead_row
from repro.bench.prediction import (
    plan_jobs_invariant,
    prediction_ablation,
    prediction_row,
)
from repro.bench.results import BenchResult
from repro.bench.runner import (
    available_experiments,
    run_experiment,
    run_experiment_result,
)
from repro.bench.scaling import scaling_curves
from repro.bench.seeds import failure_rate, find_failing_seed
from repro.bench.speedup import run_speedup
from repro.bench.tables import format_table

__all__ = [
    "BenchResult",
    "attempts_matrix",
    "attempts_row",
    "available_experiments",
    "failure_rate",
    "find_failing_seed",
    "format_table",
    "overhead_matrix",
    "overhead_row",
    "plan_jobs_invariant",
    "prediction_ablation",
    "prediction_row",
    "run_experiment",
    "run_experiment_result",
    "run_speedup",
    "scaling_curves",
]
