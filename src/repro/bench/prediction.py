"""E13: predictive-sanitizer ablation (plan-seeded vs unplanned replay).

The record-rich / replay-coarse pipeline under test: record each T1 bug
once at RW fidelity, run the static sanitizer over that log
(:func:`repro.sanitize.build_plan`), then reproduce the *SYNC projection*
of the same recording twice — once unplanned (the E3/E5 baseline), once
with the plan's applicable candidates seeded into the first attempts.

Attempt 1 is the baseline empty attempt in both arms (plan candidates
rank behind it, see ``TIER_PLAN``), so the plan can tie but never slow a
bug the baseline reproduces immediately; the interesting rows are the
multi-attempt bugs, where a correct prediction collapses the search to
"baseline attempt + pin-all attempt".

The harness also spot-checks jobs-determinism: with a plan seeded and
``batch_size`` fixed, the parallel explorer must produce identical
reports for any ``--jobs`` value.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps import all_bugs, get_bug
from repro.bench.results import BenchResult
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import RecordedRun, record
from repro.core.reproducer import reproduce
from repro.core.sketches import SketchKind
from repro.core.sketchlog import derive_coarser
from repro.sanitize import build_plan
from repro.sim.machine import MachineConfig

#: Bugs used for the plan-enabled jobs-invariance spot check (both have
#: applicable plans, so the check exercises the seeded frontier).
INVARIANCE_BUGS = ("mysql-atom-log", "radix-order-rank")


@dataclass
class PredictionRow:
    """One bug's planned-vs-unplanned comparison at the SYNC level."""

    bug_id: str
    seed: int
    races: int
    violations: int
    deadlocks: int
    applicable: int
    baseline_attempts: int
    baseline_success: bool
    planned_attempts: int
    planned_success: bool

    @property
    def improved(self) -> bool:
        """Strictly fewer attempts with the plan (both arms succeeding)."""
        return (
            self.baseline_success
            and self.planned_success
            and self.planned_attempts < self.baseline_attempts
        )

    @property
    def regressed(self) -> bool:
        """More attempts (or lost success) with the plan — must not happen."""
        if self.baseline_success and not self.planned_success:
            return True
        return (
            self.planned_success
            and self.baseline_success
            and self.planned_attempts > self.baseline_attempts
        )


def _record_rich(spec, seed: int, ncpus: int) -> RecordedRun:
    return record(
        spec.make_program(),
        sketch=SketchKind.RW,
        seed=seed,
        config=MachineConfig(ncpus=ncpus),
        oracle=spec.oracle,
    )


def _sync_projection(recorded: RecordedRun) -> RecordedRun:
    sync_log = derive_coarser(recorded.log, SketchKind.SYNC)
    return dataclasses.replace(
        recorded, sketch=SketchKind.SYNC, log=sync_log
    )


def prediction_row(
    spec,
    max_attempts: int = 400,
    ncpus: int = 4,
    obs=None,
) -> PredictionRow:
    """Run one bug through both arms of the ablation."""
    seed = find_failing_seed(spec, ncpus=ncpus)
    if seed is None:
        raise RuntimeError(f"{spec.bug_id}: no failing production run found")
    rich = _record_rich(spec, seed, ncpus)
    plan = build_plan(rich.log)
    replayable = _sync_projection(rich)
    config = ExplorerConfig(max_attempts=max_attempts)
    kwargs = {} if obs is None else {"obs": obs}
    baseline = reproduce(replayable, config, **kwargs)
    planned = reproduce(replayable, config, plan=plan, **kwargs)
    return PredictionRow(
        bug_id=spec.bug_id,
        seed=seed,
        races=len(plan.races),
        violations=len(plan.violations),
        deadlocks=len(plan.deadlocks),
        applicable=len(plan.seeds_for(SketchKind.SYNC)),
        baseline_attempts=baseline.attempts,
        baseline_success=baseline.success,
        planned_attempts=planned.attempts,
        planned_success=planned.success,
    )


def prediction_ablation(
    specs: Optional[Sequence] = None,
    max_attempts: int = 400,
    ncpus: int = 4,
    obs=None,
) -> List[PredictionRow]:
    """The full E13 matrix over the bug suite."""
    return [
        prediction_row(spec, max_attempts=max_attempts, ncpus=ncpus, obs=obs)
        for spec in (all_bugs() if specs is None else specs)
    ]


def plan_jobs_invariant(
    bug_ids: Sequence[str] = INVARIANCE_BUGS,
    jobs_values: Sequence[int] = (1, 2),
    batch_size: int = 4,
    max_attempts: int = 400,
    ncpus: int = 4,
) -> bool:
    """Whether plan-seeded parallel exploration is ``--jobs``-independent.

    At a fixed ``batch_size`` the exploration schedule is defined to
    depend only on the batch size, never on worker count; seeding plan
    candidates must preserve that (identical attempt counts and winning
    constraints across ``jobs_values``).
    """
    for bug_id in bug_ids:
        spec = get_bug(bug_id)
        seed = find_failing_seed(spec, ncpus=ncpus)
        if seed is None:
            return False
        rich = _record_rich(spec, seed, ncpus)
        plan = build_plan(rich.log)
        replayable = _sync_projection(rich)
        outcomes = []
        for jobs in jobs_values:
            report = reproduce(
                replayable,
                ExplorerConfig(
                    max_attempts=max_attempts,
                    jobs=jobs,
                    batch_size=batch_size,
                ),
                plan=plan,
            )
            outcomes.append(
                (report.success, report.attempts, report.winning_constraints)
            )
        if any(outcome != outcomes[0] for outcome in outcomes[1:]):
            return False
    return True


def build_e13(obs=None) -> BenchResult:
    """E13 as a :class:`BenchResult` (table + JSON payload)."""
    matrix = prediction_ablation(obs=obs)
    invariant = plan_jobs_invariant()
    rows = []
    records = []
    for row in matrix:
        delta = row.baseline_attempts - row.planned_attempts
        rows.append(
            [
                row.bug_id,
                f"{row.races}/{row.violations}/{row.deadlocks}",
                row.applicable,
                row.baseline_attempts if row.baseline_success else "cap",
                row.planned_attempts if row.planned_success else "cap",
                f"-{delta}" if row.improved else ("=" if not row.regressed else f"+{-delta}"),
            ]
        )
        records.append(
            {
                "bug": row.bug_id,
                "seed": row.seed,
                "predicted": {
                    "races": row.races,
                    "violations": row.violations,
                    "deadlocks": row.deadlocks,
                },
                "applicable_candidates": row.applicable,
                "baseline": {
                    "attempts": row.baseline_attempts,
                    "success": row.baseline_success,
                },
                "planned": {
                    "attempts": row.planned_attempts,
                    "success": row.planned_success,
                },
                "improved": row.improved,
                "regressed": row.regressed,
            }
        )
    wins = sum(1 for row in matrix if row.improved)
    regressions = sum(1 for row in matrix if row.regressed)
    return BenchResult(
        experiment="e13",
        title=(
            "E13: predictive sanitizer ablation "
            f"(SYNC replay; {wins} bugs improved, {regressions} regressed)"
        ),
        headers=["bug", "races/viol/dl", "cands", "baseline", "planned", "delta"],
        rows=rows,
        records=records,
        meta={
            "max_attempts": 400,
            "wins": wins,
            "regressions": regressions,
            "jobs_invariant": invariant,
        },
    )


__all__ = [
    "INVARIANCE_BUGS",
    "PredictionRow",
    "build_e13",
    "plan_jobs_invariant",
    "prediction_ablation",
    "prediction_row",
]
