"""Run evaluation experiments directly (without pytest).

``pres bench <experiment>`` renders the same tables the benchmark suite
publishes, for quick interactive use.  The pytest benchmarks remain the
canonical, asserted versions; this runner shares their harness functions
so the numbers cannot drift apart.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps import all_bugs, get_bug
from repro.bench.attempts import attempts_matrix
from repro.bench.overhead import max_reduction, overhead_matrix, overhead_row
from repro.bench.scaling import scaling_curves
from repro.bench.seeds import failure_rate, find_failing_seed
from repro.bench.tables import format_table
from repro.core.sketches import SKETCH_ORDER, SketchKind


def run_t1() -> str:
    rows = []
    for spec in all_bugs():
        seed = find_failing_seed(spec)
        rate = failure_rate(spec, samples=100)
        rows.append(
            [spec.bug_id, spec.app, spec.category, spec.bug_type,
             f"{rate * 100:.0f}%", seed if seed is not None else "none"]
        )
    return format_table(
        ["bug", "app", "category", "type", "fail rate", "failing seed"],
        rows,
        title="T1: applications and bugs (11 apps, 13 bugs)",
    )


def run_e1() -> str:
    matrix = overhead_matrix(all_bugs(), SKETCH_ORDER, seed=7, ncpus=4)
    rows = [
        [row.bug_id] + [row.overhead_percent[s] for s in SKETCH_ORDER]
        for row in matrix
    ]
    return format_table(
        ["bug"] + [f"{k.value} %" for k in SKETCH_ORDER],
        rows,
        title="E1: recording overhead (% slowdown) per sketch, 4 CPUs",
    )


def run_e2() -> str:
    matrix = overhead_matrix(
        all_bugs(), (SketchKind.SYNC, SketchKind.RW), seed=7, ncpus=4
    )
    rows = [
        [row.bug_id, row.overhead_percent[SketchKind.SYNC],
         row.overhead_percent[SketchKind.RW],
         f"{row.reduction_vs_rw(SketchKind.SYNC):,.0f}x"
         if row.overhead_percent[SketchKind.SYNC] > 0 else "inf"]
        for row in matrix
    ]
    headline = max_reduction(matrix, SketchKind.SYNC)
    return format_table(
        ["bug", "sync %", "rw %", "reduction"],
        rows,
        title=f"E2: SYNC vs full-order recording (suite max {headline:,.0f}x)",
    )


def run_e3() -> str:
    matrix = attempts_matrix(all_bugs(), SKETCH_ORDER, max_attempts=400)
    rows = [
        [row.bug_id, row.seed]
        + [row.cells[s].render() for s in SKETCH_ORDER]
        for row in matrix
    ]
    return format_table(
        ["bug", "seed"] + [k.value for k in SKETCH_ORDER],
        rows,
        title="E3: replay attempts to reproduce (cap 400)",
    )


def run_e4() -> str:
    spec = get_bug("fft-order-sync")
    curves = scaling_curves(
        spec,
        lambda n: spec.make_program(workers=n, seg=6),
        (SketchKind.SYNC, SketchKind.SYS, SketchKind.RW),
        cpu_counts=(2, 4, 8, 16),
    )
    rows = [
        [f"fft/{curve.sketch.value}"]
        + [f"{p.overhead_percent:.1f}" for p in curve.points]
        for curve in curves
    ]
    return format_table(
        ["app/sketch", "2 cpus %", "4 cpus %", "8 cpus %", "16 cpus %"],
        rows,
        title="E4: recording overhead vs processors (workers = ncpus)",
    )


def run_e5() -> str:
    with_fb = attempts_matrix(all_bugs(), (SketchKind.SYNC,), max_attempts=400,
                              use_feedback=True)
    without_fb = attempts_matrix(all_bugs(), (SketchKind.SYNC,),
                                 max_attempts=400, use_feedback=False)
    rows = []
    for fb_row, nofb_row in zip(with_fb, without_fb):
        fb = fb_row.cells[SketchKind.SYNC]
        nofb = nofb_row.cells[SketchKind.SYNC]
        rows.append([fb_row.bug_id, fb.render(), nofb.render()])
    return format_table(
        ["bug", "feedback", "no feedback"],
        rows,
        title="E5: attempts with vs without feedback (SYNC sketch)",
    )


def run_e6() -> str:
    matrix = overhead_matrix(all_bugs(), SKETCH_ORDER, seed=7, ncpus=4)
    rows = [
        [row.bug_id, row.total_events]
        + [row.log_bytes[s] for s in SKETCH_ORDER]
        for row in matrix
    ]
    return format_table(
        ["bug", "events"] + [f"{k.value} B" for k in SKETCH_ORDER],
        rows,
        title="E6: sketch log size (bytes) per mechanism",
    )


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "t1": run_t1,
    "e1": run_e1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
}


def run_experiment(name: str) -> str:
    """Render one experiment's table by id (t1, e1..e6)."""
    try:
        return EXPERIMENTS[name.lower()]()
    except KeyError:
        valid = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(
            f"unknown experiment {name!r}; available: {valid} "
            "(e7-e10 need pytest: `pytest benchmarks/ --benchmark-only`)"
        ) from None


def available_experiments() -> List[str]:
    """Experiment ids runnable through :func:`run_experiment`."""
    return sorted(EXPERIMENTS)
