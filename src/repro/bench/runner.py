"""Run evaluation experiments directly (without pytest).

``pres bench <experiment>`` renders the same tables the benchmark suite
publishes, for quick interactive use; ``pres bench --json <experiment>``
additionally writes the raw figures as ``BENCH_<experiment>.json``.  The
pytest benchmarks remain the canonical, asserted versions; this runner
shares their harness functions so the numbers cannot drift apart.

Each experiment is a builder returning a
:class:`~repro.bench.results.BenchResult` — one object backing both the
ASCII table and the JSON payload.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from repro.apps import all_bugs, get_bug
from repro.bench.attempts import attempts_matrix
from repro.bench.epochs import build_e18
from repro.bench.faults import build_e17
from repro.bench.overhead import max_reduction, overhead_matrix, overhead_row
from repro.bench.prediction import build_e13
from repro.bench.results import BenchResult
from repro.bench.scaling import scaling_curves
from repro.bench.seeds import failure_rate, find_failing_seed
from repro.bench.service import build_e15
from repro.bench.static_guidance import build_e16
from repro.bench.speedup import build_e12
from repro.bench.warmstore import build_e14
from repro.core.sketches import SKETCH_ORDER, SketchKind


def build_t1() -> BenchResult:
    rows = []
    records = []
    for spec in all_bugs():
        seed = find_failing_seed(spec)
        rate = failure_rate(spec, samples=100)
        rows.append(
            [spec.bug_id, spec.app, spec.category, spec.bug_type,
             f"{rate * 100:.0f}%", seed if seed is not None else "none"]
        )
        records.append(
            {"bug": spec.bug_id, "app": spec.app, "category": spec.category,
             "type": spec.bug_type, "failure_rate": rate, "failing_seed": seed}
        )
    return BenchResult(
        experiment="t1",
        title="T1: applications and bugs (11 apps, 13 bugs)",
        headers=["bug", "app", "category", "type", "fail rate", "failing seed"],
        rows=rows,
        records=records,
    )


def build_e1() -> BenchResult:
    matrix = overhead_matrix(all_bugs(), SKETCH_ORDER, seed=7, ncpus=4)
    rows = [
        [row.bug_id]
        + [
            "n/a" if row.overhead_percent[s] is None else row.overhead_percent[s]
            for s in SKETCH_ORDER
        ]
        for row in matrix
    ]
    records = [
        {
            "bug": row.bug_id,
            "total_events": row.total_events,
            "overhead_percent": {s.value: row.overhead_percent[s] for s in SKETCH_ORDER},
            "entries": {s.value: row.entries[s] for s in SKETCH_ORDER},
        }
        for row in matrix
    ]
    return BenchResult(
        experiment="e1",
        title="E1: recording overhead (% slowdown) per sketch, 4 CPUs",
        headers=["bug"] + [f"{k.value} %" for k in SKETCH_ORDER],
        rows=rows,
        records=records,
    )


def build_e2() -> BenchResult:
    matrix = overhead_matrix(
        all_bugs(), (SketchKind.SYNC, SketchKind.RW), seed=7, ncpus=4
    )
    rows = []
    records = []
    for row in matrix:
        reduction = (
            row.reduction_vs_rw(SketchKind.SYNC)
            if (row.overhead_percent[SketchKind.SYNC] or 0) > 0
            else float("inf")
        )
        rows.append(
            [row.bug_id,
             "n/a" if row.overhead_percent[SketchKind.SYNC] is None
             else row.overhead_percent[SketchKind.SYNC],
             "n/a" if row.overhead_percent[SketchKind.RW] is None
             else row.overhead_percent[SketchKind.RW],
             f"{reduction:,.0f}x" if reduction != float("inf") else "inf"]
        )
        records.append(
            {"bug": row.bug_id,
             "sync_percent": row.overhead_percent[SketchKind.SYNC],
             "rw_percent": row.overhead_percent[SketchKind.RW],
             "reduction": reduction}
        )
    headline = max_reduction(matrix, SketchKind.SYNC)
    return BenchResult(
        experiment="e2",
        title=f"E2: SYNC vs full-order recording (suite max {headline:,.0f}x)",
        headers=["bug", "sync %", "rw %", "reduction"],
        rows=rows,
        records=records,
        meta={"max_reduction": headline},
    )


def build_e3() -> BenchResult:
    matrix = attempts_matrix(all_bugs(), SKETCH_ORDER, max_attempts=400)
    rows = [
        [row.bug_id, row.seed]
        + [row.cells[s].render() for s in SKETCH_ORDER]
        for row in matrix
    ]
    records = [
        {
            "bug": row.bug_id,
            "seed": row.seed,
            "sketches": {s.value: row.cells[s].to_record() for s in SKETCH_ORDER},
        }
        for row in matrix
    ]
    return BenchResult(
        experiment="e3",
        title="E3: replay attempts to reproduce (cap 400)",
        headers=["bug", "seed"] + [k.value for k in SKETCH_ORDER],
        rows=rows,
        records=records,
        meta={"max_attempts": 400},
    )


def build_e4() -> BenchResult:
    spec = get_bug("fft-order-sync")
    curves = scaling_curves(
        spec,
        lambda n: spec.make_program(workers=n, seg=6),
        (SketchKind.SYNC, SketchKind.SYS, SketchKind.RW),
        cpu_counts=(2, 4, 8, 16),
    )
    rows = [
        [f"fft/{curve.sketch.value}"]
        + [f"{p.overhead_percent:.1f}" for p in curve.points]
        for curve in curves
    ]
    records = [
        {
            "bug": curve.bug_id,
            "sketch": curve.sketch.value,
            "points": [
                {"ncpus": p.ncpus, "overhead_percent": p.overhead_percent}
                for p in curve.points
            ],
            "growth": curve.growth,
        }
        for curve in curves
    ]
    return BenchResult(
        experiment="e4",
        title="E4: recording overhead vs processors (workers = ncpus)",
        headers=["app/sketch", "2 cpus %", "4 cpus %", "8 cpus %", "16 cpus %"],
        rows=rows,
        records=records,
    )


def build_e5() -> BenchResult:
    with_fb = attempts_matrix(all_bugs(), (SketchKind.SYNC,), max_attempts=400,
                              use_feedback=True)
    without_fb = attempts_matrix(all_bugs(), (SketchKind.SYNC,),
                                 max_attempts=400, use_feedback=False)
    rows = []
    records = []
    for fb_row, nofb_row in zip(with_fb, without_fb):
        fb = fb_row.cells[SketchKind.SYNC]
        nofb = nofb_row.cells[SketchKind.SYNC]
        rows.append([fb_row.bug_id, fb.render(), nofb.render()])
        records.append(
            {"bug": fb_row.bug_id, "feedback": fb.to_record(),
             "no_feedback": nofb.to_record()}
        )
    return BenchResult(
        experiment="e5",
        title="E5: attempts with vs without feedback (SYNC sketch)",
        headers=["bug", "feedback", "no feedback"],
        rows=rows,
        records=records,
        meta={"max_attempts": 400},
    )


def build_e6() -> BenchResult:
    matrix = overhead_matrix(all_bugs(), SKETCH_ORDER, seed=7, ncpus=4)
    rows = [
        [row.bug_id, row.total_events]
        + [row.log_bytes[s] for s in SKETCH_ORDER]
        for row in matrix
    ]
    records = [
        {
            "bug": row.bug_id,
            "total_events": row.total_events,
            "log_bytes": {s.value: row.log_bytes[s] for s in SKETCH_ORDER},
        }
        for row in matrix
    ]
    return BenchResult(
        experiment="e6",
        title="E6: sketch log size (bytes) per mechanism",
        headers=["bug", "events"] + [f"{k.value} B" for k in SKETCH_ORDER],
        rows=rows,
        records=records,
    )


EXPERIMENTS: Dict[str, Callable[[], BenchResult]] = {
    "t1": build_t1,
    "e1": build_e1,
    "e2": build_e2,
    "e3": build_e3,
    "e4": build_e4,
    "e5": build_e5,
    "e6": build_e6,
    "e12": build_e12,
    "e13": build_e13,
    "e14": build_e14,
    "e15": build_e15,
    "e16": build_e16,
    "e17": build_e17,
    "e18": build_e18,
}


def run_experiment_result(name: str, obs=None) -> BenchResult:
    """Run one experiment by id (t1, e1..e6, e12..e18); structured
    result.

    :param obs: optional :class:`~repro.obs.session.ObsSession`; forwarded
        to builders that are instrumented for it (currently ``e12``,
        ``e14``, ``e15``, ``e16``, and ``e17``) so ``pres bench
        --trace-out/--metrics-out`` can export the session.
    """
    try:
        builder = EXPERIMENTS[name.lower()]
    except KeyError:
        valid = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(
            f"unknown experiment {name!r}; available: {valid} "
            "(e7-e10 need pytest: `pytest benchmarks/ --benchmark-only`)"
        ) from None
    if obs is not None and "obs" in inspect.signature(builder).parameters:
        return builder(obs=obs)
    return builder()


def run_experiment(name: str) -> str:
    """Render one experiment's table by id (t1, e1..e6, e12..e18)."""
    return run_experiment_result(name).render()


def available_experiments() -> List[str]:
    """Experiment ids runnable through :func:`run_experiment`."""
    return sorted(EXPERIMENTS)
