"""Replay-attempt sweeps (experiments E3, E5, E7, E8)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.spec import BugSpec
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import ReproductionReport, reproduce
from repro.core.sketches import SKETCH_ORDER, SketchKind
from repro.sim import MachineConfig


@dataclass
class AttemptCell:
    """One (bug, sketch) reproduction outcome."""

    success: bool
    attempts: int
    replay_steps: int
    constraints_used: int
    #: reproduction wall time in seconds (whole exploration loop).
    wall_time: float = 0.0

    def render(self) -> str:
        return str(self.attempts) if self.success else f">{self.attempts}"

    def to_record(self) -> Dict[str, object]:
        """Machine-readable cell for ``pres bench --json``."""
        return {
            "success": self.success,
            "attempts": self.attempts,
            "replay_steps": self.replay_steps,
            "constraints": self.constraints_used,
            "wall_time_s": round(self.wall_time, 6),
        }


@dataclass
class AttemptRow:
    bug_id: str
    bug_type: str
    seed: int
    cells: Dict[SketchKind, AttemptCell]


def attempts_row(
    spec: BugSpec,
    sketches: Sequence[SketchKind] = SKETCH_ORDER,
    max_attempts: int = 400,
    ncpus: int = 4,
    use_feedback: bool = True,
    seed: Optional[int] = None,
    jobs: int = 1,
    **params,
) -> AttemptRow:
    """Reproduce one bug under each sketch; returns the attempts per cell."""
    if seed is None:
        seed = find_failing_seed(spec, ncpus=ncpus, **params)
    if seed is None:
        raise RuntimeError(f"{spec.bug_id}: no failing production run found")
    program = spec.make_program(**params)
    cells: Dict[SketchKind, AttemptCell] = {}
    for sketch in sketches:
        recorded = record(
            program,
            sketch=sketch,
            seed=seed,
            config=MachineConfig(ncpus=ncpus),
            oracle=spec.oracle,
        )
        started = time.perf_counter()
        report = reproduce(
            recorded,
            ExplorerConfig(max_attempts=max_attempts, jobs=jobs),
            use_feedback=use_feedback,
        )
        elapsed = time.perf_counter() - started
        cells[sketch] = AttemptCell(
            success=report.success,
            attempts=report.attempts,
            replay_steps=report.total_replay_steps,
            constraints_used=len(report.winning_constraints),
            wall_time=elapsed,
        )
    return AttemptRow(
        bug_id=spec.bug_id, bug_type=spec.bug_type, seed=seed, cells=cells
    )


def attempts_matrix(
    specs: Sequence[BugSpec],
    sketches: Sequence[SketchKind] = SKETCH_ORDER,
    max_attempts: int = 400,
    ncpus: int = 4,
    use_feedback: bool = True,
    jobs: int = 1,
) -> List[AttemptRow]:
    """E3 (and, with use_feedback=False, the E5 ablation arm)."""
    return [
        attempts_row(
            spec,
            sketches,
            max_attempts=max_attempts,
            ncpus=ncpus,
            use_feedback=use_feedback,
            jobs=jobs,
        )
        for spec in specs
    ]


def reproduce_once(
    spec: BugSpec,
    sketch: SketchKind,
    max_attempts: int = 400,
    ncpus: int = 4,
    use_feedback: bool = True,
    **params,
) -> ReproductionReport:
    """One full reproduction, returning the raw report (E7/E8 building block)."""
    seed = find_failing_seed(spec, ncpus=ncpus, **params)
    if seed is None:
        raise RuntimeError(f"{spec.bug_id}: no failing production run found")
    recorded = record(
        spec.make_program(**params),
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=ncpus),
        oracle=spec.oracle,
    )
    return reproduce(
        recorded,
        ExplorerConfig(max_attempts=max_attempts),
        use_feedback=use_feedback,
    )
