"""Structured benchmark results.

Every experiment builds a :class:`BenchResult` — the rendered ASCII table
and the raw per-row records are two views of the same object, so the
human-readable output and ``pres bench --json`` can never disagree.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.bench.tables import format_table


def jsonable(value: Any) -> Any:
    """Coerce a table cell / record value into something JSON can hold.

    Non-finite floats (E2's ``inf`` reduction ratio) become strings, and
    anything exotic falls back to ``str`` rather than failing the dump.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return str(value)


@dataclass
class BenchResult:
    """One experiment's outcome: a renderable table plus raw records.

    ``rows`` back the ASCII table; ``records`` are the machine-readable
    per-row dicts (richer — raw floats, nested per-sketch figures);
    ``meta`` holds headline numbers and workload descriptors.
    """

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    records: List[Dict[str, Any]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The ASCII table ``pres bench`` prints."""
        return format_table(self.headers, self.rows, title=self.title)

    def to_payload(self) -> Dict[str, Any]:
        """The JSON document shape for ``pres bench --json``."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[jsonable(cell) for cell in row] for row in self.rows],
            "records": jsonable(self.records),
            "meta": jsonable(self.meta),
        }

    def write_json(self, directory: Union[str, Path] = ".") -> Path:
        """Write ``BENCH_<experiment>.json`` under ``directory`` atomically."""
        from repro.robust.atomic import atomic_write_text

        path = Path(directory) / f"BENCH_{self.experiment}.json"
        atomic_write_text(
            str(path),
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n",
        )
        return path
