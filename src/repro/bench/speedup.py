"""Parallel-exploration speedup harness (experiment E12).

Measures the parallel engine on a multi-hundred-attempt workload
(``radix-order-rank`` under ODR-strict output matching, which defeats
the feedback shortcuts and forces a long frontier walk) and reports,
per arm:

* wall time and attempt count — with the deterministic-merge contract
  checked: every ``jobs`` arm must report the *identical* attempt count,
  success bit and winning constraint set as the serial arm;
* a cached re-walk arm — the same exploration run twice against one
  shared :class:`~repro.core.feedback.AttemptCache`, where the second
  walk answers from the cache instead of replaying;
* a sort-once microbenchmark — per-attempt ``sorted(key=str)`` (what
  the reproducer used to do on every replay) against the memoized
  :func:`~repro.core.constraints.canonical_order` path.

Honest-measurement note: wall-clock gains from the process pool require
actual spare cores; on a single-CPU host the pool arm pays dispatch
overhead for no parallelism, and the JSON reports whatever was really
measured (``host_cpus`` is in the meta so readers can judge).  The
cache and sort arms are serial wins and hold on any host.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.apps import get_bug
from repro.bench.results import BenchResult
from repro.bench.seeds import find_failing_seed
from repro.core.constraints import EventRef, OrderConstraint, canonical_order
from repro.core.explorer import ExplorerConfig
from repro.core.feedback import AttemptCache
from repro.core.recorder import RecordedRun, record
from repro.core.reproducer import ReproductionReport, reproduce
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig

#: The E12 workload: radix sort's rank-order bug with ODR-strict output
#: matching needs several hundred attempts at this size — big enough for
#: per-attempt costs to dominate per-session setup.
E12_BUG = "radix-order-rank"
E12_PARAMS: Dict[str, int] = {"workers": 5, "seg": 6}
E12_NCPUS = 4
E12_MAX_ATTEMPTS = 300


def host_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine's cores even when an affinity
    mask or container quota grants fewer; ``sched_getaffinity`` reports
    the usable set where the platform has it (Linux).  E12's speedup
    numbers are only honest against the usable figure.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass
class SpeedupArm:
    """One measured configuration of the E12 workload."""

    label: str
    jobs: int
    attempts: int
    success: bool
    wall_time_s: float
    cache_hits: int = 0
    #: attempts dispatched with a schedule-prefix resume plan.
    prefix_hits: int = 0
    #: serial wall time / this arm's wall time (1.0 for the serial arm).
    speedup: float = 1.0
    #: deterministic-merge check: same attempts/success/winner as serial.
    matches_serial: bool = True

    def to_record(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "jobs": self.jobs,
            "attempts": self.attempts,
            "success": self.success,
            "wall_time_s": round(self.wall_time_s, 6),
            "cache_hits": self.cache_hits,
            "prefix_hits": self.prefix_hits,
            "speedup": round(self.speedup, 3),
            "matches_serial": self.matches_serial,
        }


def e12_workload(
    bug: str = E12_BUG,
    params: Optional[Dict[str, int]] = None,
    ncpus: int = E12_NCPUS,
) -> RecordedRun:
    """Record the E12 production run (one recording serves every arm)."""
    spec = get_bug(bug)
    params = dict(E12_PARAMS if params is None else params)
    seed = find_failing_seed(spec, ncpus=ncpus, **params)
    if seed is None:
        raise RuntimeError(f"{bug}: no failing production run found")
    return record(
        spec.make_program(**params),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=ncpus),
        oracle=spec.oracle,
    )


def _timed_reproduce(
    recorded: RecordedRun,
    max_attempts: int,
    jobs: int = 1,
    cache: Optional[AttemptCache] = None,
    obs=None,
) -> "tuple[ReproductionReport, float]":
    config = ExplorerConfig(max_attempts=max_attempts, jobs=jobs)
    started = time.perf_counter()
    report = reproduce(recorded, config, match_output=True, cache=cache,
                       obs=obs)
    return report, time.perf_counter() - started


def _same_outcome(a: ReproductionReport, b: ReproductionReport) -> bool:
    return (
        a.success == b.success
        and a.attempts == b.attempts
        and a.winning_constraints == b.winning_constraints
    )


def sort_microbench(repeats: int = 400, n_sets: int = 16, n_constraints: int = 8) -> Dict[str, Any]:
    """Per-attempt re-sort vs sort-once constraint ordering.

    Models the reproducer's old hot path — every replay attempt re-sorted
    its constraint set with ``key=str`` (dataclass ``__repr__`` per
    element per comparison) — against the current one, which sorts each
    distinct set once via :func:`canonical_order` and serves repeats from
    a memo, exactly as :class:`~repro.core.parallel.AttemptContext` does.
    """
    sets = []
    for i in range(n_sets):
        constraints = frozenset(
            OrderConstraint(
                before=EventRef(tid=i % 4, family="mem", key=("seg", i, j), occurrence=j + 1),
                after=EventRef(tid=(i + 1) % 4, family="lock", key=f"m{j}", occurrence=1),
            )
            for j in range(n_constraints)
        )
        sets.append(constraints)

    started = time.perf_counter()
    for _ in range(repeats):
        for constraints in sets:
            tuple(sorted(constraints, key=str))
    legacy = time.perf_counter() - started

    memo: Dict[Any, Any] = {}
    started = time.perf_counter()
    for _ in range(repeats):
        for constraints in sets:
            ordered = memo.get(constraints)
            if ordered is None:
                # the microbench measures the re-sort cost on purpose
                memo[constraints] = canonical_order(constraints)  # determinism: ok
    memoized = time.perf_counter() - started

    return {
        "repeats": repeats,
        "sets": n_sets,
        "constraints_per_set": n_constraints,
        "per_attempt_sort_s": round(legacy, 6),
        "sort_once_s": round(memoized, 6),
        "speedup": round(legacy / memoized, 1) if memoized > 0 else float("inf"),
    }


def run_speedup(
    jobs: Sequence[int] = (2, 4),
    max_attempts: int = E12_MAX_ATTEMPTS,
    recorded: Optional[RecordedRun] = None,
    sort_repeats: int = 400,
    obs=None,
) -> BenchResult:
    """E12: serial vs pooled vs cached exploration of one workload.

    :param obs: optional :class:`~repro.obs.session.ObsSession` shared by
        every arm — each arm pays the same instrumentation cost, so the
        relative speedups stay honest.  Its metrics snapshot is attached
        as ``meta["metrics"]``.
    """
    if recorded is None:
        recorded = e12_workload()
    arms: List[SpeedupArm] = []

    serial_report, serial_wall = _timed_reproduce(
        recorded, max_attempts, obs=obs
    )
    arms.append(
        SpeedupArm(
            label="serial",
            jobs=1,
            attempts=serial_report.attempts,
            success=serial_report.success,
            wall_time_s=serial_wall,
        )
    )

    for n in jobs:
        if n <= 1:
            continue
        report, wall = _timed_reproduce(recorded, max_attempts, jobs=n,
                                        obs=obs)
        arms.append(
            SpeedupArm(
                label=f"pool jobs={n}",
                jobs=n,
                attempts=report.attempts,
                success=report.success,
                wall_time_s=wall,
                prefix_hits=report.prefix_hits,
                speedup=serial_wall / wall if wall > 0 else float("inf"),
                matches_serial=_same_outcome(report, serial_report),
            )
        )

    # Cached re-walk: the second pass over the same exploration answers
    # from the shared AttemptCache instead of replaying — the ladder
    # re-walk scenario reproduce_degraded leans on.
    shared = AttemptCache()
    _cold_report, cold_wall = _timed_reproduce(recorded, max_attempts,
                                               cache=shared, obs=obs)
    warm_report, warm_wall = _timed_reproduce(recorded, max_attempts,
                                              cache=shared, obs=obs)
    arms.append(
        SpeedupArm(
            label="cached re-walk",
            jobs=1,
            attempts=warm_report.attempts,
            success=warm_report.success,
            wall_time_s=warm_wall,
            cache_hits=warm_report.cache_hits,
            prefix_hits=warm_report.prefix_hits,
            speedup=cold_wall / warm_wall if warm_wall > 0 else float("inf"),
            matches_serial=_same_outcome(warm_report, serial_report),
        )
    )

    rows = [
        [
            arm.label,
            arm.jobs,
            arm.attempts,
            "yes" if arm.success else "no",
            f"{arm.wall_time_s:.2f}",
            arm.cache_hits,
            arm.prefix_hits,
            f"{arm.speedup:.2f}x",
            "yes" if arm.matches_serial else "NO",
        ]
        for arm in arms
    ]
    widest = max((arm.jobs for arm in arms), default=1)
    cpus = host_cpu_count()
    meta = {
        "bug": recorded.program.name,
        "params": dict(E12_PARAMS),
        "ncpus_simulated": E12_NCPUS,
        "max_attempts": max_attempts,
        "host_cpus": cpus,
        "sort_microbench": sort_microbench(repeats=sort_repeats),
        "note": (
            "pool-arm wall time needs spare host cores; attempt "
            "trajectories are jobs-invariant by construction"
        ),
    }
    if cpus < widest:
        meta["warning"] = (
            f"host grants {cpus} usable core(s) but the widest arm asks "
            f"for {widest} workers; pool wall times measure dispatch "
            "overhead, not parallel speedup"
        )
    if obs is not None and obs.metrics.enabled:
        meta["metrics"] = obs.metrics.snapshot()
    return BenchResult(
        experiment="e12",
        title=(
            f"E12: parallel exploration speedup ({E12_BUG}, "
            f"cap {max_attempts}, ODR-strict)"
        ),
        headers=["arm", "jobs", "attempts", "success", "wall s",
                 "cache hits", "prefix hits", "speedup", "= serial"],
        rows=rows,
        records=[arm.to_record() for arm in arms],
        meta=meta,
    )


def build_e12(obs=None) -> BenchResult:
    """Registry entry point (``pres bench e12``)."""
    return run_speedup(obs=obs)
