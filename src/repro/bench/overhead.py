"""Recording-overhead sweeps (experiments E1, E2, E6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.spec import BugSpec
from repro.core.cost import DEFAULT_COST_MODEL, CostModel
from repro.core.recorder import record
from repro.core.sketches import SKETCH_ORDER, SketchKind
from repro.sim import MachineConfig


@dataclass
class OverheadRow:
    """Per-sketch recording figures for one application."""

    bug_id: str
    app: str
    #: per-sketch overhead, ``None`` when the native baseline was
    #: unusable (see :attr:`RecordingStats.overhead`).
    overhead_percent: Dict[SketchKind, Optional[float]]
    log_bytes: Dict[SketchKind, int]
    entries: Dict[SketchKind, int]
    total_events: int

    def reduction_vs_rw(self, sketch: SketchKind) -> float:
        """How many times cheaper this sketch records than full RW order."""
        denominator = self.overhead_percent.get(sketch) or 0.0
        numerator = self.overhead_percent.get(SketchKind.RW) or 0.0
        if denominator <= 0:
            return float("inf")
        return numerator / denominator


def overhead_row(
    spec: BugSpec,
    sketches: Sequence[SketchKind] = SKETCH_ORDER,
    seed: int = 7,
    ncpus: int = 4,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    **params,
) -> OverheadRow:
    """Record one app once per sketch and collect the cost figures.

    The same seed is used for every sketch, so all mechanisms observe the
    *same* execution and the numbers are directly comparable.
    """
    overheads: Dict[SketchKind, float] = {}
    sizes: Dict[SketchKind, int] = {}
    entries: Dict[SketchKind, int] = {}
    total_events = 0
    program = spec.make_program(**params)
    for sketch in sketches:
        recorded = record(
            program,
            sketch=sketch,
            seed=seed,
            config=MachineConfig(ncpus=ncpus),
            cost_model=cost_model,
            oracle=spec.oracle,
        )
        overheads[sketch] = recorded.stats.overhead_percent
        sizes[sketch] = recorded.stats.log_bytes
        entries[sketch] = recorded.stats.logged_entries
        total_events = recorded.stats.total_events
    return OverheadRow(
        bug_id=spec.bug_id,
        app=spec.app,
        overhead_percent=overheads,
        log_bytes=sizes,
        entries=entries,
        total_events=total_events,
    )


def overhead_matrix(
    specs: Sequence[BugSpec],
    sketches: Sequence[SketchKind] = SKETCH_ORDER,
    seed: int = 7,
    ncpus: int = 4,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[OverheadRow]:
    """E1: one overhead row per application/bug."""
    return [
        overhead_row(spec, sketches, seed=seed, ncpus=ncpus, cost_model=cost_model)
        for spec in specs
    ]


def max_reduction(
    rows: Sequence[OverheadRow], sketch: SketchKind = SketchKind.SYNC
) -> float:
    """E2: the headline 'up to N times cheaper than full-order recording'."""
    finite = [
        row.reduction_vs_rw(sketch)
        for row in rows
        if (row.overhead_percent.get(sketch) or 0.0) > 0
    ]
    return max(finite) if finite else float("inf")
