"""Processor-scaling sweeps (experiment E4).

Follows the paper's methodology: the application is configured with as
many worker threads as there are processors, and recording overhead is
measured at each point.  The claim under test is the *shape*: sketch
mechanisms that only log already-serializing events (SYNC, SYS) stay
nearly flat, while full-order recording (RW) degrades super-linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.apps.spec import BugSpec
from repro.core.recorder import record
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig
from repro.sim.program import Program


@dataclass
class ScalingPoint:
    ncpus: int
    overhead_percent: float


@dataclass
class ScalingCurve:
    bug_id: str
    sketch: SketchKind
    points: List[ScalingPoint]

    def overheads(self) -> List[float]:
        return [p.overhead_percent for p in self.points]

    @property
    def growth(self) -> float:
        """Last-point overhead relative to first-point overhead."""
        first = self.points[0].overhead_percent
        last = self.points[-1].overhead_percent
        if first <= 0:
            return float("inf") if last > 0 else 1.0
        return last / first


def scaling_curves(
    spec: BugSpec,
    program_for_cpus: Callable[[int], Program],
    sketches: Sequence[SketchKind] = (SketchKind.SYNC, SketchKind.SYS, SketchKind.RW),
    cpu_counts: Sequence[int] = (2, 4, 8, 16),
    seed: int = 3,
) -> List[ScalingCurve]:
    """Overhead-vs-processors curves for one application."""
    curves: List[ScalingCurve] = []
    for sketch in sketches:
        points: List[ScalingPoint] = []
        for ncpus in cpu_counts:
            recorded = record(
                program_for_cpus(ncpus),
                sketch=sketch,
                seed=seed,
                config=MachineConfig(ncpus=ncpus),
                oracle=spec.oracle,
            )
            points.append(
                ScalingPoint(
                    ncpus=ncpus,
                    # A run without a usable native baseline has no
                    # overhead figure; curves treat it as flat zero.
                    overhead_percent=recorded.stats.overhead_percent or 0.0,
                )
            )
        curves.append(ScalingCurve(bug_id=spec.bug_id, sketch=sketch, points=points))
    return curves
