"""Finding production runs that fail.

The paper records the production run in which the bug manifested; our
stand-in is a seed search over the random "OS" scheduler.  Results are
memoized per (bug, params, ncpus) because every experiment needs the same
failing seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.apps.spec import BugSpec
from repro.core.recorder import apply_oracle
from repro.sim import Machine, MachineConfig, RandomScheduler

_seed_cache: Dict[Tuple[str, Tuple, int], Optional[int]] = {}


def _run_fails(spec: BugSpec, seed: int, ncpus: int, **params) -> bool:
    program = spec.make_program(**params)
    machine = Machine(program, RandomScheduler(seed), MachineConfig(ncpus=ncpus))
    trace = machine.run()
    return apply_oracle(trace, spec.oracle) is not None


def find_failing_seed(
    spec: BugSpec, budget: int = 500, ncpus: int = 4, **params
) -> Optional[int]:
    """First scheduler seed under which the bug manifests (memoized)."""
    key = (spec.bug_id, tuple(sorted(params.items())), ncpus)
    if key in _seed_cache:
        return _seed_cache[key]
    found: Optional[int] = None
    for seed in range(budget):
        if _run_fails(spec, seed, ncpus, **params):
            found = seed
            break
    _seed_cache[key] = found
    return found


def find_longest_failing_seed(
    spec: BugSpec, budget: int = 200, ncpus: int = 4, **params
) -> Optional[int]:
    """The failing seed whose production run executes the *most* events
    (memoized; ties break to the lowest seed).

    The epoch-windowing experiment (E18) wants the always-on scenario —
    a long production run ahead of the failure — so it picks the
    longest failing run the seed budget can find rather than the first.
    """
    key = ("longest", spec.bug_id, tuple(sorted(params.items())), ncpus)
    if key in _seed_cache:
        return _seed_cache[key]
    best: Optional[int] = None
    best_events = -1
    for seed in range(budget):
        machine = Machine(
            spec.make_program(**params),
            RandomScheduler(seed),
            MachineConfig(ncpus=ncpus),
        )
        trace = machine.run()
        if apply_oracle(trace, spec.oracle) is None:
            continue
        if len(trace.events) > best_events:
            best, best_events = seed, len(trace.events)
    _seed_cache[key] = best
    return best


def failure_rate(
    spec: BugSpec, samples: int = 100, ncpus: int = 4, **params
) -> float:
    """Fraction of random schedules on which the bug manifests."""
    fails = sum(
        1 for seed in range(samples) if _run_fails(spec, seed, ncpus, **params)
    )
    return fails / samples
