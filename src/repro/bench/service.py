"""E15 - replay as a service: throughput, latency, and byte-identity.

The claim under test (see :mod:`repro.service`): a long-lived
multi-tenant server multiplexing many concurrent jobs over one warm
engine loses *nothing* of the pipeline's determinism — every job's
report is byte-identical to the serial CLI run of the same request —
while the shared store turns repeat reproductions into lookups.

The harness boots the real server (``ServiceThread``, the same code
path as ``pres serve``) on an ephemeral port, computes one serial
reference report per bug in-process, then drives two arms over the
service's own HTTP client:

* **cold**: ~100 jobs (the E14 bug spread, round-robin) against an
  empty shared store;
* **warm**: the same ~100 jobs again — every attempt now folds from
  the store the cold arm populated.

Each arm reports throughput (jobs/s), p50/p99 job latency, and whether
*every* report matched its serial reference byte for byte.  The meta
block carries the two CI gates: ``zero_failed`` and
``identical_reports``.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Tuple

from repro.apps import get_bug
from repro.bench.results import BenchResult
from repro.bench.seeds import find_failing_seed
from repro.bench.warmstore import E14_BUGS
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import render_report, reproduce
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig

# repro.service is imported inside build_e15: the service's job engine
# uses repro.bench.seeds, so a module-level import here would close an
# import cycle through repro.bench.__init__.

#: Jobs per arm: the E14 bug spread, round-robin.
E15_JOBS = 100
E15_MAX_ATTEMPTS = 200


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _serial_references(bugs) -> Dict[str, Tuple[int, str]]:
    """Per bug: the failing seed and the serial CLI report bytes."""
    references: Dict[str, Tuple[int, str]] = {}
    for bug_id in bugs:
        spec = get_bug(bug_id)
        seed = find_failing_seed(spec)
        assert seed is not None, f"{bug_id}: no failing seed"
        recorded = record(
            spec.make_program(),
            sketch=SketchKind.SYNC,
            seed=seed,
            config=MachineConfig(ncpus=4),
            oracle=spec.oracle,
        )
        report = reproduce(
            recorded, ExplorerConfig(max_attempts=E15_MAX_ATTEMPTS)
        )
        references[bug_id] = (seed, render_report(report))
    return references


def _run_arm(
    client: "ServiceClient",
    references: Dict[str, Tuple[int, str]],
    n_jobs: int,
) -> dict:
    """Submit ``n_jobs`` round-robin, wait for all, audit every report."""
    from repro.service.protocol import JobRequest

    bugs = sorted(references)
    started = time.perf_counter()
    submitted: List[Tuple[str, str]] = []  # (job_id, bug)
    for index in range(n_jobs):
        bug_id = bugs[index % len(bugs)]
        seed, _ = references[bug_id]
        doc = client.submit(JobRequest(
            bug=bug_id,
            seed=seed,
            max_attempts=E15_MAX_ATTEMPTS,
            # Even indices explore serially, odd ones over the shared
            # pool — byte-identity must hold across both.
            jobs=1 if index % 2 == 0 else 2,
        ))
        submitted.append((doc["id"], bug_id))
    latencies: List[float] = []
    failed = 0
    mismatched = 0
    store_hits = 0
    for job_id, bug_id in submitted:
        final = client.wait_for(job_id)
        if final["state"] != "done":
            failed += 1
            continue
        latencies.append(final["latency_s"])
        result = client.result(job_id)
        store_hits += result["cache_hits"]
        if client.result_text(job_id) != references[bug_id][1]:
            mismatched += 1
    elapsed = time.perf_counter() - started
    return {
        "jobs": n_jobs,
        "failed": failed,
        "mismatched": mismatched,
        "store_hits": store_hits,
        "throughput_jobs_s": n_jobs / elapsed if elapsed else 0.0,
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "elapsed_s": elapsed,
    }


def build_e15(obs=None) -> BenchResult:
    """Run the service load comparison and package it as a BenchResult.

    :param obs: optional :class:`~repro.obs.session.ObsSession`; the
        serial reference reproductions charge into it, so
        ``pres bench e15 --metrics-out`` still exports engine counters.
    """
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceThread

    references = _serial_references(E14_BUGS)
    arms: List[Tuple[str, dict]] = []
    with tempfile.TemporaryDirectory() as root:
        with ServiceThread(
            os.path.join(root, "store"), slots=4, pool_jobs=2,
            max_queued=2 * E15_JOBS,
        ) as service:
            client = ServiceClient(service.url)
            arms.append(("cold", _run_arm(client, references, E15_JOBS)))
            arms.append(("warm", _run_arm(client, references, E15_JOBS)))
            snapshot = client.metrics()

    rows = []
    records = []
    zero_failed = True
    identical = True
    for name, arm in arms:
        zero_failed = zero_failed and arm["failed"] == 0
        identical = identical and arm["mismatched"] == 0
        rows.append([
            name,
            arm["jobs"],
            arm["failed"],
            arm["store_hits"],
            f"{arm['throughput_jobs_s']:.1f}",
            f"{arm['p50_s'] * 1e3:.1f}",
            f"{arm['p99_s'] * 1e3:.1f}",
            "yes" if arm["mismatched"] == 0 else "NO",
        ])
        records.append(dict(arm, arm=name))

    return BenchResult(
        experiment="e15",
        title="E15: replay as a service - concurrent jobs, one warm engine",
        headers=["arm", "jobs", "failed", "store hits", "jobs/s",
                 "p50 ms", "p99 ms", "identical"],
        rows=rows,
        records=records,
        meta={
            "n_jobs": E15_JOBS,
            "max_attempts": E15_MAX_ATTEMPTS,
            "bugs": list(E14_BUGS),
            "zero_failed": zero_failed,
            "identical_reports": identical,
            "service_counters": snapshot.get("counters", {}),
        },
    )
