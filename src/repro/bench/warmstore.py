"""E14 - warm-start reproduction from a cross-run attempt store.

The claim under test (see :mod:`repro.store`): persisting attempt
outcomes changes *where* outcomes come from, never *what* is explored.
For each bug the harness runs the same reproduction four ways —

* **baseline**: no store at all;
* **cold**: an empty store (every attempt replays live, then persists);
* **warm**: the same store again, as a fresh process would see it
  (every attempt folds from disk: zero live replays);
* **partial**: after ``gc`` evicted roughly half the records (only the
  evicted keys replay live).

All four must report the same attempt sequence, the same winner, and a
byte-identical complete log; the warm run must answer every attempt from
the store.  That is the store's jobs-invariance-style contract, asserted
here over real suite bugs rather than unit fixtures.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional

from repro.apps import get_bug
from repro.bench.results import BenchResult
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import record
from repro.core.reproducer import ReproductionReport, reproduce
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig

#: Suite bugs exercised by E14 — a spread of bug types, kept small
#: enough for CI (the store contract is per-recording, not per-suite).
E14_BUGS = (
    "mysql-atom-log",
    "apache-atom-buf",
    "fft-order-sync",
    "pbzip2-order-free",
)

E14_MAX_ATTEMPTS = 200


def _signature(report: ReproductionReport) -> tuple:
    """Everything two equivalent reproductions must agree on."""
    return (
        report.success,
        report.attempts,
        tuple(
            (r.outcome, r.base_seed, r.n_constraints) for r in report.records
        ),
        report.winning_constraints,
        report.complete_log.to_json() if report.complete_log else None,
    )


def build_e14(obs=None) -> BenchResult:
    """Run the warm-start comparison and package it as a BenchResult.

    :param obs: optional :class:`~repro.obs.session.ObsSession` shared by
        every reproduction, so ``pres bench e14 --metrics-out`` exports
        the ``store.*`` counters the runs charged.
    """
    from repro.store import AttemptStore

    rows: List[list] = []
    records: List[dict] = []
    all_identical = True
    zero_live_warm = True
    config = ExplorerConfig(max_attempts=E14_MAX_ATTEMPTS)

    for bug_id in E14_BUGS:
        spec = get_bug(bug_id)
        seed = find_failing_seed(spec)
        assert seed is not None, f"{bug_id}: no failing seed"
        recorded = record(
            spec.make_program(),
            sketch=SketchKind.SYNC,
            seed=seed,
            config=MachineConfig(ncpus=4),
            oracle=spec.oracle,
        )
        baseline = reproduce(recorded, config, obs=obs)
        with tempfile.TemporaryDirectory() as root:
            store_dir = os.path.join(root, "store")
            cold = reproduce(recorded, config, store=store_dir, obs=obs)
            warm = reproduce(recorded, config, store=store_dir, obs=obs)
            stats = AttemptStore(store_dir).stats()
            gc_store = AttemptStore(store_dir)
            gc_report = gc_store.gc(max(1, stats.records // 2))
            partial = reproduce(recorded, config, store=store_dir, obs=obs)

        identical = (
            _signature(baseline)
            == _signature(cold)
            == _signature(warm)
            == _signature(partial)
        )
        warm_live = warm.attempts - warm.cache_hits
        partial_live = partial.attempts - partial.cache_hits
        all_identical = all_identical and identical
        zero_live_warm = zero_live_warm and warm_live == 0

        rows.append(
            [bug_id, cold.attempts, warm.cache_hits, warm_live,
             partial_live, stats.records, "yes" if identical else "NO"]
        )
        records.append(
            {
                "bug": bug_id,
                "seed": seed,
                "success": cold.success,
                "attempts": cold.attempts,
                "cold_cache_hits": cold.cache_hits,
                "warm_cache_hits": warm.cache_hits,
                "warm_live_replays": warm_live,
                "partial_live_replays": partial_live,
                "gc_evicted": gc_report.evicted,
                "store_records": stats.records,
                "store_bytes": stats.size_bytes,
                "identical_reports": identical,
            }
        )

    return BenchResult(
        experiment="e14",
        title="E14: warm-start reproduction from a cross-run attempt store",
        headers=["bug", "attempts", "warm hits", "warm live",
                 "partial live", "records", "identical"],
        rows=rows,
        records=records,
        meta={
            "max_attempts": E14_MAX_ATTEMPTS,
            "identical_reports": all_identical,
            "zero_live_warm": zero_live_warm,
        },
    )
