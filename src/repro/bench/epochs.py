"""Epoch-windowed always-on recording vs full history (experiment E18).

PRES as published keeps the entire sketch log; the epoch recorder
(:mod:`repro.core.epochs`) retains only the trailing window and replays
from the newest boundary snapshot.  E18 pins the bargain on the T1
suite, per bug:

* **log size** — retained (windowed) log bytes vs the full-history log
  of the same production run; on the long-running server workloads
  (apache, mysql, cherokee) the windowed log must be *strictly* smaller.
* **attempts** — :func:`~repro.core.reproducer.reproduce_windowed`
  against the plain :func:`~repro.core.reproducer.reproduce` baseline
  (E3's SYNC arm): last-epoch in-situ replay must reproduce every bug in
  no more attempts than the full-history search.
* **determinism** — on the server bugs, the rendered report must be
  byte-identical across ``jobs`` ∈ {1, 2, 4} and across window sizes K
  and K+1 (both cover the bug window, so the walk reproduces on the
  same rung either way).

Two per-bug adaptive choices keep the experiment meaningful without
hand tuning.  The production run is the *longest* failing run the seed
budget finds (:func:`~repro.bench.seeds.find_longest_failing_seed`) —
the always-on scenario is a long run ahead of the failure, and a seed
whose run dies in 50 steps leaves nothing to window.  The boundary
pitch is then derived from that run's own length, so every bug gets a
multi-epoch timeline with real truncation.  ``tools/check_epochs.py``
gates CI on the JSON this module emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.apps import all_bugs
from repro.apps.spec import BugSpec
from repro.bench.results import BenchResult
from repro.bench.seeds import find_longest_failing_seed
from repro.core.epochs import EpochConfig
from repro.core.explorer import ExplorerConfig
from repro.core.recorder import RecordedRun, record
from repro.core.reproducer import render_report, reproduce, reproduce_windowed
from repro.core.sketches import SketchKind
from repro.sim import MachineConfig

#: the long-running server workloads the windowing story is *for*: their
#: production runs dwarf the bug window, so these are where the strict
#: log-size win and the determinism contracts are asserted.
E18_SERVER_BUGS = ("apache-atom-buf", "mysql-atom-log", "mysql-atom-drop",
                   "cherokee-atom-time")
E18_NCPUS = 4
E18_MAX_ATTEMPTS = 400
E18_WINDOW = 2
#: aim for about this many epochs per run when deriving the pitch.
E18_TARGET_EPOCHS = 3
#: jobs values the server-bug reports must be byte-identical across.
E18_JOBS_ARMS = (1, 2, 4)


@dataclass
class EpochBenchRow:
    """One bug's full-history vs epoch-windowed comparison."""

    bug_id: str
    seed: int
    steps: int
    window: int
    total_epochs: int
    truncated_entries: int
    full_bytes: int
    windowed_bytes: int
    full_entries: int
    windowed_entries: int
    full_attempts: int
    full_success: bool
    windowed_attempts: int
    windowed_success: bool
    #: which rung reproduced ("epoch N (step S)" / "full history" / "").
    reproduced_from: str = ""
    #: report byte-identity across jobs arms (server bugs; None = not run).
    jobs_identical: Optional[bool] = None
    #: report byte-identity across window K vs K+1 (server bugs).
    window_identical: Optional[bool] = None

    @property
    def bytes_saved_percent(self) -> float:
        if self.full_bytes <= 0:
            return 0.0
        return 100.0 * (1.0 - self.windowed_bytes / self.full_bytes)

    def to_record(self) -> Dict[str, Any]:
        return {
            "bug": self.bug_id,
            "seed": self.seed,
            "steps": self.steps,
            "window": self.window,
            "total_epochs": self.total_epochs,
            "truncated_entries": self.truncated_entries,
            "full_bytes": self.full_bytes,
            "windowed_bytes": self.windowed_bytes,
            "full_entries": self.full_entries,
            "windowed_entries": self.windowed_entries,
            "bytes_saved_percent": round(self.bytes_saved_percent, 2),
            "full_attempts": self.full_attempts,
            "full_success": self.full_success,
            "windowed_attempts": self.windowed_attempts,
            "windowed_success": self.windowed_success,
            "reproduced_from": self.reproduced_from,
            "jobs_identical": self.jobs_identical,
            "window_identical": self.window_identical,
            "server_bug": self.bug_id in E18_SERVER_BUGS,
        }


def epoch_pitch(recorded_full: RecordedRun) -> int:
    """The per-bug boundary pitch: about :data:`E18_TARGET_EPOCHS` epochs.

    Derived from the production run's own event count (steps and events
    are 1:1 in the simulator), so every bug gets a multi-epoch timeline
    regardless of how long its run is.
    """
    return max(10, recorded_full.stats.total_events // E18_TARGET_EPOCHS)


def _record_windowed(
    spec: BugSpec, seed: int, steps: int, window: int
) -> RecordedRun:
    return record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=E18_NCPUS),
        oracle=spec.oracle,
        epochs=EpochConfig(steps=steps, window=window),
    )


def epoch_bench_row(
    spec: BugSpec,
    max_attempts: int = E18_MAX_ATTEMPTS,
    window: int = E18_WINDOW,
    seed: Optional[int] = None,
) -> EpochBenchRow:
    """Run one bug's full-vs-windowed comparison (both from one seed)."""
    if seed is None:
        seed = find_longest_failing_seed(spec, ncpus=E18_NCPUS)
    if seed is None:
        raise RuntimeError(f"{spec.bug_id}: no failing production run found")
    full = record(
        spec.make_program(),
        sketch=SketchKind.SYNC,
        seed=seed,
        config=MachineConfig(ncpus=E18_NCPUS),
        oracle=spec.oracle,
    )
    steps = epoch_pitch(full)
    windowed = _record_windowed(spec, seed, steps, window)
    config = ExplorerConfig(max_attempts=max_attempts)
    full_report = reproduce(full, config)
    windowed_report = reproduce_windowed(windowed, config)
    reproduced_from = ""
    for rung in windowed_report.epoch_path:
        if rung.success:
            reproduced_from = (
                "full history" if rung.full_history
                else f"epoch {rung.epoch} (step {rung.step})"
            )
            break
    row = EpochBenchRow(
        bug_id=spec.bug_id,
        seed=seed,
        steps=steps,
        window=window,
        total_epochs=(
            windowed.epochs.total_epochs if windowed.epochs is not None else 1
        ),
        truncated_entries=(
            windowed.epochs.truncated_entries
            if windowed.epochs is not None else 0
        ),
        full_bytes=full.stats.log_bytes,
        windowed_bytes=windowed.stats.log_bytes,
        full_entries=len(full.log),
        windowed_entries=len(windowed.log),
        full_attempts=full_report.attempts,
        full_success=full_report.success,
        windowed_attempts=windowed_report.attempts,
        windowed_success=windowed_report.success,
        reproduced_from=reproduced_from,
    )
    if spec.bug_id in E18_SERVER_BUGS:
        baseline = render_report(windowed_report)
        row.jobs_identical = all(
            render_report(
                reproduce_windowed(windowed, config, jobs=jobs)
            ) == baseline
            for jobs in E18_JOBS_ARMS
        )
        wider = _record_windowed(spec, seed, steps, window + 1)
        row.window_identical = (
            render_report(reproduce_windowed(wider, config)) == baseline
        )
    return row


def build_e18() -> BenchResult:
    rows = []
    records = []
    for spec in all_bugs():
        row = epoch_bench_row(spec)
        rows.append(
            [row.bug_id, row.total_epochs,
             row.full_bytes, row.windowed_bytes,
             f"{row.bytes_saved_percent:.0f}%",
             row.full_attempts if row.full_success
             else f">{row.full_attempts}",
             row.windowed_attempts if row.windowed_success
             else f">{row.windowed_attempts}",
             row.reproduced_from or "-",
             _tri(row.jobs_identical), _tri(row.window_identical)]
        )
        records.append(row.to_record())
    return BenchResult(
        experiment="e18",
        title="E18: epoch-windowed vs full-history recording "
              f"(window {E18_WINDOW}, cap {E18_MAX_ATTEMPTS})",
        headers=["bug", "epochs", "full B", "window B", "saved",
                 "full att", "win att", "reproduced from",
                 "jobs ==", "K/K+1 =="],
        rows=rows,
        records=records,
        meta={
            "window": E18_WINDOW,
            "max_attempts": E18_MAX_ATTEMPTS,
            "jobs_arms": list(E18_JOBS_ARMS),
            "server_bugs": list(E18_SERVER_BUGS),
        },
    )


def _tri(value: Optional[bool]) -> str:
    """Render the tri-state identity cells: yes / NO / not asserted."""
    if value is None:
        return "-"
    return "yes" if value else "NO"
