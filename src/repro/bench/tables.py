"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table (first column left, rest right)."""
    rendered: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        parts = [str(cells[0]).ljust(widths[0])]
        parts.extend(str(c).rjust(w) for c, w in zip(cells[1:], widths[1:]))
        return "  ".join(parts)

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
