"""Happens-before analysis and race detection over a trace.

One forward sweep over the event list computes, per event, the thread's
vector clock and held-lock set, and reports *race pairs*: conflicting
memory accesses by different threads that are not ordered by the
happens-before relation.  Each race pair is a scheduling decision that a
sketch did not record — exactly the candidates PRES's replayer flips
between attempts.

The happens-before edges modelled (all of pthreads-on-our-simulator):

* program order within each thread;
* mutex release -> subsequent acquire (UNLOCK / COND_WAIT's release ->
  LOCK / successful TRYLOCK);
* condition signal/broadcast -> the woken thread's next event;
* semaphore release -> subsequent acquire (accumulated conservatively);
* barrier: every arrival of a generation -> every participant's
  continuation;
* SPAWN -> child's first event, child's last event -> JOIN;
* channel ``send`` -> the ``recv`` that returns the same message.

Race state is FastTrack-flavoured: per address we keep each thread's most
recent read and write, so a race is reported between an access and the
latest conflicting access of every other thread — sufficient for flip
candidates without quadratic blowup.

``use_lock_edges=False`` drops the mutex edges: with no sketch at all, even
lock-acquisition order is up for grabs during replay, so accesses ordered
only by lock handoffs must still be offered as flip candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.vector_clock import VectorClock
from repro.sim.events import Event
from repro.sim.memory import region_of
from repro.sim.ops import Address, OpKind
from repro.sim.trace import Trace

#: (mutex name, acquisition occurrence) — which lock acquisition protects
#: an access; feedback uses it to lift flips up to the LOCK operation.
HeldLock = Tuple[str, int]


@dataclass(frozen=True)
class RacePair:
    """Two conflicting, happens-before-unordered accesses.

    ``first`` executed before ``second`` in this trace's global order, but
    nothing forces that: a replay may execute them the other way around.
    ``held_first``/``held_second`` are the (mutex, acquisition-occurrence)
    pairs each thread held at the time.
    """

    first: Event
    second: Event
    addr: Address
    held_first: Tuple[HeldLock, ...] = ()
    held_second: Tuple[HeldLock, ...] = ()

    def common_mutexes(self) -> List[Tuple[HeldLock, HeldLock]]:
        """Lock acquisitions both sides hold on the same mutex."""
        by_name = {name: (name, k) for name, k in self.held_first}
        pairs = []
        for name, k in self.held_second:
            if name in by_name:
                pairs.append((by_name[name], (name, k)))
        return pairs

    def describe(self) -> str:
        return (
            f"race on {self.addr!r}: "
            f"T{self.first.tid}#{self.first.gidx} {self.first.kind.value} vs "
            f"T{self.second.tid}#{self.second.gidx} {self.second.kind.value}"
        )


_CONFLICT_KINDS = frozenset(
    {OpKind.READ, OpKind.WRITE, OpKind.RMW, OpKind.CAS, OpKind.FREE}
)
_WRITE_KINDS = frozenset({OpKind.WRITE, OpKind.RMW, OpKind.CAS, OpKind.FREE})


@dataclass
class _Access:
    event: Event
    vc: VectorClock
    held: Tuple[HeldLock, ...]


class HBAnalysis:
    """Sweep result: per-event vector clocks plus the race report."""

    def __init__(
        self,
        trace: Trace,
        use_lock_edges: bool = True,
        max_races: int = 10_000,
    ) -> None:
        self.trace = trace
        self.use_lock_edges = use_lock_edges
        self.max_races = max_races
        self.event_vcs: List[VectorClock] = []
        self.races: List[RacePair] = []
        self._sweep()

    # -- public helpers ---------------------------------------------------

    def vc_of(self, gidx: int) -> VectorClock:
        return self.event_vcs[gidx]

    def ordered(self, first_gidx: int, second_gidx: int) -> bool:
        """Whether event ``first_gidx`` happens-before event ``second_gidx``."""
        return self.event_vcs[first_gidx].leq(self.event_vcs[second_gidx])

    def races_involving(self, addr: Address) -> List[RacePair]:
        return [r for r in self.races if r.addr == addr]

    # -- the sweep ----------------------------------------------------------

    def _sweep(self) -> None:
        thread_vc: Dict[int, VectorClock] = {}
        mutex_vc: Dict[str, VectorClock] = {}
        rwlock_vc: Dict[str, VectorClock] = {}
        sem_vc: Dict[str, VectorClock] = {}
        channel_sends: Dict[str, List[VectorClock]] = {}
        channel_recvs: Dict[str, int] = {}
        pending_join: Dict[int, VectorClock] = {}  # joined at tid's next event
        barrier_arrived: Dict[str, List[int]] = {}
        barrier_vc: Dict[str, VectorClock] = {}

        lock_counts: Dict[Tuple[int, str], int] = {}
        held: Dict[int, Dict[str, int]] = {}

        # Per-address access history: addr -> tid -> last read / last write.
        reads: Dict[Address, Dict[int, _Access]] = {}
        writes: Dict[Address, Dict[int, _Access]] = {}
        region_addrs: Dict[Address, Set[Address]] = {}

        zero = VectorClock.zero()

        for event in self.trace.events:
            tid = event.tid
            vc = thread_vc.get(tid, zero)

            # Incoming edges --------------------------------------------------
            if tid in pending_join:
                vc = vc.join(pending_join.pop(tid))
            kind = event.kind
            if kind is OpKind.LOCK and self.use_lock_edges:
                vc = vc.join(mutex_vc.get(event.obj, zero))
            elif kind is OpKind.TRYLOCK and event.value and self.use_lock_edges:
                vc = vc.join(mutex_vc.get(event.obj, zero))
            elif kind in (OpKind.RDLOCK, OpKind.WRLOCK) and self.use_lock_edges:
                # conservative: any release -> any acquire (masks only
                # reader-reader pairs, which cannot race through reads)
                vc = vc.join(rwlock_vc.get(event.obj, zero))
            elif kind is OpKind.SEM_ACQUIRE:
                vc = vc.join(sem_vc.get(event.obj, zero))
            elif kind is OpKind.JOIN:
                vc = vc.join(thread_vc.get(event.obj, zero))
            elif kind is OpKind.SYSCALL and event.name in ("recv", "try_recv"):
                # The k-th recv on a channel returns the k-th send's message.
                chan = self._channel_of(event)
                if chan is not None and event.value is not None:
                    k = channel_recvs.get(chan, 0)
                    sends = channel_sends.get(chan, [])
                    if k < len(sends):
                        vc = vc.join(sends[k])
                    channel_recvs[chan] = k + 1

            vc = vc.tick(tid)
            thread_vc[tid] = vc
            self.event_vcs.append(vc)

            # Lockset maintenance ------------------------------------------------
            tid_held = held.setdefault(tid, {})
            if kind is OpKind.LOCK or (kind is OpKind.TRYLOCK and event.value):
                key = (tid, event.obj)
                lock_counts[key] = lock_counts.get(key, 0) + 1
                tid_held[event.obj] = lock_counts[key]
            elif kind in (OpKind.RDLOCK, OpKind.WRLOCK):
                key = (tid, event.obj)
                lock_counts[key] = lock_counts.get(key, 0) + 1
                tid_held[event.obj] = lock_counts[key]
            elif kind in (OpKind.UNLOCK, OpKind.RWUNLOCK):
                tid_held.pop(event.obj, None)
            elif kind is OpKind.COND_WAIT:
                _, lock_name = event.obj
                tid_held.pop(lock_name, None)

            # Outgoing edges ------------------------------------------------------
            if kind is OpKind.UNLOCK:
                mutex_vc[event.obj] = vc
            elif kind is OpKind.RWUNLOCK:
                rwlock_vc[event.obj] = rwlock_vc.get(event.obj, zero).join(vc)
            elif kind is OpKind.COND_WAIT:
                _, lock_name = event.obj
                mutex_vc[lock_name] = vc
            elif kind is OpKind.SEM_RELEASE:
                sem_vc[event.obj] = sem_vc.get(event.obj, zero).join(vc)
            elif kind is OpKind.SPAWN:
                pending_join[event.value] = vc
            elif kind is OpKind.COND_SIGNAL and event.value is not None:
                woken = event.value
                pending_join[woken] = pending_join.get(woken, zero).join(vc)
            elif kind is OpKind.COND_BROADCAST and event.value:
                for woken in event.value:
                    pending_join[woken] = pending_join.get(woken, zero).join(vc)
            elif kind is OpKind.BARRIER_WAIT:
                name = event.obj
                barrier_arrived.setdefault(name, []).append(tid)
                barrier_vc[name] = barrier_vc.get(name, zero).join(vc)
                if event.value is not None:  # this arrival tripped the barrier
                    merged = barrier_vc[name]
                    for participant in barrier_arrived[name]:
                        pending_join[participant] = (
                            pending_join.get(participant, zero).join(merged)
                        )
                    barrier_arrived[name] = []
                    barrier_vc[name] = zero
            elif kind is OpKind.SYSCALL and event.name == "send":
                chan = self._channel_of(event)
                if chan is not None:
                    channel_sends.setdefault(chan, []).append(vc)

            # Race detection ------------------------------------------------------
            if kind in _CONFLICT_KINDS and len(self.races) < self.max_races:
                self._check_access(
                    event, vc, tid_held, reads, writes, region_addrs
                )

    @staticmethod
    def _channel_of(event: Event) -> Optional[str]:
        """Channel name of a send/recv/try_recv event (first syscall arg)."""
        if event.args:
            return event.args[0]
        return None

    def _check_access(
        self,
        event: Event,
        vc: VectorClock,
        tid_held: Dict[str, int],
        reads: Dict[Address, Dict[int, _Access]],
        writes: Dict[Address, Dict[int, _Access]],
        region_addrs: Dict[Address, Set[Address]],
    ) -> None:
        addr = event.addr
        held_now = tuple(sorted(tid_held.items()))
        access = _Access(event, vc, held_now)
        is_write = event.kind in _WRITE_KINDS

        # Addresses this access conflicts with: itself, plus the whole
        # region when freeing a region name, plus the region name when
        # accessing a cell (a FREE may sit there).
        targets = {addr}
        region = region_of(addr)
        if region != addr:
            targets.add(region)
        if event.kind is OpKind.FREE:
            targets.update(region_addrs.get(addr, ()))

        # Deterministic iteration: set order depends on PYTHONHASHSEED,
        # and race *ordering* feeds candidate ranking, which must be
        # reproducible across processes.
        for target in sorted(targets, key=repr):
            histories = [writes.get(target, {})]
            if is_write:
                histories.append(reads.get(target, {}))
            for history in histories:
                for other_tid, prev in history.items():
                    if other_tid == event.tid:
                        continue
                    if target != addr and not (
                        prev.event.kind is OpKind.FREE
                        or event.kind is OpKind.FREE
                    ):
                        # Cross-address conflicts only involve region frees.
                        continue
                    if not prev.vc.leq(vc):
                        self.races.append(
                            RacePair(
                                first=prev.event,
                                second=event,
                                addr=addr,
                                held_first=prev.held,
                                held_second=held_now,
                            )
                        )
                        if len(self.races) >= self.max_races:
                            return

        table = writes if is_write else reads
        table.setdefault(addr, {})[event.tid] = access
        if region != addr:
            region_addrs.setdefault(region, set()).add(addr)


def find_races(
    trace: Trace, use_lock_edges: bool = True, max_races: int = 10_000
) -> List[RacePair]:
    """Convenience wrapper: the race pairs of one trace."""
    return HBAnalysis(
        trace, use_lock_edges=use_lock_edges, max_races=max_races
    ).races
