"""Offline analyses over execution traces.

These are the substrate for PRES's *feedback generation*: after an
unsuccessful replay attempt, the replayer mines the attempt's trace for
unordered conflicting accesses (happens-before races) — each one is a
scheduling decision the sketch did not pin down and therefore a candidate
to flip on the next attempt.

Also here: vector clocks, a lockset detector (used to lift flip points for
lock-protected accesses up to the lock acquisitions), Goodlock lock-order
analysis (with gate-lock suppression), wait-for-graph deadlock analysis
and trace diffing.

The *predictive* entry points of :mod:`repro.sanitize` (which run the
same families of analyses over recorded sketch logs instead of traces)
are re-exported lazily — ``from repro.analysis import build_plan`` works,
without this package importing the sanitizer at import time.  The
*static* analyzer (:mod:`repro.analysis.static_`), which needs no log
at all, is re-exported the same way: ``analyze_program`` and
``StaticPlan`` resolve on first use.
"""

from repro.analysis.hb_race import HBAnalysis, RacePair, find_races
from repro.analysis.lockset import (
    AddressProtection,
    LocksetReport,
    lockset_candidates,
    lockset_report,
)
from repro.analysis.lockorder import (
    LockOrderEdge,
    LockOrderReport,
    PotentialDeadlock,
    collect_lock_order,
    find_potential_deadlocks,
    lock_order_report,
    predicts_deadlock,
)
from repro.analysis.timeline import failure_window, render_timeline
from repro.analysis.tracediff import Divergence, first_divergence, same_execution
from repro.analysis.vector_clock import VectorClock
from repro.analysis.waitfor import WaitForGraph

#: sanitize entry points re-exported lazily (PEP 562): importing them
#: eagerly would create a cycle, because repro.sanitize modules import
#: from this package during their own initialization.
_SANITIZE_EXPORTS = (
    "AtomicityViolation",
    "PlannedCandidate",
    "PredictedDeadlock",
    "PredictedRace",
    "ReplayPlan",
    "SketchHB",
    "build_plan",
    "predict_atomicity",
    "predict_deadlocks",
    "predict_races",
)

#: static-analyzer entry points, lazily resolved for symmetry (and so
#: `import repro.analysis` stays cheap for trace-only consumers).
_STATIC_EXPORTS = (
    "StaticCandidate",
    "StaticPlan",
    "analyze_program",
    "extract_program",
)

__all__ = [
    "AddressProtection",
    "AtomicityViolation",
    "Divergence",
    "HBAnalysis",
    "LockOrderEdge",
    "LockOrderReport",
    "LocksetReport",
    "PlannedCandidate",
    "PotentialDeadlock",
    "PredictedDeadlock",
    "PredictedRace",
    "RacePair",
    "ReplayPlan",
    "SketchHB",
    "StaticCandidate",
    "StaticPlan",
    "VectorClock",
    "WaitForGraph",
    "analyze_program",
    "build_plan",
    "collect_lock_order",
    "extract_program",
    "failure_window",
    "find_potential_deadlocks",
    "find_races",
    "first_divergence",
    "lock_order_report",
    "lockset_candidates",
    "lockset_report",
    "predict_atomicity",
    "predict_deadlocks",
    "predict_races",
    "predicts_deadlock",
    "render_timeline",
    "same_execution",
]


def __getattr__(name: str):
    """Resolve the lazy re-exports on first use."""
    if name in _SANITIZE_EXPORTS:
        import repro.sanitize as _sanitize

        return getattr(_sanitize, name)
    if name in _STATIC_EXPORTS:
        import repro.analysis.static_ as _static

        return getattr(_static, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
