"""Offline analyses over execution traces.

These are the substrate for PRES's *feedback generation*: after an
unsuccessful replay attempt, the replayer mines the attempt's trace for
unordered conflicting accesses (happens-before races) — each one is a
scheduling decision the sketch did not pin down and therefore a candidate
to flip on the next attempt.

Also here: vector clocks, a lockset detector (used to lift flip points for
lock-protected accesses up to the lock acquisitions), wait-for-graph
deadlock analysis and trace diffing.
"""

from repro.analysis.hb_race import HBAnalysis, RacePair, find_races
from repro.analysis.lockset import (
    AddressProtection,
    LocksetReport,
    lockset_candidates,
    lockset_report,
)
from repro.analysis.lockorder import (
    LockOrderReport,
    PotentialDeadlock,
    lock_order_report,
    predicts_deadlock,
)
from repro.analysis.timeline import failure_window, render_timeline
from repro.analysis.tracediff import Divergence, first_divergence, same_execution
from repro.analysis.vector_clock import VectorClock
from repro.analysis.waitfor import WaitForGraph

__all__ = [
    "AddressProtection",
    "Divergence",
    "HBAnalysis",
    "LockOrderReport",
    "LocksetReport",
    "PotentialDeadlock",
    "RacePair",
    "VectorClock",
    "WaitForGraph",
    "failure_window",
    "find_races",
    "first_divergence",
    "lock_order_report",
    "lockset_candidates",
    "lockset_report",
    "predicts_deadlock",
    "render_timeline",
    "same_execution",
]
