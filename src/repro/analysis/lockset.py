"""Eraser-style lockset analysis.

For every shared address, intersect the set of mutexes held across all
accesses; an address whose candidate set goes empty while being accessed by
more than one thread (with at least one write) is *inconsistently
protected*.  PRES uses this two ways:

* as a report surfaced to the diagnosing developer alongside a reproduced
  bug (which variable was under-protected);
* through :func:`lockset_candidates`, to decide where a race flip must be
  applied: if both sides of a race hold a common mutex, the order can only
  be changed by reordering the *lock acquisitions*, not the accesses
  themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.hb_race import RacePair
from repro.sim.ops import Address, OpKind
from repro.sim.trace import Trace


@dataclass
class AddressProtection:
    """Lockset summary for one address."""

    addr: Address
    candidate_set: FrozenSet[str]
    accessing_tids: FrozenSet[int]
    written: bool
    accesses: int

    @property
    def inconsistent(self) -> bool:
        """Shared, written, and no mutex protects every access."""
        return (
            not self.candidate_set
            and len(self.accessing_tids) > 1
            and self.written
        )


@dataclass
class LocksetReport:
    """Protection summaries for every address touched by a trace."""

    by_address: Dict[Address, AddressProtection] = field(default_factory=dict)

    def inconsistent_addresses(self) -> List[Address]:
        return [
            addr
            for addr, prot in self.by_address.items()
            if prot.inconsistent
        ]


_ACCESS_KINDS = frozenset(
    {OpKind.READ, OpKind.WRITE, OpKind.RMW, OpKind.CAS, OpKind.FREE}
)
_WRITE_KINDS = frozenset({OpKind.WRITE, OpKind.RMW, OpKind.CAS, OpKind.FREE})


def lockset_report(trace: Trace) -> LocksetReport:
    """Run the lockset sweep over one trace."""
    held: Dict[int, Set[str]] = {}
    candidates: Dict[Address, Set[str]] = {}
    tids: Dict[Address, Set[int]] = {}
    written: Dict[Address, bool] = {}
    counts: Dict[Address, int] = {}

    for event in trace.events:
        tid_held = held.setdefault(event.tid, set())
        kind = event.kind
        if kind is OpKind.LOCK or (kind is OpKind.TRYLOCK and event.value):
            tid_held.add(event.obj)
        elif kind is OpKind.WRLOCK:
            # write mode protects like a mutex and also pairs with readers
            tid_held.add(event.obj)
            tid_held.add(f"{event.obj}:r")
        elif kind is OpKind.RDLOCK:
            tid_held.add(f"{event.obj}:r")
        elif kind is OpKind.UNLOCK:
            tid_held.discard(event.obj)
        elif kind is OpKind.RWUNLOCK:
            tid_held.discard(event.obj)
            tid_held.discard(f"{event.obj}:r")
        elif kind is OpKind.COND_WAIT:
            tid_held.discard(event.obj[1])
        elif kind in _ACCESS_KINDS:
            addr = event.addr
            if addr in candidates:
                candidates[addr] &= tid_held
            else:
                candidates[addr] = set(tid_held)
            tids.setdefault(addr, set()).add(event.tid)
            written[addr] = written.get(addr, False) or kind in _WRITE_KINDS
            counts[addr] = counts.get(addr, 0) + 1

    report = LocksetReport()
    for addr, cand in candidates.items():
        report.by_address[addr] = AddressProtection(
            addr=addr,
            candidate_set=frozenset(cand),
            accessing_tids=frozenset(tids[addr]),
            written=written[addr],
            accesses=counts[addr],
        )
    return report


def lockset_candidates(race: RacePair) -> List[Tuple[Tuple[str, int], Tuple[str, int]]]:
    """Common (mutex, acquisition) pairs protecting both sides of a race.

    Empty means the accesses are directly reorderable; non-empty means a
    flip must target the listed lock acquisitions instead.
    """
    return race.common_mutexes()
