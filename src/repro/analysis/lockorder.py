"""Lock-order analysis: predicting deadlocks from non-deadlocking runs.

Goodlock-style (Havelund): sweep a trace building the *lock-order graph* —
an edge ``a -> b`` whenever some thread acquires ``b`` while holding ``a``.
A cycle in that graph acquired by at least two distinct threads is a
*potential deadlock*: some schedule can interleave the acquisitions into a
real one, even if this run finished cleanly.

Two refinements keep the report honest:

* **Self-edges are suppressed**: a thread re-acquiring a lock it already
  holds (recursive acquisition) is nested locking, not an ordering hazard.
* **Gate locks are suppressed**: if every acquisition driving a cycle
  happened while some common *other* lock was held (a "gate"), no schedule
  can interleave the acquisitions — the gate serializes them — so the
  cycle is not reported (Goodlock's guarded-cycle rule).

This is the predictive complement to PRES's reproduction flow: run the
analysis on any healthy production trace and it names the lock pairs the
replayer should expect trouble from — for our suite, a clean run of the
miniOpenLDAP server already predicts its conn/writer inversion.  The
sweep itself is source-agnostic (:func:`collect_lock_order` accepts any
iterable of event-like records), so :mod:`repro.sanitize.deadlock` can
run it over *sketch entries* without replaying anything.

Both mutexes and reader-writer locks participate (write-mode acquisitions
block like mutex acquisitions; read-mode acquisitions can still be blocked
by writers, so they count too, conservatively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.sim.ops import OpKind
from repro.sim.trace import Trace

_ACQUIRE = {OpKind.LOCK, OpKind.RDLOCK, OpKind.WRLOCK}
_RELEASE = {OpKind.UNLOCK, OpKind.RWUNLOCK}


@dataclass(frozen=True)
class LockOrderEdge:
    """Observed: ``holder`` was held while ``acquired`` was acquired.

    Occurrence numbers count the owning thread's acquisitions of each
    lock (1-based), so an edge can be turned into schedule-independent
    :class:`~repro.core.constraints.EventRef` coordinates; ``guards``
    are the *other* locks the thread held at the inner acquisition —
    the raw material for gate-lock suppression.
    """

    holder: str
    acquired: str
    tid: int
    gidx: int  # where the inner acquisition happened
    holder_occurrence: int = 1
    acquired_occurrence: int = 1
    guards: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PotentialDeadlock:
    """A cycle in the lock-order graph, with the threads that drive it."""

    cycle: Tuple[str, ...]  # lock names, in cycle order
    tids: Tuple[int, ...]  # distinct threads involved in the cycle's edges

    def describe(self) -> str:
        """Render the cycle and its driving threads on one line."""
        hops = " -> ".join(self.cycle + (self.cycle[0],))
        who = ", ".join(f"T{tid}" for tid in self.tids)
        return f"potential deadlock: {hops} (acquired by {who})"


@dataclass
class LockOrderReport:
    """The lock-order graph of one trace, plus its cycles."""

    edges: List[LockOrderEdge] = field(default_factory=list)
    potential_deadlocks: List[PotentialDeadlock] = field(default_factory=list)
    #: cycles found but suppressed because a common gate lock serializes
    #: every acquisition driving them.
    gated_cycles: int = 0

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        """The distinct (holder, acquired) pairs in the graph."""
        return {(e.holder, e.acquired) for e in self.edges}

    def describe(self) -> str:
        """Multi-line summary: edge count plus each predicted cycle."""
        if not self.potential_deadlocks:
            return (
                f"lock-order graph: {len(self.edge_pairs())} edges, no cycles"
            )
        lines = [
            f"lock-order graph: {len(self.edge_pairs())} edges, "
            f"{len(self.potential_deadlocks)} potential deadlock(s):"
        ]
        lines.extend(f"  {p.describe()}" for p in self.potential_deadlocks)
        return "\n".join(lines)


def collect_lock_order(events: Iterable) -> List[LockOrderEdge]:
    """Sweep event-like records into the lock-order edge list.

    ``events`` may be trace events or any adapter exposing ``tid``,
    ``kind``, ``obj``, ``value`` and ``gidx`` — the sketch-based deadlock
    predictor feeds sketch entries through this same sweep.  Edges are
    deduplicated on (holder, acquired, tid, guards): the first occurrence
    of each acquisition context wins, keeping its occurrence numbers.
    """
    held: Dict[int, List[Tuple[str, int]]] = {}
    counts: Dict[Tuple[int, str], int] = {}
    edges: List[LockOrderEdge] = []
    seen: Set[Tuple[str, str, int, Tuple[str, ...]]] = set()
    for event in events:
        tid_held = held.setdefault(event.tid, [])
        kind = event.kind
        if kind in _ACQUIRE or (kind is OpKind.TRYLOCK and event.value):
            count_key = (event.tid, event.obj)
            counts[count_key] = counts.get(count_key, 0) + 1
            occurrence = counts[count_key]
            for holder, holder_occurrence in tid_held:
                if holder == event.obj:
                    continue  # recursive re-acquisition: not an ordering edge
                guards = tuple(
                    name for name, _ in tid_held
                    if name != holder and name != event.obj
                )
                key = (holder, event.obj, event.tid, guards)
                if key not in seen:
                    seen.add(key)
                    edges.append(
                        LockOrderEdge(
                            holder=holder,
                            acquired=event.obj,
                            tid=event.tid,
                            gidx=event.gidx,
                            holder_occurrence=holder_occurrence,
                            acquired_occurrence=occurrence,
                            guards=guards,
                        )
                    )
            tid_held.append((event.obj, occurrence))
        elif kind in _RELEASE:
            for position, (name, _) in enumerate(tid_held):
                if name == event.obj:
                    del tid_held[position]
                    break
        elif kind is OpKind.COND_WAIT:
            _, lock_name = event.obj
            for position, (name, _) in enumerate(tid_held):
                if name == lock_name:
                    del tid_held[position]
                    break
    return edges


def find_potential_deadlocks(
    edges: List[LockOrderEdge],
) -> Tuple[List[PotentialDeadlock], int]:
    """Cycles of the lock-order graph, minus single-thread and gated ones.

    Returns ``(reported_cycles, gated_cycle_count)``.  A cycle is *gated*
    when some lock outside the cycle appears in the guard set of every
    edge instance driving it: that common gate serializes the
    acquisitions, so no schedule can interleave them into a deadlock.
    """
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.holder, set()).add(edge.acquired)

    cycles: List[PotentialDeadlock] = []
    gated = 0
    reported: Set[frozenset] = set()

    def dfs(start: str, node: str, path: List[str]) -> None:
        nonlocal gated
        for nxt in sorted(graph.get(node, ())):
            if nxt == start and len(path) >= 2:
                key = frozenset(path)
                if key in reported:
                    continue
                # Gather the threads driving the cycle's edges; a cycle
                # driven by a single thread is just nested locking.
                members = set(path)
                related = [
                    e
                    for e in edges
                    if e.holder in members and e.acquired in members
                ]
                tids = sorted({e.tid for e in related})
                if len(tids) < 2:
                    continue
                reported.add(key)
                hops = {
                    (path[i], path[(i + 1) % len(path)])
                    for i in range(len(path))
                }
                hop_edges = [
                    e for e in related if (e.holder, e.acquired) in hops
                ]
                common_guards = set(hop_edges[0].guards) if hop_edges else set()
                for e in hop_edges[1:]:
                    common_guards &= set(e.guards)
                if common_guards - members:
                    gated += 1
                    continue
                cycles.append(
                    PotentialDeadlock(cycle=tuple(path), tids=tuple(tids))
                )
            elif nxt not in path and nxt > start:
                # canonical form: only walk nodes 'greater' than the start
                dfs(start, nxt, path + [nxt])

    for start in sorted(graph):
        dfs(start, start, [start])
    return cycles, gated


def lock_order_report(trace: Trace) -> LockOrderReport:
    """Build the lock-order graph and report potential deadlocks."""
    edges = collect_lock_order(trace.events)
    deadlocks, gated = find_potential_deadlocks(edges)
    return LockOrderReport(
        edges=edges, potential_deadlocks=deadlocks, gated_cycles=gated
    )


def predicts_deadlock(trace: Trace, *locks: str) -> bool:
    """Whether the trace's lock-order graph contains a cycle over ``locks``."""
    wanted = set(locks)
    return any(
        wanted <= set(p.cycle)
        for p in lock_order_report(trace).potential_deadlocks
    )
