"""Lock-order analysis: predicting deadlocks from non-deadlocking runs.

Goodlock-style (Havelund): sweep a trace building the *lock-order graph* —
an edge ``a -> b`` whenever some thread acquires ``b`` while holding ``a``.
A cycle in that graph acquired by at least two distinct threads is a
*potential deadlock*: some schedule can interleave the acquisitions into a
real one, even if this run finished cleanly.

This is the predictive complement to PRES's reproduction flow: run the
analysis on any healthy production trace and it names the lock pairs the
replayer should expect trouble from — for our suite, a clean run of the
miniOpenLDAP server already predicts its conn/writer inversion.

Both mutexes and reader-writer locks participate (write-mode acquisitions
block like mutex acquisitions; read-mode acquisitions can still be blocked
by writers, so they count too, conservatively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.sim.events import Event
from repro.sim.ops import OpKind
from repro.sim.trace import Trace

_ACQUIRE = {OpKind.LOCK, OpKind.RDLOCK, OpKind.WRLOCK}
_RELEASE = {OpKind.UNLOCK, OpKind.RWUNLOCK}


@dataclass(frozen=True)
class LockOrderEdge:
    """Observed: ``holder`` was held while ``acquired`` was acquired."""

    holder: str
    acquired: str
    tid: int
    gidx: int  # where the inner acquisition happened


@dataclass(frozen=True)
class PotentialDeadlock:
    """A cycle in the lock-order graph, with the threads that drive it."""

    cycle: Tuple[str, ...]  # lock names, in cycle order
    tids: Tuple[int, ...]  # distinct threads involved in the cycle's edges

    def describe(self) -> str:
        hops = " -> ".join(self.cycle + (self.cycle[0],))
        who = ", ".join(f"T{tid}" for tid in self.tids)
        return f"potential deadlock: {hops} (acquired by {who})"


@dataclass
class LockOrderReport:
    """The lock-order graph of one trace, plus its cycles."""

    edges: List[LockOrderEdge] = field(default_factory=list)
    potential_deadlocks: List[PotentialDeadlock] = field(default_factory=list)

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        return {(e.holder, e.acquired) for e in self.edges}

    def describe(self) -> str:
        if not self.potential_deadlocks:
            return (
                f"lock-order graph: {len(self.edge_pairs())} edges, no cycles"
            )
        lines = [
            f"lock-order graph: {len(self.edge_pairs())} edges, "
            f"{len(self.potential_deadlocks)} potential deadlock(s):"
        ]
        lines.extend(f"  {p.describe()}" for p in self.potential_deadlocks)
        return "\n".join(lines)


def _collect_edges(trace: Trace) -> List[LockOrderEdge]:
    held: Dict[int, List[str]] = {}
    edges: List[LockOrderEdge] = []
    seen: Set[Tuple[str, str, int]] = set()
    for event in trace.events:
        tid_held = held.setdefault(event.tid, [])
        kind = event.kind
        if kind in _ACQUIRE or (kind is OpKind.TRYLOCK and event.value):
            for holder in tid_held:
                if holder != event.obj:
                    key = (holder, event.obj, event.tid)
                    if key not in seen:
                        seen.add(key)
                        edges.append(
                            LockOrderEdge(
                                holder=holder,
                                acquired=event.obj,
                                tid=event.tid,
                                gidx=event.gidx,
                            )
                        )
            tid_held.append(event.obj)
        elif kind in _RELEASE:
            if event.obj in tid_held:
                tid_held.remove(event.obj)
        elif kind is OpKind.COND_WAIT:
            _, lock_name = event.obj
            if lock_name in tid_held:
                tid_held.remove(lock_name)
    return edges


def _find_cycles(edges: List[LockOrderEdge]) -> List[PotentialDeadlock]:
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.holder, set()).add(edge.acquired)

    cycles: List[PotentialDeadlock] = []
    reported: Set[frozenset] = set()

    def dfs(start: str, node: str, path: List[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt == start and len(path) >= 2:
                key = frozenset(path)
                if key in reported:
                    continue
                # Gather the threads driving the cycle's edges; a cycle
                # driven by a single thread is just nested locking.
                tids = sorted(
                    {
                        e.tid
                        for e in edges
                        if e.holder in path and e.acquired in path
                    }
                )
                if len(tids) >= 2:
                    reported.add(key)
                    cycles.append(
                        PotentialDeadlock(cycle=tuple(path), tids=tuple(tids))
                    )
            elif nxt not in path and nxt > start:
                # canonical form: only walk nodes 'greater' than the start
                dfs(start, nxt, path + [nxt])

    for start in sorted(graph):
        dfs(start, start, [start])
    return cycles


def lock_order_report(trace: Trace) -> LockOrderReport:
    """Build the lock-order graph and report potential deadlocks."""
    edges = _collect_edges(trace)
    return LockOrderReport(
        edges=edges, potential_deadlocks=_find_cycles(edges)
    )


def predicts_deadlock(trace: Trace, *locks: str) -> bool:
    """Whether the trace's lock-order graph contains a cycle over ``locks``."""
    wanted = set(locks)
    return any(
        wanted <= set(p.cycle)
        for p in lock_order_report(trace).potential_deadlocks
    )
