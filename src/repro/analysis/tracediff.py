"""Trace comparison utilities.

Used by tests (replay fidelity assertions) and by the replayer's
diagnostics: when an attempt diverges, knowing *where* two executions first
differ is the difference between a useful report and a wall of events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.trace import Trace


@dataclass(frozen=True)
class Divergence:
    """First point at which two traces disagree."""

    index: int
    left: Optional[str]
    right: Optional[str]

    def describe(self) -> str:
        return (
            f"traces diverge at event {self.index}: "
            f"{self.left or '<end>'} vs {self.right or '<end>'}"
        )


def first_divergence(left: Trace, right: Trace) -> Optional[Divergence]:
    """First index where the event signatures differ; None if identical.

    Signatures (not values) are compared, matching the replayer's notion of
    "the same program action".  A length difference with a common prefix
    diverges at the shorter length.
    """
    for i, (a, b) in enumerate(zip(left.events, right.events)):
        if a.signature() != b.signature():
            return Divergence(i, a.describe(), b.describe())
    if len(left.events) != len(right.events):
        shorter = min(len(left.events), len(right.events))
        longer_trace = left if len(left.events) > shorter else right
        extra = longer_trace.events[shorter].describe()
        if len(left.events) > shorter:
            return Divergence(shorter, extra, None)
        return Divergence(shorter, None, extra)
    return None


def same_execution(left: Trace, right: Trace, check_values: bool = True) -> bool:
    """Whether two traces are the same execution.

    With ``check_values`` the observed values (loads, syscall results) must
    match too — the strong form used to validate deterministic replay.
    """
    if first_divergence(left, right) is not None:
        return False
    if check_values:
        for a, b in zip(left.events, right.events):
            if a.value != b.value:
                return False
        if left.final_memory != right.final_memory:
            return False
        if left.stdout != right.stdout:
            return False
    return True
