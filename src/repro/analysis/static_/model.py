"""Data model for the static concurrency analyzer.

The static pass (:mod:`repro.analysis.static_.analyzer`) walks guest
program *structure* — thread bodies as Python generators, never executed
— and reports what it can prove or suspect about shared-state access:
who touches which region, under which locks, which accesses may happen
in parallel, and which interleavings look like race / atomicity /
deadlock triggers.  Everything lands in a :class:`StaticPlan`, the
sketchless sibling of the dynamic ``ReplayPlan``.

Static refs live in the ``region`` constraint family: the analyzer sees
``("row", i)`` with a loop-dependent ``i``, so it names accesses by the
region head ``"row"`` and a per-thread occurrence index that the runtime
resolves through :func:`repro.core.constraints.region_key`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.constraints import (
    ConstraintSet,
    EventRef,
    OrderConstraint,
    canonical_order,
    constraint_sort_key,
    _key_token,
)
from repro.core.sketches import SketchKind
from repro.core.sketchlog import _from_jsonable, _jsonable
from repro.sim.ops import Address, OpKind

#: Lock modes recorded in static locksets: "x" exclusive, "s" shared.
LOCK_EXCLUSIVE = "x"
LOCK_SHARED = "s"


@dataclass(frozen=True)
class StaticAccess:
    """One shared-state access site, as seen along one abstract path.

    ``occurrence`` is the 1-based per-(tid, region) index of this access
    when the walk could count it exactly, and 0 when control flow made
    the count unreliable (divergent branch counts, unbounded loops).
    Only reliable accesses can anchor EventRefs.
    """

    tid: int
    kind: OpKind
    region: Address
    occurrence: int  # 0 = unreliable (cannot be named by a ref)
    lockset: Tuple[Tuple[str, str], ...] = ()  # ((name, mode), ...)
    func: str = ""
    line: int = 0
    phase: int = 0  # barrier-crossing count before this access
    addr: Optional[Address] = None  # full concrete address when known

    @property
    def reliable(self) -> bool:
        return self.occurrence > 0

    def ref(self) -> EventRef:
        """The region-family ref naming this access (reliable only)."""
        if not self.reliable:
            raise ValueError(f"unreliable access has no ref: {self}")
        return EventRef(self.tid, "region", self.region, self.occurrence)

    def describe(self) -> str:
        tag = f"#{self.occurrence}" if self.reliable else "#?"
        held = ",".join(name for name, _ in self.lockset) or "-"
        return (
            f"T{self.tid}:{self.kind.name}[{self.region!r}]{tag}"
            f"@{self.func}:{self.line} locks={{{held}}}"
        )


@dataclass(frozen=True)
class ThreadRole:
    """A statically known thread: who spawns it, when, and its body."""

    tid: int
    name: str  # body function name
    args: Tuple[Any, ...] = ()
    spawn_pos: int = 0  # spawner's effect position of the SPAWN
    join_pos: int = -1  # spawner's effect position of the JOIN (-1: never)

    def describe(self) -> str:
        joined = f"join@{self.join_pos}" if self.join_pos >= 0 else "no join"
        return f"T{self.tid}={self.name}{self.args!r} spawn@{self.spawn_pos} {joined}"


@dataclass(frozen=True)
class LockEdge:
    """Acquired ``acquired`` while holding ``holder`` (static lock graph)."""

    tid: int
    holder: str
    acquired: str
    holder_occ: int = 0
    acquired_occ: int = 0
    phase: int = 0
    func: str = ""
    line: int = 0

    def describe(self) -> str:
        return f"T{self.tid}: {self.holder} -> {self.acquired} @{self.func}:{self.line}"


@dataclass(frozen=True)
class StaticRace:
    """Two MHP accesses to one region, at least one write, no common lock."""

    region: Address
    first: StaticAccess
    second: StaticAccess
    score: float
    kind: str = "race"  # "race" | "use-after-free" | "use-before-init"

    def describe(self) -> str:
        return (
            f"static {self.kind} on {self.region!r}: "
            f"{self.first.describe()} vs {self.second.describe()} "
            f"(score {self.score:.2f})"
        )


@dataclass(frozen=True)
class StaticAtomicity:
    """A read...use window in one thread with an interfering writer."""

    window_first: StaticAccess
    window_second: StaticAccess
    writer_first: StaticAccess
    writer_second: StaticAccess
    score: float
    pattern: str = "single-variable"  # or "multi-variable"

    def describe(self) -> str:
        return (
            f"static atomicity ({self.pattern}): window "
            f"{self.window_first.describe()} .. {self.window_second.describe()} "
            f"vs writer T{self.writer_first.tid} (score {self.score:.2f})"
        )


@dataclass(frozen=True)
class StaticDeadlock:
    """A cross-thread lock-order cycle with a trigger constraint set."""

    cycle: Tuple[str, ...]  # lock names around the cycle
    tids: Tuple[int, ...]
    trigger: ConstraintSet
    score: float

    def describe(self) -> str:
        ring = " -> ".join(self.cycle + (self.cycle[0],)) if self.cycle else "?"
        return (
            f"static deadlock cycle [{ring}] threads "
            f"{list(self.tids)} (score {self.score:.2f})"
        )


@dataclass(frozen=True)
class StaticCandidate:
    """A ranked constraint set the explorer can try without any sketch."""

    constraints: ConstraintSet
    source: str  # "race" | "atomicity" | "deadlock" | "use-after-free" | ...
    score: float
    regions: Tuple[Address, ...] = ()
    note: str = ""

    @property
    def family(self) -> str:
        """"lock" if any ref pins a lock acquisition, else "region"."""
        for constraint in self.constraints:
            for ref in (constraint.before, constraint.after):
                if ref.family == "lock":
                    return "lock"
        return "region"

    def describe(self) -> str:
        pins = "; ".join(
            c.describe() for c in canonical_order(self.constraints)
        )
        return f"[{self.source} {self.score:.2f}] {pins}"


@dataclass(frozen=True)
class StaticPlan:
    """The static analyzer's output: candidates plus the raw evidence.

    Subordinate to the dynamic plan by construction: the explorer seeds
    static candidates at ``TIER_STATIC``, *after* every ``TIER_PLAN``
    candidate, and drops any that duplicate a dynamic seed.
    """

    program: str
    params: Tuple[Tuple[str, Any], ...] = ()
    threads: Tuple[ThreadRole, ...] = ()
    regions: Tuple[Address, ...] = ()
    lock_edges: Tuple[LockEdge, ...] = ()
    races: Tuple[StaticRace, ...] = ()
    violations: Tuple[StaticAtomicity, ...] = ()
    deadlocks: Tuple[StaticDeadlock, ...] = ()
    candidates: Tuple[StaticCandidate, ...] = ()
    failure: str = ""  # failure-artifact hint the candidates were filtered by
    complete: bool = True  # False: the walk hit an unmodeled construct
    notes: Tuple[str, ...] = ()

    def seeds_for(self, replay_sketch: SketchKind) -> Tuple[ConstraintSet, ...]:
        """Candidate constraint sets applicable at a replay level.

        Mirrors ``ReplayPlan.seeds_for``: an RW sketch already pins every
        access, so nothing ships; lock-family candidates (deadlock
        triggers that invert an order) apply only to sketchless replay;
        region-family candidates apply below RW.  No evidence-mass gate —
        static analysis has no production witness to weigh, the tier
        ordering itself keeps these behind dynamic seeds.
        """
        if replay_sketch.includes(SketchKind.RW):
            return ()
        seeds: List[ConstraintSet] = []
        for candidate in self.candidates:
            if (
                candidate.family == "lock"
                and replay_sketch is not SketchKind.NONE
            ):
                continue
            seeds.append(candidate.constraints)
        return tuple(seeds)

    def describe(self) -> str:
        """Multi-line human report: findings first, then ranked candidates."""
        lines = [
            f"static plan for {self.program}: {len(self.threads)} thread(s), "
            f"{len(self.regions)} shared region(s), {len(self.races)} race(s), "
            f"{len(self.violations)} atomicity window(s), "
            f"{len(self.deadlocks)} deadlock cycle(s), "
            f"{len(self.candidates)} candidate(s)"
        ]
        if self.failure:
            lines.append(f"  failure hint: {self.failure!r}")
        if not self.complete:
            lines.append("  (incomplete: unmodeled constructs, see notes)")
        for note in self.notes:
            lines.append(f"  note: {note}")
        for role in self.threads:
            lines.append(f"  {role.describe()}")
        for race in self.races:
            lines.append(f"  {race.describe()}")
        for violation in self.violations:
            lines.append(f"  {violation.describe()}")
        for deadlock in self.deadlocks:
            lines.append(f"  {deadlock.describe()}")
        for rank, candidate in enumerate(self.candidates):
            lines.append(f"  #{rank} {candidate.describe()}")
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize the full plan to JSON (byte-deterministic)."""
        payload = {
            "format": "pres-static-plan-v1",
            "program": self.program,
            "params": [[k, _jsonable(v)] for k, v in self.params],
            "threads": [_role_json(r) for r in self.threads],
            "regions": [_jsonable(r) for r in self.regions],
            "lock_edges": [_edge_json(e) for e in self.lock_edges],
            "races": [_race_json(r) for r in self.races],
            "violations": [_violation_json(v) for v in self.violations],
            "deadlocks": [_deadlock_json(d) for d in self.deadlocks],
            "candidates": [_candidate_json(c) for c in self.candidates],
            "failure": self.failure,
            "complete": self.complete,
            "notes": list(self.notes),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StaticPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        payload = json.loads(text)
        if payload.get("format") != "pres-static-plan-v1":
            raise ValueError("not a PRES static plan (missing format tag)")
        return cls(
            program=payload["program"],
            params=tuple(
                (k, _from_jsonable(v)) for k, v in payload["params"]
            ),
            threads=tuple(_role_from(r) for r in payload["threads"]),
            regions=tuple(_from_jsonable(r) for r in payload["regions"]),
            lock_edges=tuple(_edge_from(e) for e in payload["lock_edges"]),
            races=tuple(_race_from(r) for r in payload["races"]),
            violations=tuple(
                _violation_from(v) for v in payload["violations"]
            ),
            deadlocks=tuple(_deadlock_from(d) for d in payload["deadlocks"]),
            candidates=tuple(
                _candidate_from(c) for c in payload["candidates"]
            ),
            failure=payload.get("failure", ""),
            complete=payload.get("complete", True),
            notes=tuple(payload.get("notes", ())),
        )


def region_sort_key(region: Address) -> Tuple:
    """Total order over region keys (str / int / tuple mixtures)."""
    return _key_token(region)


# -- JSON helpers --------------------------------------------------------
# Local to this module: repro.sanitize has its own (private) equivalents
# and importing them here would couple the static pass to the dynamic
# sanitizer's module graph.


def _ref_json(ref: EventRef) -> Dict[str, Any]:
    return {
        "tid": ref.tid,
        "family": ref.family,
        "key": _jsonable(ref.key),
        "occurrence": ref.occurrence,
    }


def _ref_from(payload: Dict[str, Any]) -> EventRef:
    return EventRef(
        tid=int(payload["tid"]),
        family=payload["family"],
        key=_from_jsonable(payload["key"]),
        occurrence=int(payload["occurrence"]),
    )


def _constraints_json(constraints: ConstraintSet) -> List[Dict[str, Any]]:
    return [
        {"before": _ref_json(c.before), "after": _ref_json(c.after)}
        for c in canonical_order(constraints)
    ]


def _constraints_from(payload: Sequence[Dict[str, Any]]) -> ConstraintSet:
    return frozenset(
        OrderConstraint(
            before=_ref_from(item["before"]), after=_ref_from(item["after"])
        )
        for item in payload
    )


def _access_json(access: StaticAccess) -> Dict[str, Any]:
    return {
        "tid": access.tid,
        "kind": access.kind.name,
        "region": _jsonable(access.region),
        "occurrence": access.occurrence,
        "lockset": [[name, mode] for name, mode in access.lockset],
        "func": access.func,
        "line": access.line,
        "phase": access.phase,
        "addr": None if access.addr is None else _jsonable(access.addr),
    }


def _access_from(payload: Dict[str, Any]) -> StaticAccess:
    addr = payload.get("addr")
    return StaticAccess(
        tid=int(payload["tid"]),
        kind=OpKind[payload["kind"]],
        region=_from_jsonable(payload["region"]),
        occurrence=int(payload["occurrence"]),
        lockset=tuple((name, mode) for name, mode in payload["lockset"]),
        func=payload["func"],
        line=int(payload["line"]),
        phase=int(payload["phase"]),
        addr=None if addr is None else _from_jsonable(addr),
    )


def _role_json(role: ThreadRole) -> Dict[str, Any]:
    return {
        "tid": role.tid,
        "name": role.name,
        "args": [_jsonable(a) for a in role.args],
        "spawn_pos": role.spawn_pos,
        "join_pos": role.join_pos,
    }


def _role_from(payload: Dict[str, Any]) -> ThreadRole:
    return ThreadRole(
        tid=int(payload["tid"]),
        name=payload["name"],
        args=tuple(_from_jsonable(a) for a in payload["args"]),
        spawn_pos=int(payload["spawn_pos"]),
        join_pos=int(payload["join_pos"]),
    )


def _edge_json(edge: LockEdge) -> Dict[str, Any]:
    return {
        "tid": edge.tid,
        "holder": edge.holder,
        "acquired": edge.acquired,
        "holder_occ": edge.holder_occ,
        "acquired_occ": edge.acquired_occ,
        "phase": edge.phase,
        "func": edge.func,
        "line": edge.line,
    }


def _edge_from(payload: Dict[str, Any]) -> LockEdge:
    return LockEdge(
        tid=int(payload["tid"]),
        holder=payload["holder"],
        acquired=payload["acquired"],
        holder_occ=int(payload["holder_occ"]),
        acquired_occ=int(payload["acquired_occ"]),
        phase=int(payload["phase"]),
        func=payload["func"],
        line=int(payload["line"]),
    )


def _race_json(race: StaticRace) -> Dict[str, Any]:
    return {
        "region": _jsonable(race.region),
        "first": _access_json(race.first),
        "second": _access_json(race.second),
        "score": race.score,
        "kind": race.kind,
    }


def _race_from(payload: Dict[str, Any]) -> StaticRace:
    return StaticRace(
        region=_from_jsonable(payload["region"]),
        first=_access_from(payload["first"]),
        second=_access_from(payload["second"]),
        score=float(payload["score"]),
        kind=payload["kind"],
    )


def _violation_json(violation: StaticAtomicity) -> Dict[str, Any]:
    return {
        "window_first": _access_json(violation.window_first),
        "window_second": _access_json(violation.window_second),
        "writer_first": _access_json(violation.writer_first),
        "writer_second": _access_json(violation.writer_second),
        "score": violation.score,
        "pattern": violation.pattern,
    }


def _violation_from(payload: Dict[str, Any]) -> StaticAtomicity:
    return StaticAtomicity(
        window_first=_access_from(payload["window_first"]),
        window_second=_access_from(payload["window_second"]),
        writer_first=_access_from(payload["writer_first"]),
        writer_second=_access_from(payload["writer_second"]),
        score=float(payload["score"]),
        pattern=payload["pattern"],
    )


def _deadlock_json(deadlock: StaticDeadlock) -> Dict[str, Any]:
    return {
        "cycle": list(deadlock.cycle),
        "tids": list(deadlock.tids),
        "trigger": _constraints_json(deadlock.trigger),
        "score": deadlock.score,
    }


def _deadlock_from(payload: Dict[str, Any]) -> StaticDeadlock:
    return StaticDeadlock(
        cycle=tuple(payload["cycle"]),
        tids=tuple(int(t) for t in payload["tids"]),
        trigger=_constraints_from(payload["trigger"]),
        score=float(payload["score"]),
    )


def _candidate_json(candidate: StaticCandidate) -> Dict[str, Any]:
    return {
        "constraints": _constraints_json(candidate.constraints),
        "source": candidate.source,
        "score": candidate.score,
        "regions": [_jsonable(r) for r in candidate.regions],
        "note": candidate.note,
    }


def _candidate_from(payload: Dict[str, Any]) -> StaticCandidate:
    return StaticCandidate(
        constraints=_constraints_from(payload["constraints"]),
        source=payload["source"],
        score=float(payload["score"]),
        regions=tuple(_from_jsonable(r) for r in payload["regions"]),
        note=payload.get("note", ""),
    )
