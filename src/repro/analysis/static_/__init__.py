"""Static concurrency analysis: sketchless exploration guided by
program structure.

The dynamic sanitizer (:mod:`repro.sanitize`) predicts interleavings
from a recorded sketch log; this package predicts them from the program
*source* alone — the bug-report scenario where no recording exists.
``analyze_program`` walks thread bodies abstractly (:mod:`.extract`),
mines the access map for race/atomicity/deadlock candidates
(:mod:`.analyzer`) and returns a serializable :class:`.model.StaticPlan`
whose candidates seed exploration at ``TIER_STATIC``.
"""

from repro.analysis.static_.analyzer import (
    MAX_STATIC_CANDIDATES,
    analyze_extraction,
    analyze_program,
)
from repro.analysis.static_.extract import (
    Extraction,
    ThreadWalk,
    extract_program,
)
from repro.analysis.static_.model import (
    LockEdge,
    StaticAccess,
    StaticAtomicity,
    StaticCandidate,
    StaticDeadlock,
    StaticPlan,
    StaticRace,
    ThreadRole,
)

__all__ = [
    "Extraction",
    "LockEdge",
    "MAX_STATIC_CANDIDATES",
    "StaticAccess",
    "StaticAtomicity",
    "StaticCandidate",
    "StaticDeadlock",
    "StaticPlan",
    "StaticRace",
    "ThreadRole",
    "ThreadWalk",
    "analyze_extraction",
    "analyze_program",
    "extract_program",
]
