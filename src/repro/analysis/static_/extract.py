"""Abstract interpretation of guest thread bodies (no execution).

Thread bodies are Python generator functions that yield ``Op`` objects
built through a :class:`~repro.sim.program.ThreadContext`.  This module
walks their *source* (via ``ast``) with an abstract environment: program
params and literals stay concrete, values received from yields become
:class:`Abstract` (tainted with the shared regions they derive from),
and control flow forks at branches whose test is abstract.

The product is, per thread, the sequence of shared-state access sites
with per-(thread, region) occurrence numbers, static locksets, lock
acquisition records, barrier phases and assertion sites.  Occurrence
counting is the load-bearing part: an occurrence is *reliable* (> 0)
exactly when every abstract path reaching the access agrees on the
count; branch merges and unbounded loops poison counts they disagree
on, and only reliable accesses may anchor ``region``-family EventRefs.

Soundness stance: over-approximate.  Every construct the walker cannot
model precisely widens (more abstract values, more poisoned counts,
``complete=False`` notes) rather than dropping accesses, so the static
access map is a superset of any dynamic execution's.
"""

from __future__ import annotations

import ast
import builtins
import copy
import inspect
import operator
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import region_key
from repro.sim.ops import Address, OpKind
from repro.sim.program import Program

from repro.analysis.static_.model import (
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    StaticAccess,
    ThreadRole,
)

#: Per-loop unroll cap; loops longer than this widen to "unknown count".
MAX_UNROLL = 256
#: Per-thread effect budget; beyond it the walk stops (complete=False).
MAX_EFFECTS = 20000

_MISSING = object()

#: Region recorded when an address cannot even be resolved to a head.
UNKNOWN_REGION = "<unknown>"


class Abstract:
    """A value the walker cannot compute, tainted with source regions."""

    __slots__ = ("regions",)

    def __init__(self, regions: FrozenSet[Address] = frozenset()) -> None:
        self.regions = frozenset(regions)

    def __repr__(self) -> str:
        return f"Abstract({sorted(map(repr, self.regions))})"

    def __eq__(self, other: Any) -> bool:
        return type(other) is type(self) and other.regions == self.regions

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.regions))


class ReadValue(Abstract):
    """The (unknown) value loaded by a ``read``/``rmw`` yield.

    Carries the address it was loaded from plus the *initial-memory
    hint* — the value the address held before the run.  Resolve-mode
    evaluation (addresses, lock names) substitutes the hint; strict
    mode treats the value as fully abstract.
    """

    __slots__ = ("addr", "hint")

    def __init__(
        self,
        regions: FrozenSet[Address],
        addr: Optional[Address],
        hint: Any = _MISSING,
    ) -> None:
        super().__init__(regions)
        self.addr = addr
        self.hint = hint

    def __repr__(self) -> str:
        return f"ReadValue({self.addr!r})"

    def __eq__(self, other: Any) -> bool:
        return (
            type(other) is type(self)
            and other.regions == self.regions
            and other.addr == self.addr
        )

    def __hash__(self) -> int:
        return hash(("ReadValue", self.regions, self.addr))


class CtxMarker:
    """Stands in for the ThreadContext parameter inside the abstract env."""

    __slots__ = ("tid",)

    def __init__(self, tid: int) -> None:
        self.tid = tid

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, CtxMarker) and other.tid == self.tid

    def __hash__(self) -> int:
        return hash(("CtxMarker", self.tid))


@dataclass(frozen=True)
class LockName:
    """A lock name that may be partially unknown (``conn_{target}``)."""

    prefix: str = ""
    suffix: str = ""
    concrete: Optional[str] = None

    @property
    def is_pattern(self) -> bool:
        return self.concrete is None

    @property
    def text(self) -> str:
        """Serializable form: the name itself, or ``prefix*suffix``."""
        if self.concrete is not None:
            return self.concrete
        return f"{self.prefix}*{self.suffix}"

    def matches(self, name: str) -> bool:
        """Whether a concrete lock name could be this (pattern) name."""
        if self.concrete is not None:
            return name == self.concrete
        return name.startswith(self.prefix) and name.endswith(self.suffix)


@dataclass
class AccessSite:
    """One recorded access plus its effect position in the thread."""

    access: StaticAccess
    pos: int


@dataclass
class AcquireRec:
    """One lock acquisition: what was taken, and what was held."""

    name: LockName
    mode: str  # LOCK_EXCLUSIVE / LOCK_SHARED
    occurrence: int  # 0 = unreliable or pattern name
    held: Tuple[Tuple[str, str], ...]  # (text, mode) held at acquisition
    held_names: Tuple[LockName, ...] = ()
    phase: int = 0
    func: str = ""
    line: int = 0
    pos: int = 0


@dataclass
class CheckSite:
    """A ``ctx.check`` site: its message and the regions its condition
    (transitively) derives from — the hook for failure-artifact filtering."""

    msg: str
    regions: FrozenSet[Address]
    func: str = ""
    line: int = 0
    pos: int = 0


@dataclass
class SpawnSite:
    tid: int
    body: Any
    args: Tuple[Any, ...]
    pos: int


@dataclass
class ThreadWalk:
    """Everything the walker learned about one thread."""

    tid: int
    name: str
    sites: List[AccessSite] = field(default_factory=list)
    acquires: List[AcquireRec] = field(default_factory=list)
    checks: List[CheckSite] = field(default_factory=list)
    end_pos: int = 0


@dataclass
class Extraction:
    """The whole-program result handed to the analyzer."""

    program: Program
    threads: List[ThreadWalk]
    roles: List[ThreadRole]
    complete: bool = True
    notes: List[str] = field(default_factory=list)


# -- control-flow signals ------------------------------------------------


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Budget(Exception):
    pass


@dataclass
class _LoopFrame:
    breaks: List["_Cap"] = field(default_factory=list)
    continues: List["_Cap"] = field(default_factory=list)


@dataclass
class _Frame:
    fn: Any
    name: str
    first_line: int
    loops: List[_LoopFrame] = field(default_factory=list)


@dataclass
class _Cap:
    """Snapshot of mergeable walker state at a control-flow split."""

    env: Dict[str, Any]
    region_occ: Dict[Address, int]
    lock_occ: Dict[str, int]
    region_bad: Set[Address]
    lock_bad: Set[str]
    lockset: List[Tuple[LockName, str, int]]
    phase: int


_SAFE_BUILTINS = {
    name: getattr(builtins, name)
    for name in (
        "range", "len", "min", "max", "abs", "sorted", "list", "tuple",
        "dict", "set", "frozenset", "enumerate", "zip", "sum", "int",
        "str", "bool", "float", "divmod", "isinstance", "reversed",
        "all", "any", "repr", "ord", "chr", "round",
    )
}

_BINOPS: Dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
    ast.BitAnd: operator.and_,
    ast.BitOr: operator.or_,
    ast.BitXor: operator.xor,
    ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
}

#: Ops whose result the walker models as an opaque value.
_OPAQUE_SYSCALLS = frozenset({"rand", "now", "recv", "read_file", "poll"})


def _taint_of(value: Any) -> FrozenSet[Address]:
    if isinstance(value, Abstract):
        return value.regions
    return frozenset()


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, Abstract) or isinstance(b, Abstract):
        return a == b
    try:
        return bool(a == b)
    except Exception:
        return a is b


class _ThreadState:
    """Mutable walker state for one thread."""

    def __init__(self, extractor: "_Extractor", tid: int) -> None:
        self.extractor = extractor
        self.tid = tid
        self.pos = 0
        self.phase = 0
        self.sites: List[AccessSite] = []
        self.acquires: List[AcquireRec] = []
        self.checks: List[CheckSite] = []
        self.spawns: List[SpawnSite] = []
        self.joins: Dict[int, int] = {}
        self.region_occ: Dict[Address, int] = {}
        self.region_bad: Set[Address] = set()
        self.lock_occ: Dict[str, int] = {}
        self.lock_bad: Set[str] = set()
        self.lockset: List[Tuple[LockName, str, int]] = []
        self.effects = 0

    # -- bookkeeping -----------------------------------------------------

    def note(self, message: str) -> None:
        self.extractor.note(f"T{self.tid}: {message}")

    def incomplete(self, message: str) -> None:
        self.extractor.incomplete(f"T{self.tid}: {message}")

    def tick(self, cost: int = 1) -> int:
        """Advance the effect position; returns the pre-advance position."""
        here = self.pos
        self.pos += cost
        self.effects += 1
        if self.effects > MAX_EFFECTS:
            raise _Budget()
        return here

    def lockset_tuple(self) -> Tuple[Tuple[str, str], ...]:
        return tuple((name.text, mode) for name, mode, _ in self.lockset)

    # -- recorded effects ------------------------------------------------

    def record_access(
        self,
        kind: OpKind,
        region: Address,
        frame: _Frame,
        line: int,
        addr: Optional[Address],
        reliable: bool = True,
    ) -> None:
        pos = self.tick()
        if region in self.region_bad or not reliable:
            occurrence = 0
            self.region_bad.add(region)
        else:
            occurrence = self.region_occ.get(region, 0) + 1
        self.region_occ[region] = self.region_occ.get(region, 0) + 1
        self.sites.append(
            AccessSite(
                access=StaticAccess(
                    tid=self.tid,
                    kind=kind,
                    region=region,
                    occurrence=occurrence,
                    lockset=self.lockset_tuple(),
                    func=frame.name,
                    line=line,
                    phase=self.phase,
                    addr=addr,
                ),
                pos=pos,
            )
        )

    def acquire(self, name: LockName, mode: str, frame: _Frame, line: int) -> None:
        pos = self.tick()
        if name.is_pattern or name.text in self.lock_bad:
            occurrence = 0
            if not name.is_pattern:
                self.lock_bad.add(name.text)
        else:
            occurrence = self.lock_occ.get(name.text, 0) + 1
        if not name.is_pattern:
            self.lock_occ[name.text] = self.lock_occ.get(name.text, 0) + 1
        self.acquires.append(
            AcquireRec(
                name=name,
                mode=mode,
                occurrence=occurrence,
                held=self.lockset_tuple(),
                held_names=tuple(n for n, _, _ in self.lockset),
                phase=self.phase,
                func=frame.name,
                line=line,
                pos=pos,
            )
        )
        self.lockset.append((name, mode, occurrence))

    def release(self, name: LockName) -> None:
        self.tick()
        for index in range(len(self.lockset) - 1, -1, -1):
            held, _, _ = self.lockset[index]
            if held.text == name.text or (
                name.is_pattern and name.matches(held.text)
            ) or (held.is_pattern and held.matches(name.text)):
                del self.lockset[index]
                return
        self.note(f"release of unheld lock {name.text!r}")

    # -- snapshot / merge ------------------------------------------------

    def capture(self, env: Dict[str, Any]) -> _Cap:
        return _Cap(
            env=copy.deepcopy(env),
            region_occ=dict(self.region_occ),
            lock_occ=dict(self.lock_occ),
            region_bad=set(self.region_bad),
            lock_bad=set(self.lock_bad),
            lockset=list(self.lockset),
            phase=self.phase,
        )

    def restore(self, env: Dict[str, Any], cap: _Cap) -> None:
        env.clear()
        env.update(copy.deepcopy(cap.env))
        self.region_occ = dict(cap.region_occ)
        self.lock_occ = dict(cap.lock_occ)
        self.region_bad = set(cap.region_bad)
        self.lock_bad = set(cap.lock_bad)
        self.lockset = list(cap.lockset)
        self.phase = cap.phase

    def merge(
        self, env: Dict[str, Any], cap: _Cap, taint: FrozenSet[Address]
    ) -> None:
        """Join another path's end state into the current one.

        Counts that disagree are poisoned; env bindings that disagree
        widen to :class:`Abstract` tainted by both sides plus the branch
        condition's regions; locksets intersect (must-hold semantics).
        """
        for key in set(self.region_occ) | set(cap.region_occ):
            mine = self.region_occ.get(key, 0)
            other = cap.region_occ.get(key, 0)
            if mine != other:
                self.region_bad.add(key)
            self.region_occ[key] = max(mine, other)
        self.region_bad |= cap.region_bad
        for lock in set(self.lock_occ) | set(cap.lock_occ):
            mine = self.lock_occ.get(lock, 0)
            other = cap.lock_occ.get(lock, 0)
            if mine != other:
                self.lock_bad.add(lock)
            self.lock_occ[lock] = max(mine, other)
        self.lock_bad |= cap.lock_bad
        other_held = {(name.text, mode) for name, mode, _ in cap.lockset}
        self.lockset = [
            entry for entry in self.lockset
            if (entry[0].text, entry[1]) in other_held
        ]
        if self.phase != cap.phase:
            self.note("barrier phase diverges across branch merge")
            self.phase = max(self.phase, cap.phase)
        for key in set(env) | set(cap.env):
            if key not in env or key not in cap.env:
                env[key] = Abstract(
                    taint
                    | _taint_of(env.get(key))
                    | _taint_of(cap.env.get(key))
                )
            elif not _values_equal(env[key], cap.env[key]):
                env[key] = Abstract(
                    taint | _taint_of(env[key]) | _taint_of(cap.env[key])
                )


class _Extractor:
    """Walks main and every spawned role of one :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.notes: List[str] = []
        self.complete = True
        self.next_tid = 1
        self._ast_cache: Dict[Any, Tuple[ast.FunctionDef, int]] = {}

    def note(self, message: str) -> None:
        if message not in self.notes:
            self.notes.append(message)

    def incomplete(self, message: str) -> None:
        self.complete = False
        self.note(message)

    # -- entry point -----------------------------------------------------

    def run(self) -> Extraction:
        main_state = _ThreadState(self, 0)
        main_walk = self._walk_thread(main_state, self.program.main, self._main_args())
        walks = [main_walk]
        roles: List[ThreadRole] = []
        for spawn in main_state.spawns:
            roles.append(
                ThreadRole(
                    tid=spawn.tid,
                    name=getattr(spawn.body, "__name__", "?"),
                    args=tuple(
                        "?" if isinstance(a, Abstract) else a
                        for a in spawn.args
                    ),
                    spawn_pos=spawn.pos,
                    join_pos=main_state.joins.get(spawn.tid, -1),
                )
            )
            role_state = _ThreadState(self, spawn.tid)
            walks.append(
                self._walk_thread(
                    role_state,
                    spawn.body,
                    (CtxMarker(spawn.tid),) + spawn.args,
                )
            )
        return Extraction(
            program=self.program,
            threads=walks,
            roles=roles,
            complete=self.complete,
            notes=list(self.notes),
        )

    def _main_args(self) -> Tuple[Any, ...]:
        ctx = CtxMarker(0)
        try:
            sig = inspect.signature(self.program.main)
            bound = sig.bind(ctx, **self.program.params)
            bound.apply_defaults()
            return tuple(bound.arguments.values())
        except TypeError:
            self.incomplete("could not bind main params statically")
            return (ctx,)

    # -- function walking ------------------------------------------------

    def _fn_ast(self, fn: Any) -> Optional[Tuple[ast.FunctionDef, int]]:
        cached = self._ast_cache.get(fn)
        if cached is not None:
            return cached
        try:
            source, first_line = inspect.getsourcelines(fn)
            tree = ast.parse(textwrap.dedent("".join(source)))
        except (OSError, TypeError, IndentationError, SyntaxError):
            return None
        node = tree.body[0]
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        result = (node, first_line)
        self._ast_cache[fn] = result
        return result

    def _walk_thread(
        self, state: _ThreadState, fn: Any, args: Tuple[Any, ...]
    ) -> ThreadWalk:
        try:
            self._walk_fn(state, fn, args)
        except _Budget:
            state.incomplete("effect budget exhausted; walk truncated")
        except (_Break, _Continue):
            state.incomplete("break/continue escaped function scope")
        return ThreadWalk(
            tid=state.tid,
            name=getattr(fn, "__name__", "?"),
            sites=state.sites,
            acquires=state.acquires,
            checks=state.checks,
            end_pos=state.pos,
        )

    def _walk_fn(self, state: _ThreadState, fn: Any, args: Tuple[Any, ...]) -> Any:
        parsed = self._fn_ast(fn)
        if parsed is None:
            state.incomplete(
                f"cannot read source of {getattr(fn, '__name__', fn)!r}"
            )
            return Abstract()
        node, first_line = parsed
        env: Dict[str, Any] = {}
        params = [a.arg for a in node.args.args]
        defaults = node.args.defaults
        for index, name in enumerate(params):
            if index < len(args):
                env[name] = args[index]
            else:
                # trailing parameter: use its default if one exists
                offset = index - (len(params) - len(defaults))
                if 0 <= offset < len(defaults):
                    env[name] = self._eval(
                        state, defaults[offset], {}, fn, resolve=False
                    )
                else:
                    env[name] = Abstract()
        frame = _Frame(fn=fn, name=node.name, first_line=first_line)
        try:
            self._exec_block(state, node.body, env, fn, frame)
        except _Return as ret:
            return ret.value
        return None

    # -- statement execution ---------------------------------------------

    def _exec_block(
        self,
        state: _ThreadState,
        stmts: Sequence[ast.stmt],
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(state, stmt, env, fn, frame)

    def _exec_stmt(
        self,
        state: _ThreadState,
        stmt: ast.stmt,
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> None:
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Yield):
                self._do_yield(state, value.value, env, fn, frame)
            elif isinstance(value, ast.YieldFrom):
                self._do_yield_from(state, value.value, env, fn, frame)
            elif any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(value)
            ):
                # e.g. ``tids.append((yield ctx.spawn(...)))``: run the
                # yields for effect/count fidelity, drop the outer result
                self._run_embedded_yields(state, value, env, fn, frame)
            else:
                self._eval(state, value, env, fn, resolve=False)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None:
                return
            if isinstance(value, ast.Yield):
                result = self._do_yield(state, value.value, env, fn, frame)
            elif isinstance(value, ast.YieldFrom):
                result = self._do_yield_from(state, value.value, env, fn, frame)
            elif any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(value)
            ):
                # yield embedded somewhere unusual: run the yields for
                # effect/count fidelity, widen the result
                self._run_embedded_yields(state, value, env, fn, frame)
                result = Abstract()
            else:
                result = self._eval(state, value, env, fn, resolve=False)
            for target in targets:
                self._assign_target(state, target, result, env, fn)
            return
        if isinstance(stmt, ast.AugAssign):
            self._exec_augassign(state, stmt, env, fn, frame)
            return
        if isinstance(stmt, ast.If):
            self._exec_if(state, stmt, env, fn, frame)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(state, stmt, env, fn, frame)
            return
        if isinstance(stmt, ast.While):
            self._exec_while(state, stmt, env, fn, frame)
            return
        if isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                if isinstance(stmt.value, ast.Yield):
                    value = self._do_yield(state, stmt.value.value, env, fn, frame)
                elif isinstance(stmt.value, ast.YieldFrom):
                    value = self._do_yield_from(state, stmt.value.value, env, fn, frame)
                else:
                    value = self._eval(state, stmt.value, env, fn, resolve=False)
            raise _Return(value)
        if isinstance(stmt, ast.Break):
            raise _Break()
        if isinstance(stmt, ast.Continue):
            raise _Continue()
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal, ast.Import,
                             ast.ImportFrom)):
            return
        if isinstance(stmt, ast.Assert):
            return  # guest invariants go through ctx.check
        if isinstance(stmt, ast.FunctionDef):
            state.incomplete(f"nested function {stmt.name!r} not modeled")
            return
        state.incomplete(f"unmodeled statement {type(stmt).__name__}")

    def _run_embedded_yields(
        self,
        state: _ThreadState,
        node: ast.AST,
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Yield):
                self._do_yield(state, sub.value, env, fn, frame)
            elif isinstance(sub, ast.YieldFrom):
                self._do_yield_from(state, sub.value, env, fn, frame)

    def _exec_augassign(
        self,
        state: _ThreadState,
        stmt: ast.AugAssign,
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> None:
        value = self._eval(state, stmt.value, env, fn, resolve=False)
        current = self._load_target(state, stmt.target, env, fn)
        op = _BINOPS.get(type(stmt.op))
        if (
            op is None
            or isinstance(value, Abstract)
            or isinstance(current, Abstract)
        ):
            result: Any = Abstract(_taint_of(value) | _taint_of(current))
        else:
            try:
                result = op(current, value)
            except Exception:
                result = Abstract(_taint_of(value) | _taint_of(current))
        self._assign_target(state, stmt.target, result, env, fn)

    def _load_target(
        self, state: _ThreadState, target: ast.expr, env: Dict[str, Any], fn: Any
    ) -> Any:
        load = copy.deepcopy(target)
        for sub in ast.walk(load):
            if isinstance(sub, (ast.Name, ast.Subscript, ast.Attribute)):
                sub.ctx = ast.Load()
        return self._eval(state, load, env, fn, resolve=False)

    # -- branches --------------------------------------------------------

    def _exec_if(
        self,
        state: _ThreadState,
        stmt: ast.If,
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> None:
        test = self._eval(state, stmt.test, env, fn, resolve=False)
        if not isinstance(test, Abstract):
            self._exec_block(
                state, stmt.body if test else stmt.orelse, env, fn, frame
            )
            return
        taint = test.regions
        base = state.capture(env)
        then_exc = self._run_branch(state, stmt.body, env, fn, frame)
        then_cap = state.capture(env)
        state.restore(env, base)
        else_exc = self._run_branch(state, stmt.orelse, env, fn, frame)
        # state/env now hold the else path's end state
        loop = frame.loops[-1] if frame.loops else None

        def park(cap: _Cap, exc: Exception) -> None:
            if loop is None:
                state.incomplete("break/continue outside loop in branch")
                return
            if isinstance(exc, _Break):
                loop.breaks.append(cap)
            else:
                loop.continues.append(cap)

        if then_exc is None and else_exc is None:
            state.merge(env, then_cap, taint)
            return
        if then_exc is None and else_exc is not None:
            if isinstance(else_exc, _Return):
                # else path returned; continue along the then path
                state.restore(env, then_cap)
                return
            park(state.capture(env), else_exc)
            state.restore(env, then_cap)
            return
        if then_exc is not None and else_exc is None:
            if isinstance(then_exc, _Return):
                return  # continue along the (current) else path
            park(then_cap, then_exc)
            return
        # both paths escape: no fall-through exists after this statement
        assert then_exc is not None and else_exc is not None
        if isinstance(then_exc, _Return) and isinstance(else_exc, _Return):
            state.merge(env, then_cap, taint)
            value = (
                then_exc.value
                if _values_equal(then_exc.value, else_exc.value)
                else Abstract(
                    taint | _taint_of(then_exc.value) | _taint_of(else_exc.value)
                )
            )
            raise _Return(value)
        if isinstance(then_exc, _Return):
            park(state.capture(env), else_exc)
            raise then_exc
        park(then_cap, then_exc)
        raise else_exc

    def _run_branch(
        self,
        state: _ThreadState,
        stmts: Sequence[ast.stmt],
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> Optional[Exception]:
        try:
            self._exec_block(state, stmts, env, fn, frame)
        except (_Break, _Continue, _Return) as exc:
            return exc
        return None

    # -- loops -----------------------------------------------------------

    def _exec_for(
        self,
        state: _ThreadState,
        stmt: ast.For,
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> None:
        iterable = self._eval(state, stmt.iter, env, fn, resolve=False)
        items: Optional[List[Any]] = None
        if not isinstance(iterable, Abstract):
            try:
                items = list(iterable)
            except TypeError:
                items = None
        if items is None:
            self._single_pass(
                state, stmt.body, env, fn, frame,
                guaranteed=False,
                target=stmt.target,
                target_taint=_taint_of(iterable),
            )
            return
        if len(items) > MAX_UNROLL:
            state.note(
                f"loop with {len(items)} iterations widened after {MAX_UNROLL}"
            )
            items = items[:MAX_UNROLL]
            tail_unknown = True
        else:
            tail_unknown = False
        loop = _LoopFrame()
        frame.loops.append(loop)
        try:
            for item in items:
                self._assign_target(state, stmt.target, item, env, fn)
                try:
                    self._exec_block(state, stmt.body, env, fn, frame)
                except _Continue:
                    pass
                except _Break:
                    break
                for cap in loop.continues:
                    state.merge(env, cap, frozenset())
                loop.continues.clear()
            for cap in loop.continues + loop.breaks:
                state.merge(env, cap, frozenset())
        finally:
            frame.loops.pop()
        if tail_unknown:
            self._single_pass(
                state, stmt.body, env, fn, frame,
                guaranteed=False,
                target=stmt.target,
                target_taint=frozenset(),
            )

    def _exec_while(
        self,
        state: _ThreadState,
        stmt: ast.While,
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> None:
        test = self._eval(state, stmt.test, env, fn, resolve=False)
        if isinstance(test, Abstract):
            self._single_pass(
                state, stmt.body, env, fn, frame,
                guaranteed=False, target=None, target_taint=test.regions,
            )
            return
        if test is True and isinstance(stmt.test, ast.Constant):
            # `while True`: the body definitely runs at least once
            self._single_pass(
                state, stmt.body, env, fn, frame,
                guaranteed=True, target=None, target_taint=frozenset(),
            )
            return
        # concrete countdown-style while: execute iteratively, capped
        loop = _LoopFrame()
        frame.loops.append(loop)
        iterations = 0
        try:
            while test:
                if iterations >= MAX_UNROLL:
                    state.note("while loop widened after unroll cap")
                    self._single_pass(
                        state, stmt.body, env, fn, frame,
                        guaranteed=False, target=None, target_taint=frozenset(),
                    )
                    break
                try:
                    self._exec_block(state, stmt.body, env, fn, frame)
                except _Continue:
                    pass
                except _Break:
                    break
                for cap in loop.continues:
                    state.merge(env, cap, frozenset())
                loop.continues.clear()
                iterations += 1
                test = self._eval(state, stmt.test, env, fn, resolve=False)
                if isinstance(test, Abstract):
                    self._single_pass(
                        state, stmt.body, env, fn, frame,
                        guaranteed=False, target=None,
                        target_taint=test.regions,
                    )
                    break
            for cap in loop.continues + loop.breaks:
                state.merge(env, cap, frozenset())
        finally:
            frame.loops.pop()

    def _single_pass(
        self,
        state: _ThreadState,
        body: Sequence[ast.stmt],
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
        guaranteed: bool,
        target: Optional[ast.expr],
        target_taint: FrozenSet[Address],
    ) -> None:
        """Walk a loop body once when the iteration count is unknown.

        First-pass occurrences stay exact ("exact-if-reached"); at the
        end everything the body *touched* is poisoned, because later
        iterations may or may not happen.  For a loop that may run zero
        times (``guaranteed=False``) the pre-loop state is merged back
        in, which poisons the same keys and widens assigned names.
        """
        base = state.capture(env) if not guaranteed else None
        env_before = copy.deepcopy(env)
        first_site = len(state.sites)
        first_acq = len(state.acquires)
        if target is not None:
            self._assign_target(state, target, Abstract(target_taint), env, fn)
        loop = _LoopFrame()
        frame.loops.append(loop)
        returned: Optional[_Return] = None
        try:
            self._exec_block(state, body, env, fn, frame)
        except (_Break, _Continue):
            pass
        except _Return as ret:
            returned = ret
        finally:
            frame.loops.pop()
        for cap in loop.continues + loop.breaks:
            state.merge(env, cap, frozenset())
        if returned is not None and guaranteed and not (
            loop.continues or loop.breaks
        ):
            # every surviving path returned on the first (certain) pass
            raise returned
        if not guaranteed and returned is not None:
            state.note("return from maybe-zero-iteration loop; widening")
        # poison everything the pass touched: iteration count unknown
        touched_regions = {
            site.access.region for site in state.sites[first_site:]
        }
        touched_locks = {
            rec.name.text
            for rec in state.acquires[first_acq:]
            if not rec.name.is_pattern
        }
        if not guaranteed:
            # first-pass occurrences stay anchored ("exact-if-reached"):
            # a ref for an access that never runs simply never pends,
            # which the PIR gate tolerates; merging the pre-loop state
            # below widens everything else the zero-iteration path missed
            state.merge(env, base, target_taint)  # type: ignore[arg-type]
        state.region_bad |= touched_regions
        state.lock_bad |= touched_locks
        if guaranteed:
            for key in set(env) | set(env_before):
                if key not in env or key not in env_before:
                    env[key] = Abstract(
                        target_taint
                        | _taint_of(env.get(key))
                        | _taint_of(env_before.get(key))
                    )
                elif not _values_equal(env[key], env_before[key]):
                    env[key] = Abstract(
                        target_taint
                        | _taint_of(env[key])
                        | _taint_of(env_before[key])
                    )

    # -- assignment ------------------------------------------------------

    def _assign_target(
        self,
        state: _ThreadState,
        target: ast.expr,
        value: Any,
        env: Dict[str, Any],
        fn: Any,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = target.elts
            concrete = (
                not isinstance(value, Abstract)
                and isinstance(value, (tuple, list))
                and len(value) == len(elements)
                and not any(isinstance(e, ast.Starred) for e in elements)
            )
            for index, element in enumerate(elements):
                part = value[index] if concrete else Abstract(_taint_of(value))
                self._assign_target(state, element, part, env, fn)
            return
        if isinstance(target, ast.Subscript):
            container = self._eval(state, target.value, env, fn, resolve=False)
            index = self._eval(state, target.slice, env, fn, resolve=False)
            if not isinstance(container, Abstract) and not isinstance(
                index, Abstract
            ) and not isinstance(value, Abstract):
                try:
                    container[index] = value
                    return
                except Exception:
                    pass
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                env[base.id] = Abstract(
                    _taint_of(env.get(base.id))
                    | _taint_of(index)
                    | _taint_of(value)
                )
            return
        if isinstance(target, ast.Starred):
            self._assign_target(state, target.value, Abstract(_taint_of(value)), env, fn)
            return
        state.incomplete(f"unmodeled assignment target {type(target).__name__}")

    # -- expression evaluation -------------------------------------------

    def _eval(
        self,
        state: _ThreadState,
        node: ast.expr,
        env: Dict[str, Any],
        fn: Any,
        resolve: bool,
    ) -> Any:
        """Evaluate an expression against the abstract environment.

        ``resolve=False`` (strict): any abstract name poisons the result.
        ``resolve=True``: ReadValues substitute their initial-memory
        hint — used for addresses and lock names, where "the value this
        location started with" is the analyzer's best guess at identity.
        """
        regions: Set[Address] = set()
        scope: Dict[str, Any] = {}
        abstract = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Name) or not isinstance(sub.ctx, ast.Load):
                continue
            name = sub.id
            if name not in env or name in scope:
                continue
            value = env[name]
            if resolve and isinstance(value, ReadValue):
                if value.hint is _MISSING:
                    abstract = True
                    regions |= value.regions
                else:
                    scope[name] = value.hint
            elif isinstance(value, Abstract):
                abstract = True
                regions |= value.regions
            else:
                scope[name] = value
        if abstract:
            return Abstract(frozenset(regions))
        try:
            expr = ast.Expression(body=node)
            ast.fix_missing_locations(expr)
            code = compile(expr, "<static>", "eval")
            module_globals = dict(getattr(fn, "__globals__", {}))
            module_globals["__builtins__"] = _SAFE_BUILTINS
            # env bindings go into *globals*: comprehension bodies run in
            # their own scope and would not see a separate locals dict
            module_globals.update(scope)
            return eval(code, module_globals)  # noqa: S307 - sandboxed
        except Exception:
            return Abstract(frozenset(regions))

    def _eval_args(
        self,
        state: _ThreadState,
        args: Sequence[ast.expr],
        env: Dict[str, Any],
        fn: Any,
    ) -> Tuple[Any, ...]:
        """Evaluate call arguments, expanding ``*args`` splats."""
        values: List[Any] = []
        for arg in args:
            if isinstance(arg, ast.Starred):
                splat = self._eval(state, arg.value, env, fn, resolve=False)
                if isinstance(splat, Abstract):
                    values.append(splat)
                else:
                    try:
                        values.extend(splat)
                    except TypeError:
                        values.append(Abstract(_taint_of(splat)))
            else:
                values.append(self._eval(state, arg, env, fn, resolve=False))
        return tuple(values)

    def _node_taint(self, node: ast.expr, env: Dict[str, Any]) -> FrozenSet[Address]:
        regions: Set[Address] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                regions |= _taint_of(env.get(sub.id))
        return frozenset(regions)

    # -- address / lock-name resolution ----------------------------------

    def _resolve_addr(
        self,
        state: _ThreadState,
        node: ast.expr,
        env: Dict[str, Any],
        fn: Any,
    ) -> Tuple[Address, Optional[Address], FrozenSet[Address]]:
        """(region, trusted full address or None, taint regions)."""
        strict = self._eval(state, node, env, fn, resolve=False)
        if not isinstance(strict, Abstract):
            return region_key(strict), strict, frozenset()
        resolved = self._eval(state, node, env, fn, resolve=True)
        if not isinstance(resolved, Abstract):
            return region_key(resolved), None, strict.regions
        if isinstance(node, ast.Tuple) and node.elts:
            head = self._eval(state, node.elts[0], env, fn, resolve=True)
            if not isinstance(head, Abstract):
                return head, None, strict.regions
        state.incomplete("unresolvable address; recorded as <unknown>")
        return UNKNOWN_REGION, None, strict.regions

    def _resolve_lock(
        self,
        state: _ThreadState,
        node: ast.expr,
        env: Dict[str, Any],
        fn: Any,
    ) -> LockName:
        value = self._eval(state, node, env, fn, resolve=True)
        if isinstance(value, str):
            return LockName(concrete=value)
        if isinstance(node, ast.JoinedStr):
            prefix_parts: List[str] = []
            suffix_parts: List[str] = []
            seen_unknown = False
            for part in node.values:
                if isinstance(part, ast.Constant) and isinstance(part.value, str):
                    text = part.value
                else:
                    inner = part.value if isinstance(part, ast.FormattedValue) else part
                    piece = self._eval(state, inner, env, fn, resolve=True)
                    if isinstance(piece, Abstract):
                        seen_unknown = True
                        suffix_parts = []
                        continue
                    text = str(piece)
                if seen_unknown:
                    suffix_parts.append(text)
                else:
                    prefix_parts.append(text)
            if not seen_unknown:
                return LockName(concrete="".join(prefix_parts))
            return LockName(
                prefix="".join(prefix_parts), suffix="".join(suffix_parts)
            )
        return LockName()  # fully unknown: matches anything

    # -- yields ----------------------------------------------------------

    def _ctx_call(
        self, node: Optional[ast.expr], env: Dict[str, Any]
    ) -> Optional[Tuple[str, ast.Call]]:
        """(method name, call node) if this is a ``ctx.method(...)`` call."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if not isinstance(base, ast.Name):
            return None
        if not isinstance(env.get(base.id), CtxMarker):
            return None
        return func.attr, node

    def _do_yield(
        self,
        state: _ThreadState,
        node: Optional[ast.expr],
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> Any:
        if node is None:
            state.tick()
            return Abstract()
        parsed = self._ctx_call(node, env)
        if parsed is None:
            # yielding something that is not a direct ctx call: evaluate
            # (it may still *be* an Op built elsewhere) and widen
            state.incomplete("yield of a non-ctx expression; effect unknown")
            state.tick()
            return Abstract(self._node_taint(node, env))
        method, call = parsed
        line = frame.first_line + call.lineno - 1
        args = call.args

        if method in ("read", "write", "rmw", "cas", "free"):
            region, full_addr, taint = self._resolve_addr(state, args[0], env, fn)
            kind = {
                "read": OpKind.READ,
                "write": OpKind.WRITE,
                "rmw": OpKind.RMW,
                "cas": OpKind.CAS,
                "free": OpKind.FREE,
            }[method]
            if method == "write" and len(args) > 1:
                self._eval(state, args[1], env, fn, resolve=False)
            state.record_access(kind, region, frame, line, full_addr)
            if method == "read":
                hint = _MISSING
                if full_addr is not None:
                    hint = self.program.initial_memory.get(full_addr, _MISSING)
                return ReadValue(
                    frozenset({region}) | taint, full_addr, hint
                )
            if method in ("rmw", "cas"):
                return Abstract(frozenset({region}) | taint)
            return None

        if method in ("lock", "wrlock", "rdlock"):
            name = self._resolve_lock(state, args[0], env, fn)
            mode = LOCK_SHARED if method == "rdlock" else LOCK_EXCLUSIVE
            state.acquire(name, mode, frame, line)
            return None
        if method == "trylock":
            # not protective and not counted: success is schedule-dependent
            self._resolve_lock(state, args[0], env, fn)
            state.tick()
            return Abstract()
        if method in ("unlock", "rwunlock"):
            name = self._resolve_lock(state, args[0], env, fn)
            state.release(name)
            return None
        if method == "wait":
            cond_name = self._resolve_lock(state, args[0], env, fn)
            lock_name = self._resolve_lock(state, args[1], env, fn)
            state.tick()  # the wait itself
            # pthreads semantics: released during the wait, re-acquired
            # before it returns; the re-acquire is a fresh LOCK event
            state.release(lock_name)
            state.acquire(lock_name, LOCK_EXCLUSIVE, frame, line)
            del cond_name
            return None
        if method in ("signal", "broadcast", "sem_acquire", "sem_release"):
            state.tick()
            return None
        if method == "barrier":
            state.tick()
            state.phase += 1
            return None

        if method == "spawn":
            body = self._eval(state, args[0], env, fn, resolve=False)
            spawn_args = self._eval_args(state, args[1:], env, fn)
            pos = state.tick()
            if state.tid != 0:
                state.incomplete("spawn outside main thread not modeled")
                return Abstract()
            if isinstance(body, Abstract) or not callable(body):
                state.incomplete("spawn of unresolvable thread body")
                return Abstract()
            tid = self.next_tid
            self.next_tid += 1
            state.spawns.append(SpawnSite(tid=tid, body=body, args=spawn_args, pos=pos))
            return tid
        if method == "join":
            tid = self._eval(state, args[0], env, fn, resolve=False)
            pos = state.tick()
            if isinstance(tid, int):
                state.joins.setdefault(tid, pos)
            else:
                state.note("join on statically unknown tid")
            return Abstract()

        if method in ("syscall", "output", "rand", "now", "sleep"):
            for arg in args:
                self._eval(state, arg, env, fn, resolve=False)
            state.tick()
            return Abstract()
        if method == "bb":
            state.tick(0)
            return None
        if method == "cpu_yield":
            state.tick(0)
            return None
        if method == "local":
            state.tick()
            return None
        if method == "check" and len(args) >= 2:
            taint = self._node_taint(args[0], env)
            cond = self._eval(state, args[0], env, fn, resolve=False)
            msg = self._eval(state, args[1], env, fn, resolve=True)
            pos = state.tick()
            state.checks.append(
                CheckSite(
                    msg=msg if isinstance(msg, str) else "<dynamic>",
                    regions=taint | _taint_of(cond),
                    func=frame.name,
                    line=line,
                    pos=pos,
                )
            )
            return None

        state.incomplete(f"unmodeled ctx method {method!r}")
        state.tick()
        return Abstract()

    def _do_yield_from(
        self,
        state: _ThreadState,
        node: ast.expr,
        env: Dict[str, Any],
        fn: Any,
        frame: _Frame,
    ) -> Any:
        parsed = self._ctx_call(node, env)
        if parsed is not None:
            method, call = parsed
            args = call.args
            if method == "call":
                body = self._eval(state, args[0], env, fn, resolve=False)
                call_args = self._eval_args(state, args[1:], env, fn)
                state.tick(0)  # FUNC_ENTER
                if isinstance(body, Abstract) or not callable(body):
                    state.incomplete("ctx.call of unresolvable body")
                    return Abstract()
                ctx = self._ctx_of(env, call)
                result = self._walk_fn(state, body, (ctx,) + call_args)
                state.tick(0)  # FUNC_EXIT
                return result
            if method == "work":
                units = self._eval(state, args[0], env, fn, resolve=False)
                if isinstance(units, int) and 0 <= units <= MAX_UNROLL:
                    for _ in range(units):
                        state.tick()
                else:
                    state.tick()
                return None
            if method == "free_region":
                prefix = self._eval(state, args[0], env, fn, resolve=True)
                indices = self._eval(state, args[1], env, fn, resolve=False)
                line = frame.first_line + call.lineno - 1
                if isinstance(prefix, Abstract):
                    state.incomplete("free_region with unknown prefix")
                    return None
                if isinstance(indices, Abstract):
                    state.record_access(
                        OpKind.FREE, prefix, frame, line, None, reliable=False
                    )
                    state.record_access(
                        OpKind.FREE, prefix, frame, line, prefix, reliable=False
                    )
                    return None
                for index in list(indices)[:MAX_UNROLL]:
                    state.record_access(
                        OpKind.FREE, prefix, frame, line, (prefix, index)
                    )
                state.record_access(OpKind.FREE, prefix, frame, line, prefix)
                return None
            state.incomplete(f"unmodeled ctx generator {method!r}")
            state.tick()
            return Abstract()
        # a plain generator helper (spawn_all, join_all, app-local ones):
        # recurse into it so its yields are accounted in this thread
        if isinstance(node, ast.Call):
            target = self._eval(state, node.func, env, fn, resolve=False)
            if not isinstance(target, Abstract) and (
                inspect.isgeneratorfunction(target)
            ):
                call_args = self._eval_args(state, node.args, env, fn)
                return self._walk_fn(state, target, call_args)
        state.incomplete("yield-from of unresolvable generator")
        state.tick()
        return Abstract()

    def _ctx_of(self, env: Dict[str, Any], call: ast.Call) -> CtxMarker:
        base = call.func.value  # type: ignore[attr-defined]
        marker = env.get(base.id) if isinstance(base, ast.Name) else None
        return marker if isinstance(marker, CtxMarker) else CtxMarker(0)


def extract_program(program: Program) -> Extraction:
    """Walk a program's main and every (main-spawned) thread body."""
    return _Extractor(program).run()
