"""Static concurrency analysis over extracted program structure.

Consumes an :class:`~repro.analysis.static_.extract.Extraction` and
produces a :class:`~repro.analysis.static_.model.StaticPlan`:

* a shared-region access map with static (must-hold) locksets,
* a may-happen-in-parallel (MHP) approximation from the spawn/join
  structure of the main thread,
* static race / use-after-free / use-before-init findings,
* static atomicity windows (read..use in one thread, interfering writer
  in another, both interleaving diagonals),
* static deadlock candidates from cross-thread lock-order cycles,
* ranked, deduplicated trigger candidates over *reliable* accesses only
  — the ones the PIR gate can resolve as ``region``/``lock`` EventRefs.

Everything iterates in deterministic order (thread lists, site order,
region sort keys); two runs over the same program produce byte-identical
plans, which CI checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import (
    ConstraintSet,
    EventRef,
    OrderConstraint,
    constraint_sort_key,
    ordered_constraints,
    region_key,
)
from repro.sim.ops import Address, OpKind
from repro.sim.program import Program

from repro.analysis.static_.extract import (
    AccessSite,
    AcquireRec,
    Extraction,
    LockName,
    ThreadWalk,
    UNKNOWN_REGION,
    extract_program,
)
from repro.analysis.static_.model import (
    LOCK_SHARED,
    LockEdge,
    StaticAccess,
    StaticAtomicity,
    StaticCandidate,
    StaticDeadlock,
    StaticPlan,
    StaticRace,
    ThreadRole,
    region_sort_key,
)

#: Cap on shipped candidates: the static tier runs *before* mined
#: feedback, so junk here delays real wins — keep the list short.
MAX_STATIC_CANDIDATES = 12

#: Max effect distance between the two accesses of an atomicity window,
#: and between the interfering writer's two writes.
WINDOW_SPAN = 12

#: Cap on raw findings *stored* in the plan (candidate generation still
#: sees everything): loop-heavy apps produce thousands of window/writer
#: combinations and the plan JSON must stay reviewable.
MAX_STORED_FINDINGS = 64

#: Score multiplier when the window and its interferer sit in different
#: barrier phases (usually unreachable; keep, but rank last).
CROSS_PHASE_FACTOR = 0.4

_WRITE_KINDS = frozenset({OpKind.WRITE, OpKind.RMW, OpKind.CAS, OpKind.FREE})
_READ_KINDS = frozenset({OpKind.READ, OpKind.RMW, OpKind.CAS})

_BASE_SCORE = {
    "use-after-free": 0.85,
    "atomicity": 0.80,
    "use-before-init": 0.80,
    "race-exact": 0.75,
    "race": 0.50,
    "deadlock": 0.70,
}


@dataclass(frozen=True)
class _Finding:
    """A candidate before ranking."""

    constraints: ConstraintSet
    source: str
    score: float
    regions: Tuple[Address, ...]
    note: str


class _Analysis:
    def __init__(self, extraction: Extraction, failure: Optional[str]) -> None:
        self.ex = extraction
        self.failure = (failure or "").strip()
        self.notes: List[str] = list(extraction.notes)
        self.walks: Dict[int, ThreadWalk] = {
            walk.tid: walk for walk in extraction.threads
        }
        self.roles: Dict[int, ThreadRole] = {
            role.tid: role for role in extraction.roles
        }
        self.tids = sorted(self.walks)

    # -- MHP approximation ----------------------------------------------

    def _interval(self, tid: int) -> Tuple[int, float]:
        """(spawn position, join position) of a thread in main's clock."""
        role = self.roles.get(tid)
        if role is None:  # main: alive for the whole run
            return (-1, float("inf"))
        end = float("inf") if role.join_pos < 0 else role.join_pos
        return (role.spawn_pos, end)

    def mhp_threads(self, tid_a: int, tid_b: int) -> bool:
        """May threads a and b overlap at all?  (Spawn/join edges only —
        condvars, semaphores and barriers are deliberately ignored, so
        this over-approximates the dynamic happens-before relation.)"""
        if tid_a == tid_b:
            return False
        start_a, end_a = self._interval(tid_a)
        start_b, end_b = self._interval(tid_b)
        return start_a < end_b and start_b < end_a

    def mhp_sites(self, a: AccessSite, b: AccessSite, tid_a: int, tid_b: int) -> bool:
        """May these two accesses interleave?

        For a role-vs-role pair this is thread-level MHP; when one side
        is main, the main access's own position is checked against the
        role's alive interval (main's accesses before a spawn or after a
        join cannot race with that thread).
        """
        if not self.mhp_threads(tid_a, tid_b):
            return False
        if tid_a == 0:
            start, end = self._interval(tid_b)
            if not (start < a.pos < end):
                return False
        if tid_b == 0:
            start, end = self._interval(tid_a)
            if not (start < b.pos < end):
                return False
        return True

    # -- lock reasoning --------------------------------------------------

    @staticmethod
    def _excluded(a: StaticAccess, b: StaticAccess) -> bool:
        """Whether a common (concrete, not-both-shared) lock serializes
        the two accesses.  Pattern names (``*``) never count: a pattern
        stands for *some* lock, not provably the same one."""
        held_a = {
            (name, mode) for name, mode in a.lockset if "*" not in name
        }
        for name, mode in b.lockset:
            if "*" in name:
                continue
            for other_name, other_mode in held_a:
                if other_name != name:
                    continue
                if mode == LOCK_SHARED and other_mode == LOCK_SHARED:
                    continue
                return True
        return False

    @staticmethod
    def _addr_conflict(a: StaticAccess, b: StaticAccess) -> Optional[bool]:
        """True/False when both concrete addresses are known, else None."""
        if a.addr is None or b.addr is None:
            return None
        return a.addr == b.addr

    def _phase_factor(self, a: StaticAccess, b: StaticAccess) -> float:
        return 1.0 if a.phase == b.phase else CROSS_PHASE_FACTOR

    # -- access map ------------------------------------------------------

    def _by_region(self) -> Dict[Address, Dict[int, List[AccessSite]]]:
        table: Dict[Address, Dict[int, List[AccessSite]]] = {}
        for tid in self.tids:
            for site in self.walks[tid].sites:
                table.setdefault(site.access.region, {}).setdefault(
                    tid, []
                ).append(site)
        return table

    def regions(self) -> Tuple[Address, ...]:
        return tuple(sorted(self._by_region(), key=region_sort_key))

    def initial_regions(self) -> Set[Address]:
        return {
            region_key(addr)
            for addr in self.ex.program.initial_memory
        }

    # -- races -----------------------------------------------------------

    def find_races(self) -> List[StaticRace]:
        """Exhaustive at (region, tid pair, signature pair) granularity:
        the dynamic sanitizer's predictions must embed into this list."""
        races: List[StaticRace] = []
        initial = self.initial_regions()
        by_region = self._by_region()
        for region in sorted(by_region, key=region_sort_key):
            if region == UNKNOWN_REGION:
                continue
            per_tid = by_region[region]
            tids = sorted(per_tid)
            for index_a, tid_a in enumerate(tids):
                for tid_b in tids[index_a + 1:]:
                    races.extend(
                        self._race_pairs(
                            region, tid_a, per_tid[tid_a],
                            tid_b, per_tid[tid_b], initial,
                        )
                    )
        return races

    def _race_pairs(
        self,
        region: Address,
        tid_a: int,
        sites_a: List[AccessSite],
        tid_b: int,
        sites_b: List[AccessSite],
        initial: Set[Address],
    ) -> List[StaticRace]:
        races: List[StaticRace] = []
        seen: Set[Tuple] = set()
        for site_a in sites_a:
            for site_b in sites_b:
                a, b = site_a.access, site_b.access
                if (
                    a.kind not in _WRITE_KINDS
                    and b.kind not in _WRITE_KINDS
                ):
                    continue
                if not self.mhp_sites(site_a, site_b, tid_a, tid_b):
                    continue
                if self._excluded(a, b):
                    continue
                if self._addr_conflict(a, b) is False:
                    continue
                signature = (
                    a.kind, a.lockset, a.func, a.line,
                    b.kind, b.lockset, b.func, b.line,
                )
                if signature in seen:
                    continue
                seen.add(signature)
                if a.kind is OpKind.FREE or b.kind is OpKind.FREE:
                    kind = "use-after-free"
                elif region not in initial:
                    kind = "use-before-init"
                else:
                    kind = "race"
                exact = self._addr_conflict(a, b) is True
                base = _BASE_SCORE[
                    kind if kind != "race"
                    else ("race-exact" if exact else "race")
                ]
                score = round(base * self._phase_factor(a, b), 4)
                races.append(
                    StaticRace(
                        region=region, first=a, second=b,
                        score=score, kind=kind,
                    )
                )
        return races

    def race_findings(self, races: Sequence[StaticRace]) -> List[_Finding]:
        findings: List[_Finding] = []
        for race in races:
            a, b = race.first, race.second
            if not (a.reliable and b.reliable):
                continue
            if race.kind == "use-after-free":
                free, victim = (a, b) if a.kind is OpKind.FREE else (b, a)
                if victim.kind is OpKind.FREE:
                    continue  # double free: ordering cannot crash it
                findings.append(
                    _Finding(
                        constraints=frozenset(
                            {OrderConstraint(free.ref(), victim.ref())}
                        ),
                        source="use-after-free",
                        score=race.score,
                        regions=(race.region,),
                        note=f"free in T{free.tid} before use in T{victim.tid}",
                    )
                )
                continue
            if race.kind == "use-before-init":
                if a.kind in _WRITE_KINDS and b.kind is OpKind.READ:
                    writer, reader = a, b
                elif b.kind in _WRITE_KINDS and a.kind is OpKind.READ:
                    writer, reader = b, a
                else:
                    continue
                findings.append(
                    _Finding(
                        constraints=frozenset(
                            {OrderConstraint(reader.ref(), writer.ref())}
                        ),
                        source="use-before-init",
                        score=race.score,
                        regions=(race.region,),
                        note=(
                            f"T{reader.tid} reads {race.region!r} before "
                            f"T{writer.tid} initializes it"
                        ),
                    )
                )
                continue
            for before, after in ((a, b), (b, a)):
                findings.append(
                    _Finding(
                        constraints=frozenset(
                            {OrderConstraint(before.ref(), after.ref())}
                        ),
                        source="race",
                        score=race.score,
                        regions=(race.region,),
                        note=f"order T{before.tid} before T{after.tid}",
                    )
                )
        return findings

    # -- atomicity windows -----------------------------------------------

    def find_atomicity(self) -> List[StaticAtomicity]:
        violations: List[StaticAtomicity] = []
        for tid in self.tids:
            for window in self._windows(self.walks[tid]):
                for other in self.tids:
                    if other == tid:
                        continue
                    violations.extend(
                        self._interfere(tid, window, other)
                    )
        return violations

    def _windows(self, walk: ThreadWalk) -> List[Tuple[AccessSite, AccessSite]]:
        """Read..use pairs close together in one thread, same function."""
        windows: List[Tuple[AccessSite, AccessSite]] = []
        sites = walk.sites
        for index, first in enumerate(sites):
            a1 = first.access
            if a1.kind not in _READ_KINDS or not a1.reliable:
                continue
            if a1.region == UNKNOWN_REGION:
                continue
            for second in sites[index + 1:]:
                a2 = second.access
                if second.pos - first.pos > WINDOW_SPAN:
                    break
                if not a2.reliable or a2.region == UNKNOWN_REGION:
                    continue
                if a2.func != a1.func:
                    continue
                windows.append((first, second))
        return windows

    def _interfere(
        self,
        tid: int,
        window: Tuple[AccessSite, AccessSite],
        other: int,
    ) -> List[StaticAtomicity]:
        first, second = window
        a1, a2 = first.access, second.access
        results: List[StaticAtomicity] = []
        writes = [
            site for site in self.walks[other].sites
            if site.access.kind in _WRITE_KINDS and site.access.reliable
        ]
        for index_1, w_site_1 in enumerate(writes):
            w1 = w_site_1.access
            if w1.region != a1.region:
                continue
            if self._addr_conflict(a1, w1) is False:
                continue
            if self._excluded(a1, w1):
                continue
            if not self.mhp_sites(first, w_site_1, tid, other):
                continue
            for w_site_2 in writes[index_1:]:
                w2 = w_site_2.access
                if w_site_2.pos - w_site_1.pos > WINDOW_SPAN:
                    break
                if w2.region != a2.region:
                    continue
                if self._addr_conflict(a2, w2) is False:
                    continue
                if self._excluded(a2, w2):
                    continue
                if w2.func != w1.func:
                    continue
                pattern = (
                    "single-variable" if a1.region == a2.region
                    else "multi-variable"
                )
                tight = 1.0 if second.pos - first.pos <= 4 else 0.9
                exact = (
                    1.1 if self._addr_conflict(a1, w1) is True else 1.0
                )
                score = round(
                    min(
                        0.99,
                        _BASE_SCORE["atomicity"]
                        * self._phase_factor(a1, w1)
                        * tight * exact,
                    ),
                    4,
                )
                results.append(
                    StaticAtomicity(
                        window_first=a1,
                        window_second=a2,
                        writer_first=w1,
                        writer_second=w2,
                        score=score,
                        pattern=pattern,
                    )
                )
        return results

    def atomicity_findings(
        self, violations: Sequence[StaticAtomicity]
    ) -> List[_Finding]:
        findings: List[_Finding] = []
        for violation in violations:
            a1 = violation.window_first
            a2 = violation.window_second
            w1 = violation.writer_first
            w2 = violation.writer_second
            regions = tuple(
                sorted({a1.region, a2.region}, key=region_sort_key)
            )
            # D1: the writer lands inside the window
            findings.append(
                _Finding(
                    constraints=frozenset(
                        {
                            OrderConstraint(a1.ref(), w1.ref()),
                            OrderConstraint(w2.ref(), a2.ref()),
                        }
                    ),
                    source="atomicity",
                    score=violation.score,
                    regions=regions,
                    note=(
                        f"T{w1.tid} writes between T{a1.tid}'s "
                        f"{violation.pattern} window"
                    ),
                )
            )
            # D2: the window lands inside the writer's section (skip when
            # the writer is a single access: that set contradicts itself)
            if w1.ref() != w2.ref():
                findings.append(
                    _Finding(
                        constraints=frozenset(
                            {
                                OrderConstraint(w1.ref(), a1.ref()),
                                OrderConstraint(a2.ref(), w2.ref()),
                            }
                        ),
                        source="atomicity",
                        score=round(violation.score * 0.95, 4),
                        regions=regions,
                        note=(
                            f"T{a1.tid}'s window lands inside T{w1.tid}'s "
                            f"write section"
                        ),
                    )
                )
        return findings

    # -- deadlocks -------------------------------------------------------

    def lock_edges(self) -> List[LockEdge]:
        edges: List[LockEdge] = []
        seen: Set[Tuple[int, str, str]] = set()
        for tid in self.tids:
            for rec in self.walks[tid].acquires:
                for held_text, _mode in rec.held:
                    key = (tid, held_text, rec.name.text)
                    if key in seen:
                        continue
                    seen.add(key)
                    edges.append(
                        LockEdge(
                            tid=tid,
                            holder=held_text,
                            acquired=rec.name.text,
                            holder_occ=0,
                            acquired_occ=rec.occurrence,
                            phase=rec.phase,
                            func=rec.func,
                            line=rec.line,
                        )
                    )
        return edges

    def find_deadlocks(self) -> List[StaticDeadlock]:
        """Cross-thread 2-cycles in the static lock graph, pattern-aware."""
        deadlocks: List[StaticDeadlock] = []
        seen: Set[Tuple] = set()
        edge_recs = self._acquire_edges()
        for tid_a, hold_a, rec_a in edge_recs:
            for tid_b, hold_b, rec_b in edge_recs:
                if tid_b <= tid_a or not self.mhp_threads(tid_a, tid_b):
                    continue
                # a holds A wants B; b holds B wants A
                if not (
                    self._lock_match(rec_a.name, hold_b.name)
                    and self._lock_match(rec_b.name, hold_a.name)
                ):
                    continue
                trigger = self._deadlock_trigger(
                    tid_a, hold_a, rec_a, tid_b, hold_b, rec_b
                )
                if trigger is None:
                    continue
                cycle = tuple(
                    sorted({hold_a.name.text, hold_b.name.text})
                )
                key = (tid_a, tid_b, cycle, ordered_constraints(trigger))
                if key in seen:
                    continue
                seen.add(key)
                deadlocks.append(
                    StaticDeadlock(
                        cycle=cycle,
                        tids=(tid_a, tid_b),
                        trigger=trigger,
                        score=_BASE_SCORE["deadlock"],
                    )
                )
        return deadlocks

    def _acquire_edges(self) -> List[Tuple[int, AcquireRec, AcquireRec]]:
        """(tid, holder acquisition, nested acquisition) triples."""
        triples: List[Tuple[int, AcquireRec, AcquireRec]] = []
        for tid in self.tids:
            recs = self.walks[tid].acquires
            for rec in recs:
                for held_name in rec.held_names:
                    holder = self._holder_rec(recs, rec, held_name)
                    if holder is not None:
                        triples.append((tid, holder, rec))
        return triples

    @staticmethod
    def _holder_rec(
        recs: Sequence[AcquireRec], nested: AcquireRec, held: LockName
    ) -> Optional[AcquireRec]:
        """The latest acquisition of ``held`` before ``nested``."""
        best: Optional[AcquireRec] = None
        for rec in recs:
            if rec.pos >= nested.pos:
                break
            if rec.name.text == held.text:
                best = rec
        return best

    @staticmethod
    def _lock_match(a: LockName, b: LockName) -> bool:
        if not a.is_pattern and not b.is_pattern:
            return a.text == b.text
        if a.is_pattern and not b.is_pattern:
            return a.matches(b.text)
        if b.is_pattern and not a.is_pattern:
            return b.matches(a.text)
        return False  # two patterns: no concrete witness

    def _deadlock_trigger(
        self,
        tid_a: int,
        hold_a: AcquireRec,
        rec_a: AcquireRec,
        tid_b: int,
        hold_b: AcquireRec,
        rec_b: AcquireRec,
    ) -> Optional[ConstraintSet]:
        """Order both threads into the held-and-wanting configuration.

        Thread a holds A and wants B; thread b holds B and wants A.
        Steer: b takes B before a asks for B, and a takes A before b
        asks for A.  Pattern-named refs borrow the concrete name from
        the matching side (first acquisition of that name: occurrence 1).
        """
        constraints: Set[OrderConstraint] = set()
        for holder_tid, holder, waiter_tid, waiter in (
            (tid_b, hold_b, tid_a, rec_a),  # B's owner before a's want
            (tid_a, hold_a, tid_b, rec_b),  # A's owner before b's want
        ):
            if holder.name.is_pattern or holder.occurrence <= 0:
                return None  # the held side must be a nameable event
            name = holder.name.text
            waiter_occ = (
                1 if waiter.name.is_pattern else waiter.occurrence
            )
            if waiter_occ <= 0:
                return None
            constraints.add(
                OrderConstraint(
                    EventRef(holder_tid, "lock", name, holder.occurrence),
                    EventRef(waiter_tid, "lock", name, waiter_occ),
                )
            )
        return frozenset(constraints)

    def deadlock_findings(
        self, deadlocks: Sequence[StaticDeadlock]
    ) -> List[_Finding]:
        return [
            _Finding(
                constraints=deadlock.trigger,
                source="deadlock",
                score=deadlock.score,
                regions=(),
                note=f"lock cycle {'/'.join(deadlock.cycle)}",
            )
            for deadlock in deadlocks
        ]

    # -- failure-artifact filtering --------------------------------------

    def relevant_regions(self) -> Optional[FrozenSet[Address]]:
        """Regions implicated by the failure hint, or None for no filter.

        SysPro-style: match the hint against ``ctx.check`` messages, take
        the regions those assertions read (transitively: a write to a
        relevant region pulls in the regions read by the same function of
        the same thread), and keep only candidates touching them.
        """
        if not self.failure:
            return None
        hint = self.failure.lower()
        matched: Set[Address] = set()
        hit = False
        for tid in self.tids:
            for check in self.walks[tid].checks:
                msg = check.msg.lower()
                if hint in msg or msg in hint:
                    hit = True
                    matched |= check.regions
        if not hit:
            self.notes.append(
                f"failure hint {self.failure!r} matched no assertion; "
                "candidates unfiltered"
            )
            return None
        # fixpoint closure over def-use at (thread, function) granularity
        while True:
            added = False
            for tid in self.tids:
                funcs: Set[str] = set()
                for site in self.walks[tid].sites:
                    if (
                        site.access.kind in _WRITE_KINDS
                        and site.access.region in matched
                    ):
                        funcs.add(site.access.func)
                for site in self.walks[tid].sites:
                    if (
                        site.access.func in funcs
                        and site.access.kind in _READ_KINDS
                        and site.access.region not in matched
                    ):
                        matched.add(site.access.region)
                        added = True
            if not added:
                break
        return frozenset(matched)

    # -- assembly --------------------------------------------------------

    def rank(
        self, findings: Sequence[_Finding], max_candidates: int
    ) -> Tuple[List[StaticCandidate], bool]:
        relevant = self.relevant_regions()
        kept: List[_Finding] = []
        for finding in findings:
            if not finding.constraints:
                continue
            if relevant is not None and finding.regions and not (
                set(finding.regions) & relevant
            ):
                continue
            kept.append(finding)
        best: Dict[ConstraintSet, _Finding] = {}
        for finding in kept:
            current = best.get(finding.constraints)
            if current is None or finding.score > current.score:
                best[finding.constraints] = finding
        ranked = sorted(
            best.values(),
            key=lambda f: (
                -f.score,
                f.source,
                tuple(
                    constraint_sort_key(c)
                    for c in ordered_constraints(f.constraints)
                ),
            ),
        )
        truncated = len(ranked) > max_candidates
        return (
            [
                StaticCandidate(
                    constraints=finding.constraints,
                    source=finding.source,
                    score=finding.score,
                    regions=finding.regions,
                    note=finding.note,
                )
                for finding in ranked[:max_candidates]
            ],
            truncated,
        )


def analyze_extraction(
    extraction: Extraction,
    failure: Optional[str] = None,
    max_candidates: int = MAX_STATIC_CANDIDATES,
    max_findings: int = MAX_STORED_FINDINGS,
) -> StaticPlan:
    """Run the full static analysis over an extraction.

    ``max_findings`` caps the races/atomicity windows *stored* on the
    plan (candidate ranking always sees everything); raise it when a
    consumer needs the exhaustive over-approximation, e.g. the suite's
    dynamic-containment check.
    """
    analysis = _Analysis(extraction, failure)
    races = analysis.find_races()
    violations = analysis.find_atomicity()
    deadlocks = analysis.find_deadlocks()
    findings = (
        analysis.race_findings(races)
        + analysis.atomicity_findings(violations)
        + analysis.deadlock_findings(deadlocks)
    )
    candidates, truncated = analysis.rank(findings, max_candidates)
    if truncated:
        analysis.notes.append(
            f"candidate list capped at {max_candidates}"
        )
    stored_races = _top_findings(races, max_findings)
    stored_violations = _top_findings(violations, max_findings)
    if len(stored_races) < len(races):
        analysis.notes.append(
            f"storing top {len(stored_races)} of {len(races)} races"
        )
    if len(stored_violations) < len(violations):
        analysis.notes.append(
            f"storing top {len(stored_violations)} of "
            f"{len(violations)} atomicity windows"
        )
    program = extraction.program
    main_role = ThreadRole(
        tid=0,
        name=getattr(program.main, "__name__", "main"),
        args=(),
        spawn_pos=0,
        join_pos=-1,
    )
    return StaticPlan(
        program=program.name,
        params=tuple(sorted(program.params.items())),
        threads=(main_role,) + tuple(extraction.roles),
        regions=analysis.regions(),
        lock_edges=tuple(analysis.lock_edges()),
        races=tuple(stored_races),
        violations=tuple(stored_violations),
        deadlocks=tuple(deadlocks),
        candidates=tuple(candidates),
        failure=analysis.failure,
        complete=extraction.complete,
        notes=tuple(analysis.notes),
    )


def _top_findings(findings: Sequence, limit: int = MAX_STORED_FINDINGS) -> List:
    """Highest-scoring findings in stable (deterministic) order."""
    indexed = sorted(
        range(len(findings)), key=lambda i: (-findings[i].score, i)
    )
    return [findings[i] for i in indexed[:limit]]


def analyze_program(
    program: Program,
    failure: Optional[str] = None,
    max_candidates: int = MAX_STATIC_CANDIDATES,
    max_findings: int = MAX_STORED_FINDINGS,
) -> StaticPlan:
    """Extract and analyze a program in one step (the CLI entry point)."""
    return analyze_extraction(
        extract_program(program),
        failure=failure,
        max_candidates=max_candidates,
        max_findings=max_findings,
    )
