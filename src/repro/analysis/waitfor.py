"""Wait-for graphs.

A thin, testable wrapper over the "who is waiting on whom" relation the
machine builds when it gets stuck.  Nodes are thread ids; an edge t -> u
means t cannot proceed until u acts (u owns the mutex t wants, or t is
joining u).  A cycle is a deadlock; stuck threads off any cycle are hangs
(typically lost wakeups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class WaitForGraph:
    """A functional wait-for graph (each thread waits on at most one)."""

    edges: Dict[int, int] = field(default_factory=dict)
    labels: Dict[int, str] = field(default_factory=dict)

    def add_wait(self, waiter: int, holder: int, resource: str = "") -> None:
        self.edges[waiter] = holder
        if resource:
            self.labels[waiter] = resource

    def find_cycle(self) -> List[int]:
        """Thread ids on some cycle, in cycle order; empty if acyclic."""
        for start in self.edges:
            path: List[int] = []
            node: Optional[int] = start
            while node is not None and node in self.edges and node not in path:
                path.append(node)
                node = self.edges[node]
            if node in path:
                return path[path.index(node):]
        return []

    def cycle_resources(self) -> List[str]:
        """Resources held along the deadlock cycle, sorted."""
        cycle = self.find_cycle()
        return sorted(self.labels[tid] for tid in cycle if tid in self.labels)

    def describe(self) -> str:
        cycle = self.find_cycle()
        if not cycle:
            return f"no deadlock ({len(self.edges)} waiting threads)"
        hops = " -> ".join(
            f"T{tid}[{self.labels.get(tid, '?')}]" for tid in cycle
        )
        return f"deadlock: {hops} -> T{cycle[0]}"

    def waiting_pairs(self) -> List[Tuple[int, int]]:
        return sorted(self.edges.items())
