"""ASCII timelines of executions.

Renders a trace as one column per thread and one row per step — the view
a developer actually wants when staring at a reproduced interleaving.
Long traces are windowed (e.g. around the failure); uninteresting kinds
can be filtered.

::

    step  T0            T1                T2
    ----  ------------  ----------------  ----------------
      12                read('buf_len')
      13                                  read('buf_len')
      14                wr('buf_len')
      15                                  wr('buf_len')     <- lost update
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sim.events import Event
from repro.sim.ops import OpKind
from repro.sim.trace import Trace

#: kinds hidden by default: pure bookkeeping that drowns the signal
_DEFAULT_HIDDEN = frozenset(
    {OpKind.LOCAL, OpKind.YIELD, OpKind.BASIC_BLOCK, OpKind.FUNC_ENTER,
     OpKind.FUNC_EXIT}
)

_ABBREV = {
    OpKind.READ: "rd",
    OpKind.WRITE: "wr",
    OpKind.RMW: "rmw",
    OpKind.CAS: "cas",
    OpKind.FREE: "free",
    OpKind.LOCK: "lock",
    OpKind.TRYLOCK: "try",
    OpKind.UNLOCK: "unlk",
    OpKind.RDLOCK: "rdlk",
    OpKind.WRLOCK: "wrlk",
    OpKind.RWUNLOCK: "rwun",
    OpKind.SEM_ACQUIRE: "semP",
    OpKind.SEM_RELEASE: "semV",
    OpKind.BARRIER_WAIT: "barr",
    OpKind.COND_WAIT: "wait",
    OpKind.COND_SIGNAL: "sig",
    OpKind.COND_BROADCAST: "bcast",
    OpKind.SPAWN: "spawn",
    OpKind.JOIN: "join",
    OpKind.SYSCALL: "sys",
    OpKind.ASSERT: "assert",
}


def _cell(event: Event) -> str:
    tag = _ABBREV.get(event.kind, event.kind.value)
    if event.addr is not None:
        return f"{tag}({event.addr!r})"
    if event.obj is not None:
        return f"{tag}({event.obj!r})"
    if event.name is not None:
        return f"{tag}:{event.name}"
    return tag


def render_timeline(
    trace: Trace,
    start: int = 0,
    end: Optional[int] = None,
    hide: Iterable[OpKind] = _DEFAULT_HIDDEN,
    mark: Optional[int] = None,
    max_cell_width: int = 24,
) -> str:
    """Render events ``[start, end)`` as a per-thread timeline.

    :param mark: a global index to flag with ``<-`` (e.g. the failure).
    """
    hidden = frozenset(hide)
    events = [
        e
        for e in trace.events[start:end]
        if e.kind not in hidden or e.gidx == mark
    ]
    tids = sorted({e.tid for e in events})
    if not tids:
        return "(no events in window)"

    cells = {}
    for event in events:
        text = _cell(event)
        if len(text) > max_cell_width:
            text = text[: max_cell_width - 1] + "~"
        cells[event.gidx] = (event.tid, text)

    labels = {tid: trace.thread_label(tid) for tid in tids}
    widths = {
        tid: max(
            [len(labels[tid])]
            + [len(text) for gidx, (t, text) in cells.items() if t == tid]
        )
        for tid in tids
    }

    header = ["step".rjust(5)] + [labels[tid].ljust(widths[tid]) for tid in tids]
    divider = ["-" * 5] + ["-" * widths[tid] for tid in tids]
    lines = ["  ".join(header), "  ".join(divider)]
    for event in events:
        tid, text = cells[event.gidx]
        row = [str(event.gidx).rjust(5)]
        for col in tids:
            row.append((text if col == tid else "").ljust(widths[col]))
        line = "  ".join(row).rstrip()
        if mark is not None and event.gidx == mark:
            line += "   <- here"
        lines.append(line)
    return "\n".join(lines)


def failure_window(trace: Trace, context: int = 12) -> str:
    """Timeline of the last ``context`` interesting steps before the failure."""
    if trace.failure is None or trace.failure.gidx is None:
        return render_timeline(trace, max(0, len(trace.events) - context))
    anchor = trace.failure.gidx
    return render_timeline(
        trace,
        start=max(0, anchor - context),
        end=min(len(trace.events), anchor + 3),
        mark=anchor,
    )
