"""Vector clocks over dynamically created threads.

A :class:`VectorClock` maps thread ids to logical timestamps; missing
entries are zero, so clocks over a growing thread population compose
without pre-declaring the population.  Instances are immutable — every
operation returns a new clock — which keeps sharing safe when the same
clock is stored on many events.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple


class VectorClock:
    """An immutable vector clock."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Mapping[int, int] | None = None) -> None:
        self._clocks: Dict[int, int] = {
            tid: ts for tid, ts in (clocks or {}).items() if ts > 0
        }

    def get(self, tid: int) -> int:
        return self._clocks.get(tid, 0)

    def tick(self, tid: int) -> "VectorClock":
        """Advance one component (a thread performing a step)."""
        clocks = dict(self._clocks)
        clocks[tid] = clocks.get(tid, 0) + 1
        return VectorClock(clocks)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum — acquiring another clock's knowledge."""
        clocks = dict(self._clocks)
        for tid, ts in other._clocks.items():
            if ts > clocks.get(tid, 0):
                clocks[tid] = ts
        return VectorClock(clocks)

    def happens_before(self, other: "VectorClock") -> bool:
        """Strict: self <= other pointwise, and self != other."""
        return self.leq(other) and self._clocks != other._clocks

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise less-or-equal."""
        return all(ts <= other.get(tid) for tid, ts in self._clocks.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock precedes the other."""
        return not self.leq(other) and not other.leq(self)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._clocks.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._clocks == other._clocks

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._clocks.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"T{tid}:{ts}" for tid, ts in sorted(self._clocks.items()))
        return f"VC({inner})"

    @staticmethod
    def zero() -> "VectorClock":
        return _ZERO


_ZERO = VectorClock()
