"""Log triage: validate and salvage on-disk recording artifacts.

``pres doctor <log>`` is the operator-facing entry point: point it at any
file the toolchain writes — a sketch or trace journal, a classic
JSON-lines trace, a sketch-log JSON blob, a complete log — and it tells
you whether the file is **ok** (usable as-is), **salvageable** (a valid
prefix can be recovered and written out), or **unrecoverable** (nothing
trustworthy inside).  The verdicts map to exit codes 0/1/2 so scripts
and CI can gate on log health.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.robust import journal as journal_mod
from repro.robust.journal import MAGIC, SalvageReport, salvage
from repro.errors import SketchFormatError

#: Verdicts, in order of decreasing health.
OK = "ok"
SALVAGEABLE = "salvageable"
UNRECOVERABLE = "unrecoverable"

_EXIT_CODES = {OK: 0, SALVAGEABLE: 1, UNRECOVERABLE: 2}


@dataclass
class LogDiagnosis:
    """The doctor's verdict on one file."""

    path: str
    format: str  # "sketch-journal" | "trace-journal" | "trace-jsonl" |
    #              "sketch-json" | "complete-log" | "unknown"
    status: str  # OK | SALVAGEABLE | UNRECOVERABLE
    detail: str = ""
    valid_records: int = 0
    dropped: int = 0
    salvage: Optional[SalvageReport] = None
    #: for non-journal formats: the salvageable text prefix, ready to write.
    salvaged_text: Optional[str] = None

    @property
    def exit_code(self) -> int:
        return _EXIT_CODES[self.status]

    def describe(self) -> str:
        lines = [f"{self.path}: {self.format}, {self.status}"]
        if self.detail:
            lines.append(f"  {self.detail}")
        lines.append(
            f"  {self.valid_records} valid record(s), {self.dropped} dropped"
        )
        return "\n".join(lines)


def _diagnose_journal(path: str) -> LogDiagnosis:
    report = salvage(path)
    fmt = f"{report.kind}-journal" if report.kind else "unknown"
    if report.unrecoverable:
        return LogDiagnosis(
            path=path,
            format=fmt,
            status=UNRECOVERABLE,
            detail=report.reason,
            dropped=report.total_lines,
            salvage=report,
        )
    status = OK if report.intact else SALVAGEABLE
    return LogDiagnosis(
        path=path,
        format=fmt,
        status=status,
        detail="" if report.intact else report.reason,
        valid_records=len(report.records),
        dropped=report.dropped_lines,
        salvage=report,
    )


def _diagnose_trace_jsonl(path: str, first_line: str) -> LogDiagnosis:
    from repro.sim.persist import event_from_row

    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines()
    valid = [first_line]
    bad_at: Optional[str] = None
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            event_from_row(json.loads(line))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            bad_at = f"event at line {number} is corrupt: {exc}"
            break
        valid.append(line)
    n_events = len(valid) - 1
    if bad_at is None:
        return LogDiagnosis(
            path=path, format="trace-jsonl", status=OK, valid_records=n_events
        )
    return LogDiagnosis(
        path=path,
        format="trace-jsonl",
        status=SALVAGEABLE,
        detail=bad_at,
        valid_records=n_events,
        dropped=len([l for l in lines if l.strip()]) - len(valid),
        salvaged_text="\n".join(valid) + "\n",
    )


def _diagnose_json_blob(path: str, text: str) -> LogDiagnosis:
    """Single-blob JSON artifacts: valid or nothing — no prefix to save."""
    from repro.core.full_replay import CompleteLog
    from repro.core.sketchlog import SketchLog

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return LogDiagnosis(
            path=path,
            format="unknown",
            status=UNRECOVERABLE,
            detail=f"not valid JSON: {exc}",
        )
    if isinstance(payload, dict) and "entries" in payload and "sketch" in payload:
        try:
            log = SketchLog.from_json(text)
        except SketchFormatError as exc:
            return LogDiagnosis(
                path=path, format="sketch-json", status=UNRECOVERABLE,
                detail=str(exc),
            )
        return LogDiagnosis(
            path=path, format="sketch-json", status=OK,
            valid_records=len(log),
        )
    if isinstance(payload, dict) and "schedule" in payload and "program" in payload:
        try:
            log = CompleteLog.from_json(text)
        except SketchFormatError as exc:
            return LogDiagnosis(
                path=path, format="complete-log", status=UNRECOVERABLE,
                detail=str(exc),
            )
        return LogDiagnosis(
            path=path, format="complete-log", status=OK,
            valid_records=len(log.schedule),
        )
    return LogDiagnosis(
        path=path, format="unknown", status=UNRECOVERABLE,
        detail="valid JSON but not a recognized PRES artifact",
    )


def diagnosis_metrics(diagnosis: LogDiagnosis, registry) -> None:
    """Fold one diagnosis into a metrics registry.

    ``registry`` is anything with the
    :class:`~repro.obs.metrics.MetricsRegistry` counter/gauge surface
    (duck-typed, matching the convention of
    :meth:`~repro.sim.stats.TraceStats.to_metrics`).  ``pres doctor
    --metrics-out`` uses this so fleet-wide log-health dashboards can
    aggregate doctor verdicts without parsing the prose report.
    """
    registry.counter("doctor_examined").inc()
    registry.counter(f"doctor_{diagnosis.status}").inc()
    registry.counter("doctor_valid_records").inc(diagnosis.valid_records)
    registry.counter("doctor_dropped_records").inc(diagnosis.dropped)


def examine(path: str) -> LogDiagnosis:
    """Sniff the file format and produce a verdict (never raises on
    corrupt content; missing files still raise ``OSError``)."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        first_line = handle.readline().rstrip("\n")
    if first_line.startswith(MAGIC.rstrip("0123456789")):
        return _diagnose_journal(path)
    stripped = first_line.lstrip()
    if stripped.startswith("{"):
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            header = None
        if isinstance(header, dict) and header.get("format") == "pres-trace":
            return _diagnose_trace_jsonl(path, first_line)
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return _diagnose_json_blob(path, handle.read())
    return LogDiagnosis(
        path=path,
        format="unknown",
        status=UNRECOVERABLE,
        detail="unrecognized file format",
    )


def write_salvaged(diagnosis: LogDiagnosis, out_path: str) -> str:
    """Write the recovered prefix of a salvageable file; returns the path."""
    if diagnosis.status != SALVAGEABLE:
        raise SketchFormatError(
            f"{diagnosis.path} is {diagnosis.status}; nothing to salvage"
        )
    if diagnosis.salvaged_text is not None:
        from repro.robust.atomic import atomic_write_text

        return atomic_write_text(out_path, diagnosis.salvaged_text)
    report = diagnosis.salvage
    if report is None:
        raise SketchFormatError(f"{diagnosis.path} has no salvageable content")
    writer = journal_mod.JournalWriter(out_path, report.kind, report.meta)
    try:
        for record in report.records:
            writer.append(record)
        writer.commit(
            {
                "salvaged_from": diagnosis.path,
                "complete": False,
                "dropped_lines": report.dropped_lines,
                "reason": report.reason,
            }
        )
    finally:
        writer.close()
    return out_path
