"""Log triage: validate and salvage on-disk recording artifacts.

``pres doctor <log>`` is the operator-facing entry point: point it at any
file the toolchain writes — a sketch or trace journal, a classic
JSON-lines trace, a sketch-log JSON blob, a complete log — and it tells
you whether the file is **ok** (usable as-is), **salvageable** (a valid
prefix can be recovered and written out), or **unrecoverable** (nothing
trustworthy inside).  The verdicts map to exit codes 0/1/2 so scripts
and CI can gate on log health.

Pointing the doctor at a *directory* triages it as an attempt store
(:func:`examine_store`): every shard is verified read-only, quarantine
sidecars are listed, and stale temp files left behind by a killed run
(``*.gc``, ``*.rebuild``, ``*.tmp.*``) are detected — and removed with
``pres doctor --clean``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.robust import journal as journal_mod
from repro.robust.journal import MAGIC, SalvageReport, salvage
from repro.errors import SketchFormatError

#: Verdicts, in order of decreasing health.
OK = "ok"
SALVAGEABLE = "salvageable"
UNRECOVERABLE = "unrecoverable"

_EXIT_CODES = {OK: 0, SALVAGEABLE: 1, UNRECOVERABLE: 2}


@dataclass
class LogDiagnosis:
    """The doctor's verdict on one file."""

    path: str
    format: str  # "sketch-journal" | "trace-journal" | "trace-jsonl" |
    #              "sketch-json" | "complete-log" | "unknown"
    status: str  # OK | SALVAGEABLE | UNRECOVERABLE
    detail: str = ""
    valid_records: int = 0
    dropped: int = 0
    salvage: Optional[SalvageReport] = None
    #: for non-journal formats: the salvageable text prefix, ready to write.
    salvaged_text: Optional[str] = None

    @property
    def exit_code(self) -> int:
        return _EXIT_CODES[self.status]

    def describe(self) -> str:
        lines = [f"{self.path}: {self.format}, {self.status}"]
        if self.detail:
            lines.append(f"  {self.detail}")
        lines.append(
            f"  {self.valid_records} valid record(s), {self.dropped} dropped"
        )
        return "\n".join(lines)


def _diagnose_journal(path: str) -> LogDiagnosis:
    report = salvage(path)
    fmt = f"{report.kind}-journal" if report.kind else "unknown"
    if report.unrecoverable:
        return LogDiagnosis(
            path=path,
            format=fmt,
            status=UNRECOVERABLE,
            detail=report.reason,
            dropped=report.total_lines,
            salvage=report,
        )
    status = OK if report.intact else SALVAGEABLE
    return LogDiagnosis(
        path=path,
        format=fmt,
        status=status,
        detail="" if report.intact else report.reason,
        valid_records=len(report.records),
        dropped=report.dropped_lines,
        salvage=report,
    )


def _diagnose_trace_jsonl(path: str, first_line: str) -> LogDiagnosis:
    from repro.sim.persist import event_from_row

    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines()
    valid = [first_line]
    bad_at: Optional[str] = None
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            event_from_row(json.loads(line))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            bad_at = f"event at line {number} is corrupt: {exc}"
            break
        valid.append(line)
    n_events = len(valid) - 1
    if bad_at is None:
        return LogDiagnosis(
            path=path, format="trace-jsonl", status=OK, valid_records=n_events
        )
    return LogDiagnosis(
        path=path,
        format="trace-jsonl",
        status=SALVAGEABLE,
        detail=bad_at,
        valid_records=n_events,
        dropped=len([l for l in lines if l.strip()]) - len(valid),
        salvaged_text="\n".join(valid) + "\n",
    )


def _diagnose_json_blob(path: str, text: str) -> LogDiagnosis:
    """Single-blob JSON artifacts: valid or nothing — no prefix to save."""
    from repro.core.full_replay import CompleteLog
    from repro.core.sketchlog import SketchLog

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return LogDiagnosis(
            path=path,
            format="unknown",
            status=UNRECOVERABLE,
            detail=f"not valid JSON: {exc}",
        )
    if isinstance(payload, dict) and "entries" in payload and "sketch" in payload:
        try:
            log = SketchLog.from_json(text)
        except SketchFormatError as exc:
            return LogDiagnosis(
                path=path, format="sketch-json", status=UNRECOVERABLE,
                detail=str(exc),
            )
        return LogDiagnosis(
            path=path, format="sketch-json", status=OK,
            valid_records=len(log),
        )
    if isinstance(payload, dict) and "schedule" in payload and "program" in payload:
        try:
            log = CompleteLog.from_json(text)
        except SketchFormatError as exc:
            return LogDiagnosis(
                path=path, format="complete-log", status=UNRECOVERABLE,
                detail=str(exc),
            )
        return LogDiagnosis(
            path=path, format="complete-log", status=OK,
            valid_records=len(log.schedule),
        )
    return LogDiagnosis(
        path=path, format="unknown", status=UNRECOVERABLE,
        detail="valid JSON but not a recognized PRES artifact",
    )


def diagnosis_metrics(diagnosis: LogDiagnosis, registry) -> None:
    """Fold one diagnosis into a metrics registry.

    ``registry`` is anything with the
    :class:`~repro.obs.metrics.MetricsRegistry` counter/gauge surface
    (duck-typed, matching the convention of
    :meth:`~repro.sim.stats.TraceStats.to_metrics`).  ``pres doctor
    --metrics-out`` uses this so fleet-wide log-health dashboards can
    aggregate doctor verdicts without parsing the prose report.
    """
    registry.counter("doctor_examined").inc()
    registry.counter(f"doctor_{diagnosis.status}").inc()
    registry.counter("doctor_valid_records").inc(diagnosis.valid_records)
    registry.counter("doctor_dropped_records").inc(diagnosis.dropped)


@dataclass
class StoreDiagnosis:
    """The doctor's verdict on one attempt-store directory.

    ``exit_code`` is 1 when any shard is damaged or stale temp files
    remain (both fixable: shards heal on the next write, stale files go
    away with :meth:`clean`), else 0.  Quarantine sidecars are listed
    but do not fail the store — they are evidence of *past* damage the
    store already routed around.
    """

    root: str
    verify: object  # StoreVerifyReport (typed loosely: lazy store import)
    stale: List[str] = field(default_factory=list)
    quarantine: List[str] = field(default_factory=list)
    cleaned: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        damaged = any(not shard.ok for shard in self.verify.shards)
        return not damaged and not self.stale

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def clean(self) -> List[str]:
        """Remove the stale temp files (only those); returns what went."""
        removed: List[str] = []
        for path in self.stale:
            try:
                os.unlink(path)
            except OSError:
                continue
            removed.append(path)
        self.stale = [path for path in self.stale if path not in removed]
        self.cleaned.extend(removed)
        return removed

    def describe(self) -> str:
        lines = [f"{self.root}: attempt store, "
                 f"{len(self.verify.shards)} shard(s)"]
        lines.extend("  " + shard.describe() for shard in self.verify.shards)
        for path in self.cleaned:
            lines.append(f"  cleaned: {path}")
        for path in self.stale:
            lines.append(
                f"  stale: {path} (partial write from a killed run; "
                "remove with --clean)"
            )
        for path in self.quarantine:
            lines.append(f"  quarantined: {path}")
        lines.append("store: " + ("ok" if self.ok else "DAMAGED"))
        return "\n".join(lines)


def examine_store(root: str) -> StoreDiagnosis:
    """Triage a store directory: verify shards, find stale/quarantine
    files.  Read-only (no epoch bump) until :meth:`StoreDiagnosis.clean`
    is explicitly invoked."""
    # Imported lazily: the store package reaches back into this package
    # (journal/atomic), and the doctor must stay importable from
    # ``repro.robust`` during interpreter start-up.
    from repro.store.attempt_store import verify_store

    report = verify_store(root)
    return StoreDiagnosis(
        root=root,
        verify=report,
        stale=list(report.stale),
        quarantine=list(report.quarantine),
    )


def examine(path: str) -> LogDiagnosis:
    """Sniff the file format and produce a verdict (never raises on
    corrupt content; missing files still raise ``OSError``)."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        first_line = handle.readline().rstrip("\n")
    if first_line.startswith(MAGIC.rstrip("0123456789")):
        return _diagnose_journal(path)
    stripped = first_line.lstrip()
    if stripped.startswith("{"):
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            header = None
        if isinstance(header, dict) and header.get("format") == "pres-trace":
            return _diagnose_trace_jsonl(path, first_line)
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return _diagnose_json_blob(path, handle.read())
    return LogDiagnosis(
        path=path,
        format="unknown",
        status=UNRECOVERABLE,
        detail="unrecognized file format",
    )


def write_salvaged(diagnosis: LogDiagnosis, out_path: str) -> str:
    """Write the recovered prefix of a salvageable file; returns the path."""
    if diagnosis.status != SALVAGEABLE:
        raise SketchFormatError(
            f"{diagnosis.path} is {diagnosis.status}; nothing to salvage"
        )
    if diagnosis.salvaged_text is not None:
        from repro.robust.atomic import atomic_write_text

        return atomic_write_text(out_path, diagnosis.salvaged_text)
    report = diagnosis.salvage
    if report is None:
        raise SketchFormatError(f"{diagnosis.path} has no salvageable content")
    writer = journal_mod.JournalWriter(out_path, report.kind, report.meta)
    try:
        for record in report.records:
            writer.append(record)
        writer.commit(
            {
                "salvaged_from": diagnosis.path,
                "complete": False,
                "dropped_lines": report.dropped_lines,
                "reason": report.reason,
            }
        )
    finally:
        writer.close()
    return out_path
