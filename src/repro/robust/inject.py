"""Deterministic fault injection for the recording/replay pipeline.

Robustness that is not exercised continuously rots, so the failure modes
PRES must survive are packaged as seeded, reproducible injectors:

* :func:`truncate_file` — a torn tail, what a crash mid-write leaves;
* :func:`garble_file` — flipped bits, what bad storage leaves;
* :func:`drop_line` — a missing record, what a lost buffer leaves;
* :class:`KillSwitch` — a machine observer that kills the recorder at
  event *k*, the "production process died while recording" scenario.

All file injectors are pure functions of ``(file content, seed)``: the
same damaged artifact every run, so the fault-injection test suite and
the ``--inject-fault`` CLI flag are deterministic.  They are meant to be
aimed at journal files (:mod:`repro.robust.journal`), whose salvage
reader is the recovery path under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import RecorderKilled
from repro.sim.events import Event
from repro.sim.machine import Machine, Observer

#: Fault kinds accepted by :func:`parse_fault` / ``--inject-fault``.
FAULT_KINDS = ("truncate", "garble", "drop", "kill")


@dataclass(frozen=True)
class FaultPlan:
    """One parsed fault: what to break and the seed/offset to break it at."""

    kind: str
    arg: int

    def describe(self) -> str:
        unit = {
            "truncate": "byte offset",
            "garble": "seed",
            "drop": "seed",
            "kill": "event",
        }[self.kind]
        return f"{self.kind} @ {unit} {self.arg}"


def parse_fault(spec: str) -> FaultPlan:
    """Parse ``--inject-fault`` specs like ``kill@25`` or ``truncate@120``.

    ``truncate@N`` truncates at byte N (negative counts from the end);
    ``garble@S`` / ``drop@S`` use S as the deterministic seed; ``kill@K``
    kills the recorder at event K.
    """
    kind, sep, arg = spec.partition("@")
    if not sep or kind not in FAULT_KINDS:
        valid = ", ".join(f"{k}@N" for k in FAULT_KINDS)
        raise ValueError(f"bad fault spec {spec!r}; expected one of: {valid}")
    try:
        value = int(arg)
    except ValueError:
        raise ValueError(f"bad fault spec {spec!r}: {arg!r} is not an integer") from None
    return FaultPlan(kind=kind, arg=value)


# -- file-level injectors -----------------------------------------------------


def truncate_file(path: str, offset: int) -> int:
    """Cut the file at ``offset`` bytes (negative: from the end).

    Returns the new size.  Models a crash mid-write / torn tail.
    """
    with open(path, "rb+") as handle:
        size = handle.seek(0, 2)
        at = max(0, size + offset if offset < 0 else min(offset, size))
        handle.truncate(at)
    return at


def seeded_truncate_offset(path: str, seed: int) -> int:
    """A deterministic truncation point inside the file body.

    Skips the first line (the journal header) so the result exercises the
    torn-*tail* path rather than total loss; garbling covers the header.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    first_break = data.find(b"\n") + 1 or len(data)
    if first_break >= len(data):
        return len(data)
    return random.Random(seed).randrange(first_break, len(data))


def garble_file(path: str, seed: int, nbytes: int = 4,
                protect_header: bool = True) -> List[int]:
    """Flip one bit in each of ``nbytes`` seeded positions; returns them.

    With ``protect_header`` the first line is spared, modelling damage to
    the body (salvageable); without it the header itself may be hit
    (the unrecoverable case).
    """
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        return []
    start = 0
    if protect_header:
        start = data.find(b"\n") + 1
        if start >= len(data):
            start = 0
    rng = random.Random(seed)
    positions = sorted(
        rng.randrange(start, len(data)) for _ in range(min(nbytes, len(data) - start))
    )
    for position in positions:
        # Never flip a byte into/out of "\n": that would change the line
        # structure instead of corrupting a record in place.
        flipped = data[position] ^ (1 << rng.randrange(8))
        if flipped == 0x0A or data[position] == 0x0A:
            continue
        data[position] = flipped
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    return positions


def drop_line(path: str, seed: int) -> int:
    """Delete one seeded non-header line; returns its 1-based number.

    Models a lost write buffer.  The journal's sequence numbers make the
    resulting gap detectable, so salvage keeps only the prefix before it.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines(keepends=True)
    if len(lines) < 2:
        return 0
    victim = random.Random(seed).randrange(1, len(lines))
    del lines[victim]
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    return victim + 1


def apply_fault(path: str, plan: FaultPlan) -> str:
    """Apply a file-level fault plan to ``path``; returns a description.

    ``kill`` plans are not file-level — wire them into the recorder via
    :class:`KillSwitch` (the CLI does this) — so they are rejected here.
    """
    if plan.kind == "truncate":
        at = truncate_file(path, plan.arg)
        return f"truncated {path} to {at} bytes"
    if plan.kind == "garble":
        positions = garble_file(path, plan.arg)
        return f"garbled {path} at byte(s) {positions}"
    if plan.kind == "drop":
        line = drop_line(path, plan.arg)
        return f"dropped line {line} of {path}"
    raise ValueError(f"{plan.kind} is not a file-level fault")


# -- in-run injector ----------------------------------------------------------


class KillSwitch(Observer):
    """Kill the recording process after event ``at_event`` executes.

    Attached *after* the sketch recorder in the observer list, so the
    fatal event itself is already journaled when the kill fires — exactly
    the "crash right after the interesting event" worst case.  The raised
    :class:`~repro.errors.RecorderKilled` propagates out of
    ``Machine.run`` like a real SIGKILL would end the process: no trace
    is assembled and no journal footer is written.
    """

    def __init__(self, at_event: int) -> None:
        self.at_event = max(1, at_event)

    def on_event(self, machine: Machine, event: Event) -> None:
        if event.gidx + 1 >= self.at_event:
            raise RecorderKilled(event.gidx + 1)
