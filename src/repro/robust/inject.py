"""Deterministic fault injection for the recording/replay pipeline.

Robustness that is not exercised continuously rots, so the failure modes
PRES must survive are packaged as seeded, reproducible injectors:

* :func:`truncate_file` — a torn tail, what a crash mid-write leaves;
* :func:`garble_file` — flipped bits, what bad storage leaves;
* :func:`drop_line` — a missing record, what a lost buffer leaves;
* :class:`KillSwitch` — a machine observer that kills the recorder at
  event *k*, the "production process died while recording" scenario.

All file injectors are pure functions of ``(file content, seed)``: the
same damaged artifact every run, so the fault-injection test suite and
the ``--inject-fault`` CLI flag are deterministic.  They are meant to be
aimed at journal files (:mod:`repro.robust.journal`), whose salvage
reader is the recovery path under test.

The chaos harness (:class:`ChaosSpec` / :class:`ChaosInjector`) extends
the same discipline to *exploration-time* faults: seeded worker crashes,
attempt hangs, and attempt-store shard corruption at configurable rates,
driven by the supervisor (:mod:`repro.robust.supervise`) and exposed as
``pres reproduce --chaos SPEC``.  Verdicts are hashes of attempt
*content* (never dispatch order or pids), so an injection campaign is
byte-for-byte reproducible at any ``jobs`` value — the property the E17
benchmark (:mod:`repro.bench.faults`) measures.
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import RecorderKilled
from repro.sim.events import Event
from repro.sim.machine import Machine, Observer

#: Fault kinds accepted by :func:`parse_fault` / ``--inject-fault``.
FAULT_KINDS = ("truncate", "garble", "drop", "kill")


@dataclass(frozen=True)
class FaultPlan:
    """One parsed fault: what to break and the seed/offset to break it at."""

    kind: str
    arg: int

    def describe(self) -> str:
        unit = {
            "truncate": "byte offset",
            "garble": "seed",
            "drop": "seed",
            "kill": "event",
        }[self.kind]
        return f"{self.kind} @ {unit} {self.arg}"


def parse_fault(spec: str) -> FaultPlan:
    """Parse ``--inject-fault`` specs like ``kill@25`` or ``truncate@120``.

    ``truncate@N`` truncates at byte N (negative counts from the end);
    ``garble@S`` / ``drop@S`` use S as the deterministic seed; ``kill@K``
    kills the recorder at event K.
    """
    kind, sep, arg = spec.partition("@")
    if not sep or kind not in FAULT_KINDS:
        valid = ", ".join(f"{k}@N" for k in FAULT_KINDS)
        raise ValueError(f"bad fault spec {spec!r}; expected one of: {valid}")
    try:
        value = int(arg)
    except ValueError:
        raise ValueError(f"bad fault spec {spec!r}: {arg!r} is not an integer") from None
    return FaultPlan(kind=kind, arg=value)


# -- file-level injectors -----------------------------------------------------


def truncate_file(path: str, offset: int) -> int:
    """Cut the file at ``offset`` bytes (negative: from the end).

    Returns the new size.  Models a crash mid-write / torn tail.
    """
    with open(path, "rb+") as handle:
        size = handle.seek(0, 2)
        at = max(0, size + offset if offset < 0 else min(offset, size))
        handle.truncate(at)
    return at


def seeded_truncate_offset(path: str, seed: int) -> int:
    """A deterministic truncation point inside the file body.

    Skips the first line (the journal header) so the result exercises the
    torn-*tail* path rather than total loss; garbling covers the header.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    first_break = data.find(b"\n") + 1 or len(data)
    if first_break >= len(data):
        return len(data)
    return random.Random(seed).randrange(first_break, len(data))


def garble_file(path: str, seed: int, nbytes: int = 4,
                protect_header: bool = True) -> List[int]:
    """Flip one bit in each of ``nbytes`` seeded positions; returns them.

    With ``protect_header`` the first line is spared, modelling damage to
    the body (salvageable); without it the header itself may be hit
    (the unrecoverable case).
    """
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        return []
    start = 0
    if protect_header:
        start = data.find(b"\n") + 1
        if start >= len(data):
            start = 0
    rng = random.Random(seed)
    positions = sorted(
        rng.randrange(start, len(data)) for _ in range(min(nbytes, len(data) - start))
    )
    for position in positions:
        # Never flip a byte into/out of "\n": that would change the line
        # structure instead of corrupting a record in place.
        flipped = data[position] ^ (1 << rng.randrange(8))
        if flipped == 0x0A or data[position] == 0x0A:
            continue
        data[position] = flipped
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    return positions


def drop_line(path: str, seed: int) -> int:
    """Delete one seeded non-header line; returns its 1-based number.

    Models a lost write buffer.  The journal's sequence numbers make the
    resulting gap detectable, so salvage keeps only the prefix before it.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines(keepends=True)
    if len(lines) < 2:
        return 0
    victim = random.Random(seed).randrange(1, len(lines))
    del lines[victim]
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    return victim + 1


def apply_fault(path: str, plan: FaultPlan) -> str:
    """Apply a file-level fault plan to ``path``; returns a description.

    ``kill`` plans are not file-level — wire them into the recorder via
    :class:`KillSwitch` (the CLI does this) — so they are rejected here.
    """
    if plan.kind == "truncate":
        at = truncate_file(path, plan.arg)
        return f"truncated {path} to {at} bytes"
    if plan.kind == "garble":
        positions = garble_file(path, plan.arg)
        return f"garbled {path} at byte(s) {positions}"
    if plan.kind == "drop":
        line = drop_line(path, plan.arg)
        return f"dropped line {line} of {path}"
    raise ValueError(f"{plan.kind} is not a file-level fault")


# -- in-run injector ----------------------------------------------------------


class KillSwitch(Observer):
    """Kill the recording process after event ``at_event`` executes.

    Attached *after* the sketch recorder in the observer list, so the
    fatal event itself is already journaled when the kill fires — exactly
    the "crash right after the interesting event" worst case.  The raised
    :class:`~repro.errors.RecorderKilled` propagates out of
    ``Machine.run`` like a real SIGKILL would end the process: no trace
    is assembled and no journal footer is written.
    """

    def __init__(self, at_event: int) -> None:
        self.at_event = max(1, at_event)

    def on_event(self, machine: Machine, event: Event) -> None:
        if event.gidx + 1 >= self.at_event:
            raise RecorderKilled(event.gidx + 1)


# -- chaos harness ------------------------------------------------------------

#: rate keys accepted by :func:`parse_chaos` / ``--chaos``.
CHAOS_KINDS = ("crash", "hang", "corrupt")


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed chaos rates: which faults to inject, how often, and the seed.

    ``crash`` and ``hang`` are per-*dispatch* probabilities (a retried
    attempt rolls again at each try index); ``corrupt`` is a per-batch
    probability of garbling one attempt-store shard.  All three default
    to off, so an explicit spec enables exactly what it names.
    """

    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    seed: int = 0

    @property
    def active(self) -> bool:
        """Whether any fault rate is nonzero."""
        return self.crash > 0 or self.hang > 0 or self.corrupt > 0

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for the CLI banner."""
        return (
            f"crash={self.crash:g} hang={self.hang:g} "
            f"corrupt={self.corrupt:g} seed={self.seed}"
        )


def parse_chaos(spec: str) -> ChaosSpec:
    """Parse ``--chaos`` specs like ``crash=0.1,hang=0.05,seed=7``.

    Grammar: comma-separated ``key=value`` pairs; keys are ``crash`` /
    ``hang`` / ``corrupt`` (floats in [0, 1]) and ``seed`` (int).  Every
    key is optional, order-free, and at-most-once.
    """
    values = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep or (key not in CHAOS_KINDS and key != "seed"):
            valid = ", ".join(f"{k}=RATE" for k in CHAOS_KINDS) + ", seed=N"
            raise ValueError(f"bad chaos spec {spec!r}; expected {valid}")
        if key in values:
            raise ValueError(f"bad chaos spec {spec!r}: duplicate key {key!r}")
        if key == "seed":
            try:
                values[key] = int(raw)
            except ValueError:
                raise ValueError(
                    f"bad chaos spec {spec!r}: seed {raw!r} is not an integer"
                ) from None
        else:
            try:
                rate = float(raw)
            except ValueError:
                raise ValueError(
                    f"bad chaos spec {spec!r}: {key} rate {raw!r} is not a number"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"bad chaos spec {spec!r}: {key} rate must be in [0, 1]"
                )
            values[key] = rate
    if not values:
        raise ValueError(
            "empty chaos spec; expected e.g. 'crash=0.1,hang=0.05,seed=7'"
        )
    return ChaosSpec(**values)


class ChaosInjector:
    """Seeded fault verdicts for the exploration supervisor.

    Every decision hashes ``(spec seed, decision material)`` through
    SHA-256 into a uniform draw — no RNG state, no ordering sensitivity:
    the verdict for a given attempt at a given try index is a pure
    function of its content, identical whether the attempt is dispatched
    first or last, pooled or inline.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec

    def _unit(self, material: str) -> float:
        digest = hashlib.sha256(
            f"{self.spec.seed}|{material}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def verdict(self, material: str, try_index: int) -> Optional[str]:
        """The fault to inject for one dispatch, or ``None`` for none.

        ``material`` identifies the attempt by content (the supervisor
        passes the seed plus canonically-ordered constraints);
        ``try_index`` lets a retried dispatch roll again.
        """
        draw = self._unit(f"attempt|{material}|{try_index}")
        if draw < self.spec.crash:
            return "crash"
        if draw < self.spec.crash + self.spec.hang:
            return "hang"
        return None

    def corrupt_store(self, root: str, tick: int) -> Optional[str]:
        """Maybe garble one attempt-store shard; returns the path hit.

        Called once per batch with a monotonically increasing ``tick``.
        The shard choice walks the store in sorted order, so a corruption
        campaign is host-independent; the damage itself reuses
        :func:`garble_file` (body-only, so the quarantine path — not
        total shard loss — is what gets exercised).
        """
        if self.spec.corrupt <= 0:
            return None
        if self._unit(f"store|{tick}") >= self.spec.corrupt:
            return None
        shards: List[str] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if name == "attempts.jsonl":
                    shards.append(os.path.join(dirpath, name))
        if not shards:
            return None
        pick = int(self._unit(f"shard|{tick}") * len(shards))
        path = shards[min(pick, len(shards) - 1)]
        garble_file(path, seed=self.spec.seed + tick, nbytes=2)
        return path
