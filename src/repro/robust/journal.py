"""Crash-consistent journaling for sketch logs and traces.

The rest of the package serializes whole artifacts at once — useless when
the defining PRES scenario is a production process that *dies while
recording*.  This module provides the append-only alternative: a
:class:`JournalWriter` that flushes every record as it is written, and a
:func:`salvage` reader that recovers the longest valid prefix from a torn
or corrupted file instead of raising.

Format (text, line-oriented)::

    PRESJ1 <crc32> <header json>
    <crc32> <record json>
    <crc32> <record json>
    ...
    <crc32> <footer json>

* The header json is ``{"kind": ..., "meta": {...}}``; ``kind`` names the
  payload schema (``"sketch"`` or ``"trace"``).
* Each subsequent line carries one record as ``[seq, payload]`` — the
  sequence number detects silently *dropped* lines, which per-line CRCs
  alone cannot.
* The crc32 (8 hex digits) covers the json text of its own line, so a
  torn tail or a flipped bit invalidates exactly the lines it touches.
* A *footer* is a record whose payload is ``{"__footer__": {...}}``,
  written only when the run completes; its absence marks a journal left
  behind by a crash.

:func:`salvage` walks the file and stops at the first invalid line (bad
CRC, bad json, or a sequence gap): everything before it is trustworthy,
everything after it is not — a record missing from the middle of a sketch
would silently desynchronize replay, so the prefix property is exactly
what replay needs.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.core.sketches import SketchKind
from repro.core.sketchlog import SketchLog, entry_from_record, entry_record
from repro.errors import SketchFormatError

#: First token of every journal file; the trailing digit is the version.
MAGIC = "PRESJ1"


def _frame(payload: Any) -> str:
    """One journal line (without the magic prefix) for ``payload``."""
    text = json.dumps(payload, separators=(",", ":"), sort_keys=False)
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}"


def _unframe(line: str) -> Any:
    """Decode one framed line; raises ``ValueError`` on any corruption."""
    if len(line) < 10 or line[8] != " ":
        raise ValueError("malformed frame")
    crc_text, text = line[:8], line[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        raise ValueError("malformed checksum") from None
    actual = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise ValueError(
            f"checksum mismatch (stored {crc_text}, computed {actual:08x})"
        )
    return json.loads(text)


class JournalWriter:
    """Append-only, incrementally-flushed journal.

    Every :meth:`append` writes one checksummed line and flushes it, so a
    process killed at any instant leaves at most one torn line at the
    tail.  Pass ``fsync=True`` to also force the OS to persist each
    record (slower; the tests don't need it, a real deployment would).

    With ``resume=True`` an existing journal at ``path`` is *continued*
    instead of truncated: the valid record prefix is kept (a torn tail is
    healed first — see :func:`resume_journal`), sequence numbering picks
    up where the file left off, and new appends extend the same file.
    This is what the attempt store's shards use to accumulate records
    across process runs.
    """

    def __init__(
        self,
        path: str,
        kind: str,
        meta: Optional[Dict[str, Any]] = None,
        fsync: bool = False,
        resume: bool = False,
    ) -> None:
        self.path = path
        self.kind = kind
        self.meta = dict(meta or {})
        self.fsync = fsync
        self._seq = 0
        self._closed = False
        #: salvage report of the pre-existing file when ``resume`` found
        #: one (``None`` for a fresh journal); lets callers count healed
        #: tails without re-reading the file.
        self.resume_report: Optional["SalvageReport"] = None
        if resume and os.path.exists(path) and os.path.getsize(path) > 0:
            self._handle, self._seq = _resume_handle(self, path, kind)
        else:
            self._handle: IO[str] = open(path, "w", encoding="utf-8")
            header = {"kind": kind, "meta": self.meta}
            self._write_line(f"{MAGIC} {_frame(header)}")

    # -- write path -------------------------------------------------------

    def _write_line(self, line: str) -> None:
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append(self, payload: Any) -> int:
        """Journal one record; returns its sequence number."""
        if self._closed:
            raise SketchFormatError(f"journal {self.path} is closed")
        seq = self._seq
        self._seq += 1
        self._write_line(_frame([seq, payload]))
        return seq

    def commit(self, footer: Optional[Dict[str, Any]] = None) -> None:
        """Write the completion footer; the journal becomes *intact*."""
        payload = {"__footer__": dict(footer or {})}
        payload["__footer__"].setdefault("records", self._seq)
        self.append(payload)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()

    @property
    def records_written(self) -> int:
        return self._seq

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class SalvageReport:
    """What :func:`salvage` recovered from one journal file."""

    path: str
    #: journal kind from the header, or ``None`` when the header itself
    #: is unreadable (the unrecoverable case).
    kind: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    #: payloads of the valid record prefix, footer excluded.
    records: List[Any] = field(default_factory=list)
    #: the footer payload when one was reached, else ``None``.
    footer: Optional[Dict[str, Any]] = None
    total_lines: int = 0
    #: lines past the valid prefix that had to be discarded.
    dropped_lines: int = 0
    #: why salvage stopped early ("" when the whole file validated).
    reason: str = ""

    @property
    def intact(self) -> bool:
        """Header, every record, and the completion footer all validated."""
        return (
            self.kind is not None
            and self.dropped_lines == 0
            and self.footer is not None
        )

    @property
    def salvageable(self) -> bool:
        """The header validated, so the record prefix is trustworthy."""
        return self.kind is not None and not self.intact

    @property
    def unrecoverable(self) -> bool:
        """Not even the header survived; nothing can be trusted."""
        return self.kind is None

    def describe(self) -> str:
        if self.intact:
            return (
                f"{self.path}: intact {self.kind} journal, "
                f"{len(self.records)} record(s)"
            )
        if self.unrecoverable:
            return f"{self.path}: unrecoverable ({self.reason})"
        return (
            f"{self.path}: salvaged {len(self.records)} record(s) from "
            f"{self.kind} journal, dropped {self.dropped_lines} line(s)"
            + (f" ({self.reason})" if self.reason else "")
        )


def _read_header(line: str) -> Tuple[str, Dict[str, Any]]:
    """Decode the header line; raises ``ValueError`` when corrupt."""
    if not line.startswith(MAGIC + " "):
        raise ValueError(f"missing {MAGIC} magic")
    header = _unframe(line[len(MAGIC) + 1:])
    if not isinstance(header, dict) or "kind" not in header:
        raise ValueError("header is not a journal header object")
    return str(header["kind"]), dict(header.get("meta") or {})


def salvage(path: str) -> SalvageReport:
    """Recover the longest valid prefix of a journal; never raises on
    corrupt *content* (missing files still raise ``OSError``).

    Stops at the first bad line — torn tail, flipped bits, or a sequence
    gap left by a dropped record — because records past a gap can no
    longer be trusted to be *the next* records.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return salvage_text(handle.read(), path)


def salvage_text(text: str, path: str = "<memory>") -> SalvageReport:
    """:func:`salvage`, but over journal content already in memory.

    Lets callers that hold one open handle (:func:`repro.sim.persist.
    read_trace` sniffing formats, the attempt store healing a shard)
    validate without a second racy ``open`` of the same path.
    """
    report = SalvageReport(path=path)
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    report.total_lines = len(lines)
    if not lines:
        report.reason = "empty file"
        return report

    try:
        report.kind, report.meta = _read_header(lines[0])
    except (ValueError, json.JSONDecodeError) as exc:
        report.kind = None
        report.reason = f"corrupt header: {exc}"
        report.dropped_lines = len(lines)
        return report

    expected_seq = 0
    for index, line in enumerate(lines[1:], start=2):
        try:
            record = _unframe(line)
            seq, payload = record
        except (ValueError, json.JSONDecodeError, TypeError) as exc:
            report.reason = f"line {index}: {exc}"
            break
        if seq != expected_seq:
            report.reason = (
                f"line {index}: sequence gap (expected record {expected_seq},"
                f" found {seq})"
            )
            break
        expected_seq += 1
        if isinstance(payload, dict) and "__footer__" in payload:
            report.footer = payload["__footer__"]
            # Records after a footer were appended after "completion";
            # treat the footer as the end of the trustworthy prefix.
            break
        report.records.append(payload)
    # expected_seq counts every validated record, the footer included.
    report.dropped_lines = report.total_lines - (1 + expected_seq)
    if report.footer is None and not report.reason:
        report.reason = "no completion footer (recorder died mid-run?)"
    return report


def read_journal(path: str) -> SalvageReport:
    """Strict read: raises :class:`SketchFormatError` on any corruption,
    naming the 1-based line of the first bad record."""
    return _strict(salvage(path), path)


def read_journal_text(text: str, path: str = "<memory>") -> SalvageReport:
    """Strict :func:`read_journal` over content already in memory."""
    return _strict(salvage_text(text, path), path)


def _strict(report: SalvageReport, path: str) -> SalvageReport:
    if report.unrecoverable:
        raise SketchFormatError(f"{path}: {report.reason}")
    if not report.intact:
        raise SketchFormatError(
            f"{path}: journal is damaged ({report.reason}); "
            f"run `pres doctor` or pass --salvage to recover "
            f"{len(report.records)} valid record(s)"
        )
    return report


def _resume_handle(
    writer: JournalWriter, path: str, kind: str
) -> Tuple[IO[str], int]:
    """Open an existing journal for continued appends (see ``resume=``).

    The pre-existing file is salvaged first.  A torn or corrupt tail is
    *healed* — the valid prefix is rewritten atomically, so records
    appended afterwards sit directly behind trustworthy lines instead of
    being stranded past garbage that salvage refuses to cross.  At most
    the torn line itself is lost, never the journal.
    """
    from repro.robust.atomic import atomic_writer

    report = salvage(path)
    if report.unrecoverable:
        raise SketchFormatError(
            f"{path}: cannot resume journal: {report.reason}"
        )
    if report.kind != kind:
        raise SketchFormatError(
            f"{path}: cannot resume a {report.kind!r} journal as {kind!r}"
        )
    if report.footer is not None:
        raise SketchFormatError(
            f"{path}: journal is committed; resuming would append past "
            "its completion footer"
        )
    writer.resume_report = report
    writer.meta = dict(report.meta)
    if report.dropped_lines > 0:
        # Heal: keep exactly the valid prefix, drop the torn tail.
        header = {"kind": report.kind, "meta": report.meta}
        with atomic_writer(path) as handle:
            handle.write(f"{MAGIC} {_frame(header)}\n")
            for seq, payload in enumerate(report.records):
                handle.write(_frame([seq, payload]) + "\n")
    return open(path, "a", encoding="utf-8"), len(report.records)


# -- sketch journals -------------------------------------------------------

SKETCH_KIND = "sketch"
TRACE_KIND = "trace"
#: journal kind of one attempt-store shard (see :mod:`repro.store`).
ATTEMPTS_KIND = "attempts"


def sketch_journal_writer(
    path: str, sketch: SketchKind, meta: Optional[Dict[str, Any]] = None
) -> JournalWriter:
    """Open a journal for one recording session's sketch entries."""
    merged = {"sketch": sketch.value}
    merged.update(meta or {})
    return JournalWriter(path, SKETCH_KIND, merged)


def write_sketch_journal(
    log: SketchLog, path: str, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Journal an already-complete sketch log (conversion utility)."""
    with sketch_journal_writer(path, log.sketch, meta) as writer:
        for entry in log.entries:
            writer.append(entry_record(entry))
        writer.commit({"entries": len(log.entries)})


def sketch_log_from_salvage(report: SalvageReport) -> SketchLog:
    """Rebuild a (possibly partial) sketch log from salvaged records."""
    if report.kind != SKETCH_KIND:
        raise SketchFormatError(
            f"{report.path}: expected a sketch journal, found {report.kind!r}"
        )
    try:
        sketch = SketchKind(report.meta.get("sketch"))
    except ValueError:
        raise SketchFormatError(
            f"{report.path}: header names unknown sketch kind "
            f"{report.meta.get('sketch')!r}"
        ) from None
    log = SketchLog(sketch=sketch)
    for number, record in enumerate(report.records, start=1):
        try:
            log.append(entry_from_record(record))
        except (SketchFormatError, ValueError, TypeError) as exc:
            raise SketchFormatError(
                f"{report.path}: record {number}: {exc}"
            ) from None
    return log


def load_sketch_journal(
    path: str, allow_salvage: bool = False
) -> Tuple[SketchLog, SalvageReport]:
    """Load a sketch journal; with ``allow_salvage`` a damaged file yields
    its longest valid prefix instead of raising."""
    report = salvage(path) if allow_salvage else read_journal(path)
    if report.unrecoverable:
        raise SketchFormatError(f"{path}: {report.reason}")
    return sketch_log_from_salvage(report), report
