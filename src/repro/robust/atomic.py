"""Crash-safe whole-file writes: temp file, fsync, atomic rename.

``open(path, "w")`` is the classic torn-write hazard: a crash between
truncation and the final flush leaves a short, unloadable file where a
good one used to be.  Every whole-artifact writer in the package (traces,
sketch logs, complete logs, plans, metrics snapshots) routes through
:func:`atomic_writer` instead: the content is written to a temporary file
in the *same directory* (so the final rename cannot cross filesystems),
flushed and fsynced, and only then moved over the destination with
``os.replace`` — which POSIX guarantees is atomic.  A reader therefore
always sees either the old complete file or the new complete file, never
a prefix; a crash mid-write leaves the old file untouched plus at most
one orphaned ``*.tmp.*`` file, which the next atomic write of the same
artifact does not trip over.

Incremental, append-only artifacts (sketch/trace journals, the attempt
store's shards) are the other half of the story — they get their
crash-consistency from :mod:`repro.robust.journal` instead, where every
record is individually checksummed.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator

__all__ = ["atomic_writer", "atomic_write_text"]


@contextlib.contextmanager
def atomic_writer(path: str, encoding: str = "utf-8") -> Iterator[IO[str]]:
    """A text handle whose content replaces ``path`` only on clean exit.

    On any exception inside the ``with`` block the temporary file is
    removed and ``path`` is left exactly as it was — the crash-mid-write
    case loses the new content, never the old file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".tmp."
    )
    handle = os.fdopen(descriptor, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(temp_path, path)
    except BaseException:
        handle.close()
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Atomically replace ``path`` with ``text``; returns ``path``."""
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)
    return path
