"""Resumable reproduction runs: a per-run journal of decided attempts.

A long exploration that dies at attempt 180 of 200 should not restart
from zero.  This module journals every decided attempt of one
``pres reproduce`` invocation to an append-only checksummed run journal
(the :mod:`repro.robust.journal` format, record payloads from
:mod:`repro.store.codec`), so ``pres reproduce --resume RUN_ID`` can
preload the decided outcomes and replay **only the undecided attempts**.

Resume is just a warm cache: :class:`RunJournalCache` extends the
session :class:`~repro.core.feedback.AttemptCache`, and the exploration
engine's schedule is a pure function of the frontier — a cache hit
changes *where* an outcome comes from (journal vs. live replay), never
what it is or what gets explored next.  A resumed run therefore produces
a **byte-identical report** to an uninterrupted one; the round-trip
tests in ``tests/robust/test_resume.py`` pin this.

Layout: one journal per run at ``<runs_dir>/<run_id>.run``.  The header
carries the run metadata (program, sketch fingerprint, attempt budget,
…) which :func:`resume_run` validates, so a journal cannot silently warm
a *different* reproduction.  A committed footer marks the run complete;
resuming a complete run replays it entirely from the journal.

Deliberately **not** re-exported from :mod:`repro.robust`: this module
imports the store codec, which imports :mod:`repro.core.parallel`, which
imports :mod:`repro.robust.supervise` — pulling it into the package
``__init__`` would close that cycle during interpreter start-up.
"""

from __future__ import annotations

import os
import re
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.feedback import AttemptCache
from repro.errors import SimUsageError, SketchFormatError
from repro.robust.journal import JournalWriter, salvage
from repro.store.codec import decode_record, encode_record

__all__ = [
    "RUN_KIND",
    "RunJournalCache",
    "list_runs",
    "report_signature",
    "resume_run",
    "run_journal_path",
    "run_meta",
    "start_run",
]

#: journal ``kind`` tag for run journals.
RUN_KIND = "run"

#: acceptable run identifiers: path-safe, no separators, no dotfiles.
_RUN_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_run_id(run_id: str) -> str:
    if not _RUN_ID.match(run_id):
        raise SimUsageError(
            f"bad run id {run_id!r}: use letters, digits, '.', '_', '-' "
            "(starting with a letter or digit)"
        )
    return run_id


def run_journal_path(runs_dir: str, run_id: str) -> str:
    """The journal path for ``run_id`` under ``runs_dir``."""
    return os.path.join(runs_dir, f"{_check_run_id(run_id)}.run")


def run_meta(recorded: Any, config: Any, base_policy: str = "random",
             match_output: bool = False, use_feedback: bool = True) -> Dict[str, Any]:
    """The identity of one reproduction, as JSON-safe journal metadata.

    Everything that determines the exploration schedule goes in —
    notably ``batch_size`` but *not* ``jobs`` (the schedule is
    jobs-invariant, so a run interrupted at ``--jobs 4`` may be resumed
    at ``--jobs 1`` and still match byte-for-byte).
    """
    return {
        "program": recorded.program.name,
        "sketch": recorded.sketch.value,
        "entries": len(recorded.log),
        "fingerprint": recorded.log.fingerprint(),
        "max_attempts": config.max_attempts,
        "base_seed": config.base_seed,
        "seed_restarts": config.seed_restarts,
        "batch_size": config.batch_size,
        "base_policy": base_policy,
        "match_output": bool(match_output),
        "use_feedback": bool(use_feedback),
    }


def report_signature(report: Any) -> str:
    """A deterministic digest of everything a report decides.

    Two reports with equal signatures reproduced the same bug the same
    way: same success, same attempt sequence, same winner, same complete
    log.  Cache provenance (``cache_hits``, ``salvaged_entries``) is
    deliberately excluded — a resumed or chaos-supervised run differs
    there while still being *the same reproduction*.
    """
    import hashlib
    import json

    payload = {
        "success": report.success,
        "attempts": report.attempts,
        "records": [
            [r.outcome, r.base_seed, r.n_constraints] for r in report.records
        ],
        "winning_constraints": sorted(
            repr(c) for c in (report.winning_constraints or ())
        ),
        "complete_log": (
            report.complete_log.to_json() if report.complete_log else None
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


class RunJournalCache(AttemptCache):
    """An attempt cache whose writes land in a per-run journal.

    Layered like :class:`~repro.store.persistent.PersistentAttemptCache`:
    the in-memory dict is tier one, an optional ``inner`` cache (usually
    the persistent store tier) is consulted on miss, and every ``put``
    is also journaled — flushed per record, so the journal is as current
    as the exploration at any kill point.

    :param path: the run journal file.
    :param meta: run identity (see :func:`run_meta`); stored in the
        journal header on a fresh run, loaded from it on resume.
    :param resume: load an existing journal instead of starting one.
    :param inner: optional cache tier consulted beneath the journal.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None,
                 resume: bool = False, inner: Optional[AttemptCache] = None) -> None:
        super().__init__()
        self.path = path
        self.inner = inner
        self.meta: Dict[str, Any] = dict(meta or {})
        #: True once this run has a committed footer.
        self.completed = False
        #: decided attempts preloaded from the journal at resume time.
        self.resumed_attempts = 0
        self._resumed_pending = 0
        self._journaled: set = set()
        self._writer: Optional[JournalWriter] = None
        if resume:
            self._load(path)
        else:
            if os.path.exists(path):
                raise SimUsageError(
                    f"run journal {path} already exists; resume it with "
                    "--resume or pick a fresh --run-id"
                )
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._writer = JournalWriter(path, RUN_KIND, meta=self.meta)

    def _load(self, path: str) -> None:
        report = salvage(path)
        if report.unrecoverable:
            raise SketchFormatError(
                f"run journal {path} is unrecoverable ({report.reason}); "
                "start a fresh run"
            )
        if report.kind != RUN_KIND:
            raise SketchFormatError(
                f"{path} is a {report.kind!r} journal, not a run journal"
            )
        self.meta = dict(report.meta or {})
        for payload in report.records:
            try:
                key, outcome, _tick = decode_record(payload)
            except SketchFormatError:
                # A damaged record is simply not resumed — the engine
                # replays that attempt live, with an identical result.
                continue
            self._outcomes[key] = outcome
            self._journaled.add(key)
        self.resumed_attempts = len(self._journaled)
        self._resumed_pending = self.resumed_attempts
        if report.footer is not None:
            # Completed run: a pure read-only replay; nothing to append.
            self.completed = True
        else:
            # Re-opening heals any torn tail atomically before appending.
            self._writer = JournalWriter(path, RUN_KIND, resume=True)

    # -- cache interface -------------------------------------------------

    def get(self, key: Tuple) -> Optional[object]:
        if key not in self._outcomes and self.inner is not None:
            outcome = self.inner.get(key)
            if outcome is not None:
                AttemptCache.put(self, key, outcome)
        return super().get(key)

    def put(self, key: Tuple, outcome: object) -> None:
        super().put(key, outcome)
        if key not in self._journaled:
            self._journaled.add(key)
            if self._writer is not None:
                if getattr(outcome, "spans", ()):
                    outcome = replace(outcome, spans=())
                self._writer.append(
                    encode_record(key, outcome, (0, len(self._journaled) - 1))
                )
        if self.inner is not None:
            self.inner.put(key, outcome)

    # -- run lifecycle ---------------------------------------------------

    def attach_inner(self, inner: Optional[AttemptCache]) -> None:
        """Set the cache tier consulted beneath the journal."""
        self.inner = inner

    def bind_metrics(self, registry: Any) -> None:
        """Forward metrics binding to the inner (store) tier, if any."""
        bind = getattr(self.inner, "bind_metrics", None)
        if bind is not None:
            bind(registry)

    def take_resumed(self) -> int:
        """Resumed-attempt count, once (the engine charges it as a metric)."""
        count, self._resumed_pending = self._resumed_pending, 0
        return count

    def commit(self, report: Optional[Any] = None) -> None:
        """Mark the run complete with a footer summarizing the report."""
        if self._writer is None:
            self.completed = True
            return
        footer: Dict[str, Any] = {"decided": len(self._journaled)}
        if report is not None:
            footer["success"] = bool(report.success)
            footer["attempts"] = report.attempts
            footer["signature"] = report_signature(report)
        self._writer.commit(footer)
        self._writer.close()
        self._writer = None
        self.completed = True

    def close(self) -> None:
        """Flush and close the journal (safe to call repeatedly)."""
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()


def start_run(runs_dir: str, run_id: str,
              meta: Optional[Dict[str, Any]] = None,
              inner: Optional[AttemptCache] = None) -> RunJournalCache:
    """Open a fresh run journal for ``run_id`` under ``runs_dir``."""
    return RunJournalCache(
        run_journal_path(runs_dir, run_id), meta=meta, inner=inner
    )


def resume_run(runs_dir: str, run_id: str,
               expect_meta: Optional[Dict[str, Any]] = None,
               inner: Optional[AttemptCache] = None) -> RunJournalCache:
    """Load an interrupted (or completed) run journal for resumption.

    ``expect_meta`` — usually :func:`run_meta` of the current invocation
    — is checked key-by-key against the journal header, so a resume
    cannot silently mix two different reproductions.
    """
    path = run_journal_path(runs_dir, run_id)
    if not os.path.exists(path):
        known = ", ".join(list_runs(runs_dir)) or "none"
        raise SimUsageError(
            f"no run journal for {run_id!r} in {runs_dir} (known runs: {known})"
        )
    run = RunJournalCache(path, resume=True, inner=inner)
    if expect_meta:
        mismatched = sorted(
            key for key, value in expect_meta.items()
            if key in run.meta and run.meta[key] != value
        )
        if mismatched:
            details = "; ".join(
                f"{key}: journal={run.meta[key]!r} now={expect_meta[key]!r}"
                for key in mismatched
            )
            run.close()
            raise SimUsageError(
                f"run {run_id!r} was recorded for a different reproduction "
                f"({details}); start a fresh run"
            )
    return run


def list_runs(runs_dir: str) -> List[str]:
    """Run ids with a journal under ``runs_dir``, sorted."""
    if not os.path.isdir(runs_dir):
        return []
    return sorted(
        name[: -len(".run")]
        for name in os.listdir(runs_dir)  # determinism: ok
        if name.endswith(".run")
    )
