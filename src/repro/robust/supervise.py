"""Worker supervision for parallel exploration.

PRES turns diagnosis into *many replay attempts*, and the parallel
engine (:mod:`repro.core.parallel`) ships those attempts to a process
pool.  Pools fail in the real world: a worker segfaults or is OOM-killed
(`BrokenProcessPool`), an attempt wedges on a pathological schedule, the
whole pool dies repeatedly on a poisoned host.  Before this module, any
of those lost the entire exploration and all partial progress.

:class:`Supervisor` wraps batch evaluation with the discipline rr and
iReplayer apply to their recorded process trees:

* **attempt deadlines** — a per-attempt wall-clock timeout
  (:attr:`SuperviseConfig.attempt_timeout`) turns a hung worker into a
  retryable failure instead of an eternal wait;
* **worker-death detection** — ``BrokenExecutor`` (and any other
  transport error) is caught, charged, and retried;
* **bounded retry with deterministic backoff** — each failed dispatch is
  retried up to :attr:`SuperviseConfig.max_retries` times with an
  exponential, *seed-free* backoff; a global retry budget (sized from
  ``max_attempts``) bounds total supervision work;
* **pool rebuild and serial fallback** — a broken pool is rebuilt up to
  :attr:`SuperviseConfig.pool_failure_limit` times, then the supervisor
  degrades to in-process execution for the rest of the session;
* **a deterministic escape hatch** — whenever retries are exhausted (or
  no pool exists), the attempt runs in-process via the injected
  ``inline`` callable.  Attempts are pure functions of
  ``(sketch log, constraints, seed)``, so every one of these paths
  changes only *where* an outcome is computed, never *what* it is: the
  final report is byte-identical to a fault-free run.

The supervisor is deliberately decoupled from the exploration engine: it
receives ``pool_factory`` / ``dispatch`` / ``inline`` callables instead
of importing :mod:`repro.core.parallel` (which imports *this* module),
and the same indirection makes it unit-testable against stub pools.

Chaos injection (:class:`~repro.robust.inject.ChaosInjector`) plugs in
here: fault verdicts are computed parent-side from content-derived keys
at dispatch time, so an injected crash or hang exercises exactly the
retry machinery above — deterministically, at any ``jobs`` value.

This is the one module allowed to consult monotonic clocks in
retry/deadline logic; the ``retry-clock`` rule in
``tools/lint_determinism.py`` flags such reads anywhere else.  See
``docs/resilience.md`` for the full model.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.session import NULL_SESSION, ObsSession

__all__ = [
    "SuperviseConfig",
    "Supervisor",
    "backoff_delay",
    "default_retry_budget",
]


@dataclass(frozen=True)
class SuperviseConfig:
    """Supervision knobs for one exploration session.

    The defaults are safe for healthy environments: no deadline, a small
    bounded retry, and at most two pool rebuilds before degrading to
    serial execution.
    """

    #: per-attempt wall-clock deadline in seconds; ``0`` disables hang
    #: detection (an attempt may block its slot forever).  Deadlines
    #: apply to *pooled* attempts — an in-process attempt cannot be
    #: preempted portably (see ``docs/resilience.md``).
    attempt_timeout: float = 0.0
    #: failed dispatches of one attempt before it falls back to
    #: deterministic in-process execution.
    max_retries: int = 2
    #: first retry delay in seconds; retry *n* sleeps
    #: ``backoff_base * backoff_factor ** (n - 1)``.
    backoff_base: float = 0.02
    #: multiplier between consecutive retry delays.
    backoff_factor: float = 2.0
    #: global cap on retries across the whole session.  ``None`` sizes
    #: the budget from the exploration's ``max_attempts`` (see
    #: :func:`default_retry_budget`).  The budget bounds *supervision*
    #: work only — it never consumes exploration attempts, or fault
    #: injection would change the report.
    retry_budget: Optional[int] = None
    #: pool rebuilds tolerated before degrading to serial execution.
    pool_failure_limit: int = 2


def backoff_delay(config: SuperviseConfig, tries: int) -> float:
    """Seconds to sleep before retry number ``tries`` (1-based).

    Purely a function of the config — no jitter, no clock reads — so a
    retried session is as reproducible as an unretried one.
    """
    if tries <= 0 or config.backoff_base <= 0:
        return 0.0
    return config.backoff_base * (config.backoff_factor ** (tries - 1))


def default_retry_budget(max_attempts: int) -> int:
    """The session retry budget implied by an attempt budget.

    Two retries per exploration attempt (floored at 8 so tiny budgets
    still tolerate a flaky worker) — "charged against ``max_attempts``"
    in the sense that it *scales with* the attempt budget, while never
    consuming exploration attempts themselves.
    """
    return max(8, 2 * max_attempts)


class _Fault:
    """A failed (or chaos-injected) dispatch slot awaiting retry."""

    __slots__ = ("kind", "chaos")

    def __init__(self, kind: str, chaos: bool) -> None:
        self.kind = kind  # "crash" | "hang"
        self.chaos = chaos


#: slot value meaning "no pool: resolve this task in-process".
_INLINE = None

#: one batch task as the engine assembles it: ``(constraints, seed,
#: cached, *extras)``.  Extras (e.g. a prefix-resume plan) are passed
#: through to ``dispatch``/``inline`` untouched; three-element tasks —
#: the original shape, still used by stub-based tests — carry none.
Task = Tuple[Any, ...]


class Supervisor:
    """Fault-tolerant batch evaluation over an expendable worker pool.

    :param config: retry/deadline/rebuild policy.
    :param obs: observability session; supervision charges the
        ``supervise.*`` counter family and ``category="supervise"``
        tracer events.  These describe the *environment* (which faults
        happened to occur), so they are exempt from the jobs-invariance
        contract ordinary exploration counters obey — in a fault-free
        run they are all zero.
    :param pool_factory: zero-argument callable building a fresh worker
        pool, or returning ``None`` when pooling is unavailable (the
        supervisor then runs everything through ``inline``).
    :param dispatch: ``(pool, constraints, seed, mine, *extras) ->
        Future`` submitting one attempt to a pool.  ``extras`` are the
        task elements beyond the first three, forwarded verbatim on
        every (re)dispatch.
    :param inline: ``(constraints, seed, mine, *extras) -> outcome``
        evaluating one attempt in-process — the deterministic escape
        hatch every supervision path bottoms out in.
    :param max_attempts: the exploration attempt budget, used to size
        the default retry budget.
    :param chaos: optional :class:`~repro.robust.inject.ChaosInjector`.
    :param chaos_material: ``(constraints, seed) -> str`` producing the
        content key chaos verdicts hash — must not depend on dispatch
        order or worker identity, or injection would not be
        jobs-invariant.
    :param store_root: attempt-store root directory for chaos shard
        corruption, when a persistent cache is attached.
    """

    def __init__(
        self,
        config: Optional[SuperviseConfig] = None,
        obs: Optional[ObsSession] = None,
        pool_factory: Optional[Callable[[], Any]] = None,
        dispatch: Optional[Callable[..., Any]] = None,
        inline: Optional[Callable[..., Any]] = None,
        max_attempts: int = 0,
        chaos: Optional[Any] = None,
        chaos_material: Optional[Callable[[Any, int], str]] = None,
        store_root: Optional[str] = None,
    ) -> None:
        self.config = config or SuperviseConfig()
        self.obs = obs or NULL_SESSION
        self._pool_factory = pool_factory or (lambda: None)
        self._dispatch = dispatch
        self._inline = inline
        self.chaos = chaos
        self._chaos_material = chaos_material or (
            lambda constraints, seed: repr((seed, sorted(map(repr, constraints))))
        )
        self.store_root = store_root
        self.retry_budget = (
            self.config.retry_budget
            if self.config.retry_budget is not None
            else default_retry_budget(max_attempts)
        )
        #: session-wide retry counter, compared against the budget.
        self.retries_charged = 0
        #: pool rebuilds performed so far.
        self.rebuilds = 0
        #: once True, no pool is (re)built; everything runs in-process.
        self.serial = False
        self.pool: Optional[Any] = None
        self._pool_started = False
        self._batch_index = 0
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, wait: bool = False) -> None:
        """Tear the pool down; with ``wait=True``, join every worker.

        Idempotent.  The interrupt path calls this with ``wait=True`` so
        a Ctrl-C never leaves zombie workers behind; after shutdown the
        supervisor stays serial (no pool is rebuilt).
        """
        self._closed = True
        self.serial = True
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def _ensure_pool(self) -> Optional[Any]:
        if self.serial:
            return None
        if not self._pool_started:
            self._pool_started = True
            self.pool = self._pool_factory()
            if self.pool is None:
                # Pooling unavailable (jobs<=1, unpicklable session, no
                # fork): permanent inline mode, not a supervision event.
                self.serial = True
        return self.pool

    # -- batch evaluation ------------------------------------------------

    def evaluate_batch(self, tasks: Sequence[Task], mine: bool) -> List[Any]:
        """Evaluate one batch, returning outcomes in pop order.

        Preserves the engine's deterministic merge semantics exactly:
        outcomes come back in task order, the walk stops at the first
        matched outcome, and later in-flight futures are cancelled.
        Every fault along the way is absorbed here.
        """
        self._chaos_tick()
        pool = self._ensure_pool()
        if pool is None:
            return self._evaluate_inline(tasks, mine)
        return self._evaluate_pooled(tasks, mine)

    def _evaluate_inline(self, tasks: Sequence[Task], mine: bool) -> List[Any]:
        outcomes: List[Any] = []
        for constraints, seed, cached, *extras in tasks:
            if cached is not None:
                outcome = cached
            else:
                # Chaos faults are simulated (charged + retried) even
                # in-process, so injection accounting is jobs-invariant.
                self._simulate_chaos(constraints, seed)
                outcome = self._inline(constraints, seed, mine, *extras)
            outcomes.append(outcome)
            if outcome.matched:
                break
        return outcomes

    def _evaluate_pooled(self, tasks: Sequence[Task], mine: bool) -> List[Any]:
        slots: Dict[int, Any] = {}
        for index, (constraints, seed, cached, *extras) in enumerate(tasks):
            if cached is None:
                slots[index] = self._submit(
                    constraints, seed, mine, tries=0, extras=extras
                )
        outcomes: List[Any] = []
        matched_at: Optional[int] = None
        for index, (constraints, seed, cached, *_extras) in enumerate(tasks):
            if matched_at is not None:
                slot = slots.get(index)
                if isinstance(slot, Future):
                    slot.cancel()
                continue
            if cached is not None:
                outcome = cached
            else:
                outcome = self._resolve(index, tasks, slots, mine)
            outcomes.append(outcome)
            if outcome.matched:
                matched_at = index
        return outcomes

    def _submit(
        self,
        constraints: Any,
        seed: int,
        mine: bool,
        tries: int,
        extras: Sequence[Any] = (),
    ) -> Any:
        """Dispatch one attempt, or return the slot's fate as a sentinel.

        Chaos verdicts are consulted *here*, keyed by attempt content and
        try index — so whether a given dispatch is sabotaged is fixed
        before any worker races, at any ``jobs`` value.
        """
        if self.chaos is not None:
            kind = self.chaos.verdict(self._chaos_material(constraints, seed), tries)
            if kind is not None:
                return _Fault(kind, chaos=True)
        if self.pool is None:
            return _INLINE
        try:
            return self._dispatch(self.pool, constraints, seed, mine, *extras)
        except Exception:  # broken/shut-down pool at submit time
            return _Fault("crash", chaos=False)

    def _resolve(
        self, index: int, tasks: Sequence[Task], slots: Dict[int, Any], mine: bool
    ) -> Any:
        """Drive one slot to an outcome, absorbing faults along the way."""
        constraints, seed, _cached, *extras = tasks[index]
        tries = 0
        slot = slots.pop(index, _INLINE)
        while slot is not _INLINE:
            if isinstance(slot, _Fault):
                fault = slot
            else:
                timeout = self.config.attempt_timeout or None
                try:
                    return slot.result(timeout=timeout)
                except FuturesTimeout:
                    slot.cancel()
                    fault = _Fault("hang", chaos=False)
                except BrokenExecutor:
                    fault = _Fault("crash", chaos=False)
                    self._pool_broken(tasks, slots, mine, skip=index)
                except Exception:
                    # A genuine error raised *by the attempt itself* —
                    # re-raise it deterministically from the in-process
                    # path rather than retrying a doomed computation.
                    break
            self._charge_fault(fault, seed, len(constraints))
            tries += 1
            if self.pool is None or not self._take_retry(tries):
                self._charge_inline_fallback(seed)
                break
            time.sleep(backoff_delay(self.config, tries))
            slot = self._submit(constraints, seed, mine, tries, extras=extras)
        return self._inline(constraints, seed, mine, *extras)

    def _pool_broken(
        self, tasks: Sequence[Task], slots: Dict[int, Any], mine: bool, skip: int
    ) -> None:
        """React to a dead pool: rebuild it (or go serial) and re-dispatch.

        Every *other* pending future died with the pool; they are
        resubmitted at try index 0 on the replacement pool (their chaos
        verdicts, already consulted, repeat identically), or marked for
        inline execution when no pool comes back.  ``skip`` is the slot
        whose own retry loop triggered the rebuild — it re-dispatches
        itself.

        A pool exposing ``discard_broken()`` (a borrowed
        :class:`~repro.core.parallel.PoolLease` view) is recycled
        through its owner instead of shut down directly — the lease
        invalidates the shared executor so every borrowing session
        rebuilds onto a fresh one.
        """
        pool, self.pool = self.pool, None
        if pool is not None:
            discard = getattr(pool, "discard_broken", None)
            if discard is not None:
                discard()
            else:
                pool.shutdown(wait=False, cancel_futures=True)
        self.rebuilds += 1
        if self.rebuilds > self.config.pool_failure_limit or self._closed:
            self.serial = True
            self.obs.metrics.counter("supervise.serial_fallbacks").inc()
            self.obs.tracer.instant(
                "serial-fallback", category="supervise", rebuilds=self.rebuilds
            )
        else:
            self.obs.metrics.counter("supervise.pool_rebuilds").inc()
            self.obs.tracer.instant(
                "pool-rebuild", category="supervise", rebuilds=self.rebuilds
            )
            self.pool = self._pool_factory()
            if self.pool is None:
                self.serial = True
        for other in sorted(slots):
            if other == skip:
                continue
            slot = slots[other]
            if isinstance(slot, _Fault) or slot is _INLINE:
                continue
            slot.cancel()
            if self.pool is None:
                slots[other] = _INLINE
            else:
                constraints, seed, _cached, *extras = tasks[other]
                slots[other] = self._submit(
                    constraints, seed, mine, tries=0, extras=extras
                )

    # -- chaos -----------------------------------------------------------

    def _chaos_tick(self) -> None:
        """Batch-boundary chaos: maybe corrupt one attempt-store shard."""
        self._batch_index += 1
        if self.chaos is None or self.store_root is None:
            return
        path = self.chaos.corrupt_store(self.store_root, self._batch_index)
        if path is not None:
            self.obs.metrics.counter("supervise.chaos_corruptions").inc()
            self.obs.tracer.instant(
                "chaos-corrupt", category="supervise", path=path
            )

    def _simulate_chaos(self, constraints: Any, seed: int) -> None:
        """Walk the chaos verdicts for an in-process attempt.

        Charges the same fault/retry counters the pooled path would, so
        ``jobs=1`` and ``jobs=N`` report identical injection accounting.
        """
        if self.chaos is None:
            return
        material = self._chaos_material(constraints, seed)
        tries = 0
        while True:
            kind = self.chaos.verdict(material, tries)
            if kind is None:
                return
            self._charge_fault(_Fault(kind, chaos=True), seed, len(constraints))
            tries += 1
            if not self._take_retry(tries):
                self._charge_inline_fallback(seed)
                return
            time.sleep(backoff_delay(self.config, tries))

    # -- accounting ------------------------------------------------------

    def _charge_fault(self, fault: _Fault, seed: int, n_constraints: int) -> None:
        metrics = self.obs.metrics
        if fault.chaos:
            metrics.counter("supervise.chaos_injected").inc()
        if fault.kind == "hang":
            metrics.counter("supervise.timeouts").inc()
            self.obs.tracer.instant(
                "attempt-timeout", category="supervise",
                seed=seed, constraints=n_constraints, chaos=fault.chaos,
            )
        else:
            metrics.counter("supervise.worker_deaths").inc()
            self.obs.tracer.instant(
                "worker-death", category="supervise",
                seed=seed, constraints=n_constraints, chaos=fault.chaos,
            )

    def _take_retry(self, tries: int) -> bool:
        """Whether retry number ``tries`` may run; charges the budget."""
        if tries > self.config.max_retries:
            return False
        if self.retries_charged >= self.retry_budget:
            return False
        self.retries_charged += 1
        self.obs.metrics.counter("supervise.retries").inc()
        return True

    def _charge_inline_fallback(self, seed: int) -> None:
        self.obs.metrics.counter("supervise.inline_fallbacks").inc()
        self.obs.tracer.instant(
            "inline-fallback", category="supervise", seed=seed
        )
