"""Fault tolerance: crash-consistent journaling, fault injection, triage.

PRES's premise is that the production run *fails while recording*, so the
recording pipeline must assume it will be interrupted at any instant and
the artifacts it leaves behind may be torn or damaged.  This package is
that assumption made executable:

* :mod:`repro.robust.journal` — an append-only, incrementally-flushed,
  per-record-checksummed journal for sketch logs and traces, with a
  ``salvage()`` reader that recovers the longest valid prefix of a
  damaged file instead of raising;
* :mod:`repro.robust.inject` — seeded, deterministic fault injectors
  (truncate / garble / drop / kill-recorder-at-event) used by the test
  suite and the ``--inject-fault`` CLI flag;
* :mod:`repro.robust.doctor` — triage for any on-disk artifact, backing
  the ``pres doctor`` subcommand and its 0/1/2 exit-code contract;
* :mod:`repro.robust.atomic` — crash-safe whole-file writes (temp file,
  fsync, atomic rename) for every serialize-the-whole-artifact path.

The replay-side counterpart — the degradation ladder that re-derives
coarser sketches from a salvaged prefix and retries — lives with the
reproduction driver in :func:`repro.core.reproducer.reproduce_degraded`.
"""

from repro.robust.atomic import atomic_write_text, atomic_writer
from repro.robust.doctor import LogDiagnosis, examine, write_salvaged
from repro.robust.inject import (
    FaultPlan,
    KillSwitch,
    apply_fault,
    drop_line,
    garble_file,
    parse_fault,
    seeded_truncate_offset,
    truncate_file,
)
from repro.robust.journal import (
    JournalWriter,
    SalvageReport,
    load_sketch_journal,
    read_journal,
    read_journal_text,
    salvage,
    salvage_text,
    sketch_journal_writer,
    sketch_log_from_salvage,
    write_sketch_journal,
)

__all__ = [
    "FaultPlan",
    "JournalWriter",
    "KillSwitch",
    "LogDiagnosis",
    "SalvageReport",
    "apply_fault",
    "atomic_write_text",
    "atomic_writer",
    "drop_line",
    "examine",
    "garble_file",
    "load_sketch_journal",
    "parse_fault",
    "read_journal",
    "read_journal_text",
    "salvage",
    "salvage_text",
    "seeded_truncate_offset",
    "sketch_journal_writer",
    "sketch_log_from_salvage",
    "truncate_file",
    "write_salvaged",
    "write_sketch_journal",
]
