"""Fault tolerance: crash-consistent journaling, fault injection, triage.

PRES's premise is that the production run *fails while recording*, so the
recording pipeline must assume it will be interrupted at any instant and
the artifacts it leaves behind may be torn or damaged.  This package is
that assumption made executable:

* :mod:`repro.robust.journal` — an append-only, incrementally-flushed,
  per-record-checksummed journal for sketch logs and traces, with a
  ``salvage()`` reader that recovers the longest valid prefix of a
  damaged file instead of raising;
* :mod:`repro.robust.inject` — seeded, deterministic fault injectors
  (truncate / garble / drop / kill-recorder-at-event) used by the test
  suite and the ``--inject-fault`` CLI flag, plus the chaos harness
  (:class:`ChaosSpec` / :class:`ChaosInjector`) behind ``pres reproduce
  --chaos``;
* :mod:`repro.robust.supervise` — the exploration supervisor: attempt
  deadlines, retry with deterministic backoff, worker-death detection,
  pool rebuild, and serial fallback (see ``docs/resilience.md``);
* :mod:`repro.robust.doctor` — triage for any on-disk artifact or store
  directory, backing the ``pres doctor`` subcommand and its 0/1/2
  exit-code contract;
* :mod:`repro.robust.atomic` — crash-safe whole-file writes (temp file,
  fsync, atomic rename) for every serialize-the-whole-artifact path.

The replay-side counterpart — the degradation ladder that re-derives
coarser sketches from a salvaged prefix and retries — lives with the
reproduction driver in :func:`repro.core.reproducer.reproduce_degraded`.
Resumable run journals live in :mod:`repro.robust.runs`, which is *not*
re-exported here: it imports the store codec, whose import chain reaches
:mod:`repro.robust.supervise`, and must not run during this package's
own initialization.
"""

from repro.robust.atomic import atomic_write_text, atomic_writer
from repro.robust.doctor import (
    LogDiagnosis,
    StoreDiagnosis,
    examine,
    examine_store,
    write_salvaged,
)
from repro.robust.inject import (
    CHAOS_KINDS,
    ChaosInjector,
    ChaosSpec,
    FaultPlan,
    KillSwitch,
    apply_fault,
    drop_line,
    garble_file,
    parse_chaos,
    parse_fault,
    seeded_truncate_offset,
    truncate_file,
)
from repro.robust.journal import (
    JournalWriter,
    SalvageReport,
    load_sketch_journal,
    read_journal,
    read_journal_text,
    salvage,
    salvage_text,
    sketch_journal_writer,
    sketch_log_from_salvage,
    write_sketch_journal,
)
from repro.robust.supervise import (
    SuperviseConfig,
    Supervisor,
    backoff_delay,
    default_retry_budget,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosInjector",
    "ChaosSpec",
    "FaultPlan",
    "JournalWriter",
    "KillSwitch",
    "LogDiagnosis",
    "SalvageReport",
    "StoreDiagnosis",
    "SuperviseConfig",
    "Supervisor",
    "apply_fault",
    "atomic_write_text",
    "atomic_writer",
    "backoff_delay",
    "default_retry_budget",
    "drop_line",
    "examine",
    "examine_store",
    "garble_file",
    "load_sketch_journal",
    "parse_chaos",
    "parse_fault",
    "read_journal",
    "read_journal_text",
    "salvage",
    "salvage_text",
    "seeded_truncate_offset",
    "sketch_journal_writer",
    "sketch_log_from_salvage",
    "truncate_file",
    "write_salvaged",
    "write_sketch_journal",
]
