"""repro — a reproduction of PRES (SOSP 2009).

PRES (probabilistic replay via execution sketching) reproduces concurrency
bugs on multiprocessors by recording only a cheap *sketch* of the
production run and searching the unrecorded schedule space at diagnosis
time, learning from every failed attempt.

Quickstart::

    from repro import SketchKind, record, reproduce, replay_complete

    recorded = record(my_program, sketch=SketchKind.SYNC, seed=failing_seed)
    assert recorded.failed
    report = reproduce(recorded)
    if report.success:
        trace = replay_complete(my_program, report.complete_log)  # every time

Programs are written against the simulator API (:mod:`repro.sim`); the
application suite from the paper's evaluation lives in :mod:`repro.apps`.
"""

from repro.core.cost import DEFAULT_COST_MODEL, CostModel
from repro.core.diagnose import Diagnosis, diagnose
from repro.core.explorer import ExplorerConfig
from repro.core.feedback import AttemptCache
from repro.core.full_replay import CompleteLog, replay_complete
from repro.core.parallel import ParallelExplorer
from repro.core.recorder import RecordedRun, record, record_with_trace
from repro.core.reproducer import (
    ReproductionReport,
    Reproducer,
    reproduce,
    reproduce_degraded,
)
from repro.core.sketches import SKETCH_ORDER, SketchKind, parse_sketch_kind
from repro.core.systematic import SystematicResult, systematic_search
from repro.obs import MetricsRegistry, ObsSession, Tracer
from repro.sim import (
    Machine,
    MachineConfig,
    Program,
    RandomScheduler,
    ThreadContext,
    Trace,
)
from repro.sim.failures import Failure, FailureKind

__version__ = "0.1.0"

__all__ = [
    "AttemptCache",
    "CompleteLog",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Diagnosis",
    "ExplorerConfig",
    "Failure",
    "FailureKind",
    "Machine",
    "MachineConfig",
    "MetricsRegistry",
    "ObsSession",
    "ParallelExplorer",
    "Program",
    "RandomScheduler",
    "RecordedRun",
    "Reproducer",
    "ReproductionReport",
    "SKETCH_ORDER",
    "SketchKind",
    "SystematicResult",
    "ThreadContext",
    "Trace",
    "Tracer",
    "diagnose",
    "parse_sketch_kind",
    "record",
    "record_with_trace",
    "replay_complete",
    "reproduce",
    "reproduce_degraded",
    "systematic_search",
]
