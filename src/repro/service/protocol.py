"""The wire contract: routes, request validation, protocol errors.

This module is the single source of truth for the service's HTTP
surface.  The server builds its dispatch table from :data:`ROUTES`, the
API reference (``docs/service.md``) is checked against it by
``tests/service/test_docs_routes.py``, and the client mirrors it method
by method — so an endpoint cannot exist without being documented, and a
documented endpoint cannot silently disappear.

Nothing here touches sockets or the job engine; it is pure data and
validation, unit-testable without a running server.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "Route",
    "ROUTES",
    "match",
    "ProtocolError",
    "JobRequest",
    "TENANT_RE",
]

#: Tenant namespaces double as store subdirectories, so the charset is
#: restricted to names that are safe as a single path component.
TENANT_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,31}$")

#: Sketch kinds a job may request (mirrors ``pres record --sketch``).
SKETCH_KINDS = ("none", "sync", "sys", "func", "bb", "rw")


@dataclass(frozen=True)
class Route:
    """One endpoint: the method + path pattern the server serves.

    ``pattern`` uses ``{name}`` placeholders for path parameters
    (currently only ``{id}``).  ``name`` keys the server's handler
    lookup (``_h_<name>``) and the doc check.
    """

    method: str
    pattern: str
    name: str
    summary: str


#: Every endpoint the server serves, in documentation order.
ROUTES: Tuple[Route, ...] = (
    Route("GET", "/healthz", "health", "liveness + drain state"),
    Route("GET", "/metrics", "metrics", "service + engine metrics snapshot"),
    Route("POST", "/jobs", "submit", "submit a reproduction job"),
    Route("GET", "/jobs", "list_jobs", "list jobs (optionally by tenant)"),
    Route("GET", "/jobs/{id}", "status", "job status document"),
    Route("GET", "/jobs/{id}/result", "result", "final report for a finished job"),
    Route("POST", "/jobs/{id}/cancel", "cancel", "cancel a queued or running job"),
)


def _pattern_re(pattern: str) -> "re.Pattern[str]":
    parts = []
    for piece in re.split(r"(\{[a-z]+\})", pattern):
        if piece.startswith("{") and piece.endswith("}"):
            parts.append(f"(?P<{piece[1:-1]}>[^/]+)")
        else:
            parts.append(re.escape(piece))
    return re.compile("^" + "".join(parts) + "$")


_COMPILED: Tuple[Tuple[Route, "re.Pattern[str]"], ...] = tuple(
    (route, _pattern_re(route.pattern)) for route in ROUTES
)


class ProtocolError(Exception):
    """A request the protocol rejects; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def match(method: str, path: str) -> Tuple[Route, Dict[str, str]]:
    """Resolve ``(method, path)`` to a route and its path parameters.

    Raises :class:`ProtocolError` 404 when no pattern matches the path
    and 405 (message lists the allowed methods) when the path matches
    but only under other methods.
    """
    allowed = []
    for route, regex in _COMPILED:
        found = regex.match(path)
        if found is None:
            continue
        if route.method == method:
            return route, found.groupdict()
        allowed.append(route.method)
    if allowed:
        raise ProtocolError(405, ", ".join(sorted(set(allowed))))
    raise ProtocolError(404, f"no route for {path}")


@dataclass(frozen=True)
class JobRequest:
    """A validated job submission (the body of ``POST /jobs``).

    ``jobs=0`` means "use the server's default parallelism"; any other
    value pins the exploration's ``jobs`` for this job.  Either way the
    report is byte-identical — the engine's jobs-invariance contract
    (``docs/parallel.md``) is what makes the service's byte-for-byte
    guarantee automatic rather than heroic.
    """

    bug: str
    tenant: str = "default"
    sketch: str = "sync"
    seed: Optional[int] = None
    max_attempts: int = 400
    jobs: int = 0
    ncpus: int = 4
    meta: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.bug or not isinstance(self.bug, str):
            raise ProtocolError(400, "bug: required non-empty string")
        if not TENANT_RE.match(self.tenant):
            raise ProtocolError(
                400, f"tenant: must match {TENANT_RE.pattern!r}"
            )
        if self.sketch not in SKETCH_KINDS:
            raise ProtocolError(
                400, f"sketch: must be one of {', '.join(SKETCH_KINDS)}"
            )
        if self.seed is not None and (
            not isinstance(self.seed, int) or isinstance(self.seed, bool)
        ):
            raise ProtocolError(400, "seed: must be an integer or null")
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ProtocolError(400, "max_attempts: must be a positive integer")
        if not isinstance(self.jobs, int) or self.jobs < 0:
            raise ProtocolError(400, "jobs: must be a non-negative integer")
        if not isinstance(self.ncpus, int) or not 1 <= self.ncpus <= 64:
            raise ProtocolError(400, "ncpus: must be an integer in [1, 64]")
        if not isinstance(self.meta, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in self.meta.items()
        ):
            raise ProtocolError(400, "meta: must map strings to strings")

    @classmethod
    def from_json(cls, body: bytes) -> "JobRequest":
        """Parse and validate a request body; 400 on any defect."""
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"body: invalid JSON ({exc})") from exc
        if not isinstance(doc, dict):
            raise ProtocolError(400, "body: expected a JSON object")
        known = {
            "bug", "tenant", "sketch", "seed", "max_attempts",
            "jobs", "ncpus", "meta",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ProtocolError(400, f"unknown fields: {', '.join(unknown)}")
        if "bug" not in doc:
            raise ProtocolError(400, "bug: required non-empty string")
        try:
            return cls(**doc)
        except TypeError as exc:
            raise ProtocolError(400, f"body: {exc}") from exc

    def to_json(self) -> Dict[str, object]:
        """The document form echoed back in status responses."""
        return {
            "bug": self.bug,
            "tenant": self.tenant,
            "sketch": self.sketch,
            "seed": self.seed,
            "max_attempts": self.max_attempts,
            "jobs": self.jobs,
            "ncpus": self.ncpus,
            "meta": dict(sorted(self.meta.items())),
        }
