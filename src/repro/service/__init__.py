"""Replay as a service: a multi-tenant reproduction server.

The package turns the reproduction pipeline into a long-lived server
(``pres serve``) that accepts jobs over HTTP and multiplexes them over
one warm engine — a shared replay worker pool
(:class:`~repro.core.parallel.PoolLease`) and per-tenant cross-run
attempt stores — so the Nth reproduction of a recurring failure costs a
store lookup, not a cold exploration.

Layers (see ``docs/service.md`` for the API reference and runbook):

* :mod:`repro.service.protocol` — routes, request validation (pure).
* :mod:`repro.service.jobs` — admission, budgets, execution, drain.
* :mod:`repro.service.server` — HTTP/1.1 on ``asyncio.start_server``.
* :mod:`repro.service.client` — stdlib client (CLI, bench, tests).

The service adds *no* determinism caveats: a job's report is
byte-identical to the serial CLI run of the same request, which CI
checks with ``cmp``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import BackpressureError, Job, JobManager
from repro.service.protocol import JobRequest, ProtocolError, ROUTES, Route
from repro.service.server import ReplayServer, ServiceThread, serve

__all__ = [
    "BackpressureError",
    "Job",
    "JobManager",
    "JobRequest",
    "ProtocolError",
    "ReplayServer",
    "Route",
    "ROUTES",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "serve",
]
