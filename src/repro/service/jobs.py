"""Job lifecycle: admission, scheduling, execution, cancellation.

:class:`JobManager` multiplexes many concurrent reproduction jobs over
*one* warm engine: a single shared :class:`~repro.core.parallel.PoolLease`
(one process pool lent to every parallel exploration) and one
:class:`~repro.store.persistent.PersistentAttemptCache` per tenant (all
rooted under one store directory).  Jobs run on a bounded thread pool —
the exploration engine releases the GIL around its process-pool waits,
and serial jobs are dominated by simulator stepping, so a handful of
threads keeps all cores busy without oversubscribing the host.

Determinism: a job's *report* is a pure function of its request — the
engine's jobs-invariance and store-invariance contracts guarantee the
rendered report is byte-identical to the serial CLI run of the same
``(bug, sketch, seed, max_attempts)``, whatever the pool, store
temperature, or concurrency.  Queue order keys on the admission
sequence number (FIFO deque), never on timestamps; wall-clock readings
below exist only for latency *measurement* and are marked with the
determinism pragma the linter checks for.

All bookkeeping (queues, job states, metrics) mutates only on the
asyncio loop thread; worker threads touch nothing but their own job's
payload plus the internally-locked cache/store/lease tiers.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.apps import get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.parallel import PoolLease
from repro.core.recorder import record
from repro.core.reproducer import render_report, reproduce
from repro.core.sketches import parse_sketch_kind
from repro.obs.metrics import MetricsRegistry
from repro.service.protocol import JobRequest, ProtocolError
from repro.sim import MachineConfig
from repro.store.persistent import PersistentAttemptCache

__all__ = ["Job", "JobManager", "BackpressureError"]

#: Job states, in lifecycle order.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled",
)
_FINISHED = (DONE, FAILED, CANCELLED)


class BackpressureError(ProtocolError):
    """Admission refused: the queue or a tenant budget is full (429)."""

    def __init__(self, message: str) -> None:
        super().__init__(429, message)


@dataclass
class Job:
    """One admitted job and everything the API reports about it."""

    id: str
    seq: int
    request: JobRequest
    state: str = QUEUED
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    latency_s: Optional[float] = None
    cancel_requested: bool = False
    started: Optional[float] = field(default=None, repr=False)

    def status_doc(self) -> Dict[str, object]:
        """The ``GET /jobs/{id}`` document."""
        doc: Dict[str, object] = {
            "id": self.id,
            "seq": self.seq,
            "state": self.state,
            "request": self.request.to_json(),
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.latency_s is not None:
            doc["latency_s"] = self.latency_s
        return doc


class JobManager:
    """Admit, schedule, execute, and account for reproduction jobs.

    :param store_root: directory holding one attempt-store namespace per
        tenant (``<store_root>/<tenant>/``); jobs of one tenant share a
        warm cache, tenants never see each other's shards.
    :param slots: concurrent job executions (thread-pool width).
    :param max_queued: bound on jobs waiting for a slot; admission past
        it is refused with 429 (clients retry with backoff).
    :param tenant_slots: per-tenant bound on jobs admitted but not yet
        finished — one noisy tenant cannot occupy the whole queue.
    :param pool_jobs: width of the shared replay worker pool lent to
        parallel explorations.
    :param default_jobs: exploration ``jobs`` applied when a request
        leaves ``jobs`` at 0.
    """

    def __init__(
        self,
        store_root: str,
        slots: int = 4,
        max_queued: int = 256,
        tenant_slots: int = 64,
        pool_jobs: int = 2,
        default_jobs: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store_root = store_root
        self.slots = max(1, slots)
        self.max_queued = max(1, max_queued)
        self.tenant_slots = max(1, tenant_slots)
        self.default_jobs = max(1, default_jobs)
        self.lease = PoolLease(max(2, pool_jobs))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.jobs: Dict[str, Job] = {}
        self.queue: Deque[Job] = deque()
        self.running: Dict[str, "asyncio.Future"] = {}
        self.draining = False
        self._seq = 0
        self._caches: Dict[str, PersistentAttemptCache] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="pres-job"
        )

    # -- loop binding --------------------------------------------------

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach to the serving loop (called once, before traffic)."""
        self._loop = loop

    # -- admission (loop thread) ---------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Admit a job or refuse it; never blocks.

        Raises :class:`ProtocolError` 503 while draining and
        :class:`BackpressureError` (429) when the global queue or the
        tenant's in-flight budget is full.
        """
        if self.draining:
            raise ProtocolError(503, "draining; not accepting jobs")
        if len(self.queue) >= self.max_queued:
            raise BackpressureError(
                f"queue full ({self.max_queued} jobs waiting); retry later"
            )
        in_flight = sum(
            1 for job in self.jobs.values()
            if job.request.tenant == request.tenant
            and job.state in (QUEUED, RUNNING)
        )
        if in_flight >= self.tenant_slots:
            raise BackpressureError(
                f"tenant {request.tenant!r} has {in_flight} jobs in flight "
                f"(budget {self.tenant_slots}); retry later"
            )
        self._seq += 1
        job = Job(id=f"j{self._seq:06d}", seq=self._seq, request=request)
        self.jobs[job.id] = job
        self.queue.append(job)
        self.metrics.counter("service.submitted").inc()
        self.metrics.counter(f"service.tenant.{request.tenant}.submitted").inc()
        self._cache_for(request.tenant)  # created on the loop thread
        self._pump()
        return job

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ProtocolError(404, f"no job {job_id!r}")
        return job

    def list_jobs(self, tenant: Optional[str] = None) -> list:
        """Status docs for every job, admission order (oldest first)."""
        return [
            job.status_doc()
            for job in sorted(self.jobs.values(), key=lambda j: j.seq)
            if tenant is None or job.request.tenant == tenant
        ]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job now, a running job at its next boundary.

        A finished job refuses with 409 — its outcome is already final.
        """
        job = self.get(job_id)
        if job.state in _FINISHED:
            raise ProtocolError(409, f"job {job_id} already {job.state}")
        if job.state == QUEUED:
            self.queue.remove(job)
            self._settle(job, CANCELLED)
        else:
            # Best effort: the exploration runs to completion but the
            # result is discarded and the job lands in ``cancelled``.
            job.cancel_requested = True
        return job

    # -- scheduling (loop thread) --------------------------------------

    def _pump(self) -> None:
        assert self._loop is not None, "JobManager.bind() not called"
        while self.queue and len(self.running) < self.slots:
            job = self.queue.popleft()
            job.state = RUNNING
            job.started = time.perf_counter()  # determinism: ok (latency only)
            future = self._loop.run_in_executor(
                self._executor, self._execute, job
            )
            self.running[job.id] = future
            future.add_done_callback(
                lambda done, job=job: self._finish(job, done)
            )
        self.metrics.gauge("service.queue_depth").set(len(self.queue))
        self.metrics.gauge("service.running").set(len(self.running))

    def _finish(self, job: Job, future: "asyncio.Future") -> None:
        self.running.pop(job.id, None)
        if job.started is not None:
            job.latency_s = time.perf_counter() - job.started  # determinism: ok (latency only)
        try:
            outcome = future.result()
        except Exception as exc:  # worker thread raised
            job.error = f"{type(exc).__name__}: {exc}"
            self._settle(job, FAILED)
        else:
            if job.cancel_requested:
                self._settle(job, CANCELLED)
            elif outcome.get("error"):
                job.error = str(outcome["error"])
                self._settle(job, FAILED)
            else:
                job.result = outcome
                # Aggregate engine totals, charged here (loop thread) so
                # concurrent jobs never race on the registry.
                self.metrics.counter("service.attempts").inc(
                    int(outcome.get("attempts", 0))
                )
                self.metrics.counter("service.store_hits").inc(
                    int(outcome.get("cache_hits", 0))
                )
                self._settle(job, DONE)
        self._pump()

    def _settle(self, job: Job, state: str) -> None:
        job.state = state
        tenant = job.request.tenant
        self.metrics.counter(f"service.{state}").inc()
        self.metrics.counter(f"service.tenant.{tenant}.{state}").inc()
        if job.latency_s is not None and state == DONE:
            self.metrics.histogram("service.latency_s").observe(job.latency_s)

    # -- execution (worker thread) -------------------------------------

    def _cache_for(self, tenant: str) -> PersistentAttemptCache:
        cache = self._caches.get(tenant)
        if cache is None:
            cache = PersistentAttemptCache(os.path.join(self.store_root, tenant))
            cache.bind_metrics(self.metrics)
            self._caches[tenant] = cache
        return cache

    def _execute(self, job: Job) -> Dict[str, object]:
        """The whole pipeline for one job: seed -> record -> reproduce.

        Runs on a worker thread.  Returns a result document; a pipeline
        that cannot produce a report returns ``{"error": ...}`` instead
        of raising, so expected outcomes ("no failing seed") read as
        job-level failures, not server faults.
        """
        request = job.request
        spec = get_bug(request.bug)
        seed = request.seed
        if seed is None:
            seed = find_failing_seed(spec, ncpus=request.ncpus)
            if seed is None:
                return {"error": "no failing seed found within the search budget"}
        recorded = record(
            spec.make_program(),
            sketch=parse_sketch_kind(request.sketch),
            seed=seed,
            config=MachineConfig(ncpus=request.ncpus),
            oracle=spec.oracle,
        )
        if not recorded.failed:
            return {"error": f"seed {seed} did not fail; nothing to reproduce"}
        jobs = request.jobs or self.default_jobs
        config = ExplorerConfig(max_attempts=request.max_attempts, jobs=jobs)
        report = reproduce(
            recorded,
            config,
            cache=self._cache_for(request.tenant),
            pool=self.lease if jobs > 1 else None,
        )
        return {
            "bug": request.bug,
            "seed": seed,
            "success": report.success,
            "attempts": report.attempts,
            "cache_hits": report.cache_hits,
            "report": render_report(report),
        }

    # -- shutdown (loop thread) ----------------------------------------

    async def drain(self) -> Dict[str, int]:
        """Graceful shutdown: refuse new work, finish what is running.

        Queued jobs are cancelled (their submitters can resubmit —
        reports are pure, nothing is lost), running jobs complete, then
        the executor, the shared pool, and every tenant store close.
        Mirrors the CLI's Ctrl-C contract: in-flight state is flushed,
        never abandoned.
        """
        self.draining = True
        cancelled = 0
        while self.queue:
            self._settle(self.queue.popleft(), CANCELLED)
            cancelled += 1
        pending = list(self.running.values())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self.lease.close()
        for cache in self._caches.values():
            cache.close()
        finished = sum(1 for j in self.jobs.values() if j.state in _FINISHED)
        return {"cancelled": cancelled, "finished": finished}

    def stats_doc(self) -> Dict[str, object]:
        """The ``GET /healthz`` payload (beyond the liveness bit)."""
        return {
            "status": "draining" if self.draining else "ok",
            "queued": len(self.queue),
            "running": len(self.running),
            "jobs": len(self.jobs),
            "slots": self.slots,
            "pool_builds": self.lease.builds,
        }
