"""The HTTP face: handcrafted HTTP/1.1 on ``asyncio.start_server``.

No web framework — the service speaks a deliberately small HTTP/1.1
subset (one request per connection, ``Connection: close``) parsed by
hand, which keeps the dependency set at exactly the standard library and
the attack surface readable in one screen.  Routing comes from
:data:`~repro.service.protocol.ROUTES`; each route name maps to a
``_h_<name>`` method here, and a startup assertion keeps the two in
lockstep.

Responses are JSON with sorted keys except ``GET /jobs/{id}/result``
with ``Accept: text/plain``, which returns the report bytes verbatim —
the byte-for-byte surface the CI smoke job compares against the serial
CLI.

Graceful shutdown mirrors the CLI's Ctrl-C contract: SIGTERM/SIGINT
flip ``/healthz`` to ``draining`` (load balancers stop routing), the
listener closes, running jobs finish and their state flushes to the
store, then the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.robust.atomic import atomic_write_text
from repro.service.jobs import DONE, FAILED, JobManager
from repro.service.protocol import JobRequest, ProtocolError, ROUTES, match

__all__ = ["ReplayServer", "ServiceThread", "serve"]

#: Largest request body accepted (jobs are small JSON documents).
MAX_BODY = 1 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(
    status: int,
    payload: object,
    *,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    if content_type == "application/json":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    else:
        body = payload if isinstance(payload, bytes) else str(payload).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def _error(status: int, message: str) -> bytes:
    extra = (("Retry-After", "1"),) if status == 429 else ()
    return _response(status, {"error": message}, extra_headers=extra)


class ReplayServer:
    """Request parsing + dispatch over a :class:`JobManager`."""

    def __init__(self, manager: JobManager, metrics: Optional[MetricsRegistry] = None) -> None:
        self.manager = manager
        self.metrics = metrics if metrics is not None else manager.metrics
        self._handlers = {}
        for route in ROUTES:
            handler = getattr(self, f"_h_{route.name}", None)
            assert handler is not None, f"route {route.name!r} has no handler"
            self._handlers[route.name] = handler
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str, port: int) -> int:
        """Bind and listen; returns the bound port (useful with port 0)."""
        self.manager.bind(asyncio.get_running_loop())
        self._server = await asyncio.start_server(self._serve_one, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- one connection ------------------------------------------------

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            out = await self._handle(reader)
        except ProtocolError as exc:
            out = _error(exc.status, exc.message)
        except Exception as exc:  # never leak a traceback onto the wire
            out = _error(500, f"{type(exc).__name__}: {exc}")
        try:
            writer.write(out)
            await writer.drain()
        finally:
            writer.close()

    async def _handle(self, reader: asyncio.StreamReader) -> bytes:
        method, path, headers = await self._read_head(reader)
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            return _error(413, f"body larger than {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        path, _, query = path.partition("?")
        try:
            route, params = match(method, path)
        except ProtocolError as exc:
            if exc.status == 405:
                return _response(
                    405, {"error": "method not allowed"},
                    extra_headers=(("Allow", exc.message),),
                )
            raise
        self.metrics.counter(f"service.http.{route.name}").inc()
        return self._handlers[route.name](params, body, headers, query)

    async def _read_head(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError) as exc:
            raise ProtocolError(400, f"unreadable request: {exc}") from exc
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(400, "malformed request line")
        method, path = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    # -- handlers (one per route name) ---------------------------------

    def _h_health(self, params, body, headers, query) -> bytes:
        doc = self.manager.stats_doc()
        return _response(503 if self.manager.draining else 200, doc)

    def _h_metrics(self, params, body, headers, query) -> bytes:
        return _response(200, self.metrics.snapshot())

    def _h_submit(self, params, body, headers, query) -> bytes:
        request = JobRequest.from_json(body)
        job = self.manager.submit(request)
        return _response(202, job.status_doc())

    def _h_list_jobs(self, params, body, headers, query) -> bytes:
        tenant = None
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == "tenant" and value:
                tenant = value
        return _response(200, {"jobs": self.manager.list_jobs(tenant)})

    def _h_status(self, params, body, headers, query) -> bytes:
        return _response(200, self.manager.get(params["id"]).status_doc())

    def _h_result(self, params, body, headers, query) -> bytes:
        job = self.manager.get(params["id"])
        if job.state == FAILED:
            raise ProtocolError(409, f"job {job.id} failed: {job.error}")
        if job.state != DONE or job.result is None:
            raise ProtocolError(409, f"job {job.id} is {job.state}, not done")
        if "text/plain" in headers.get("accept", ""):
            report = job.result["report"]
            return _response(200, report, content_type="text/plain")
        return _response(200, dict(job.result, id=job.id))

    def _h_cancel(self, params, body, headers, query) -> bytes:
        return _response(200, self.manager.cancel(params["id"]).status_doc())


async def serve(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8979,
    *,
    slots: int = 4,
    max_queued: int = 256,
    tenant_slots: int = 64,
    pool_jobs: int = 2,
    default_jobs: int = 1,
    port_file: Optional[str] = None,
    ready: Optional[threading.Event] = None,
    stop: Optional[asyncio.Event] = None,
    announce=print,
) -> None:
    """Run the service until SIGTERM/SIGINT (or ``stop`` is set).

    ``port_file`` (written atomically once bound) lets wrappers — the CI
    smoke job, the bench harness — serve on an ephemeral ``--port 0``
    and discover the real port without parsing log output.
    """
    manager = JobManager(
        store_root,
        slots=slots,
        max_queued=max_queued,
        tenant_slots=tenant_slots,
        pool_jobs=pool_jobs,
        default_jobs=default_jobs,
    )
    server = ReplayServer(manager)
    bound = await server.start(host, port)
    if port_file:
        atomic_write_text(port_file, f"{bound}\n")
    announce(f"pres serve: listening on http://{host}:{bound} "
             f"(store {store_root}, {slots} slots)")
    stop = stop if stop is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
    if ready is not None:
        ready.set()
    await stop.wait()
    manager.draining = True  # /healthz flips to draining immediately
    announce("pres serve: draining (finishing running jobs) ...")
    await server.stop()
    summary = await manager.drain()
    announce(f"pres serve: drained ({summary['finished']} finished, "
             f"{summary['cancelled']} cancelled); bye")


class ServiceThread:
    """An in-process server for tests and benchmarks.

    Boots :func:`serve` on a background thread with its own event loop,
    waits until the socket is bound, and exposes the ephemeral port.
    ``close()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(self, store_root: str, **kwargs) -> None:
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None
        port_path = kwargs.pop("port_file", None)

        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def _announce(line: str) -> None:
                prefix = "pres serve: listening on http://"
                if line.startswith(prefix):
                    self.port = int(line.rsplit(":", 1)[1].split()[0].rstrip("/"))

            await serve(
                store_root, port=0, stop=self._stop, ready=self._ready,
                port_file=port_path, announce=_announce, **kwargs,
            )

        def _run() -> None:
            try:
                asyncio.run(_main())
            except BaseException as exc:  # surface boot failures to join()
                self._failure = exc
                self._ready.set()

        self._thread = threading.Thread(target=_run, name="pres-serve", daemon=True)
        self._thread.start()
        self._ready.wait(30.0)
        if self._failure is not None:
            raise RuntimeError(f"service failed to start: {self._failure}")
        if self.port is None:
            raise RuntimeError("service did not bind within 30s")

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self) -> None:
        """Graceful drain, same path as SIGTERM; joins the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(60.0)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
