"""A tiny stdlib client for the reproduction service.

One method per route in :data:`~repro.service.protocol.ROUTES`, built on
``http.client`` — the CLI (``pres submit`` / ``pres jobs``), the E15
bench harness, and the tests all speak through this class, so the wire
format is exercised by every consumer, not just the smoke job.

Polling (:meth:`wait_for`) is a bounded loop over a fixed sleep — it
reads no clock, so nothing here trips the service determinism lint, and
a wedged server surfaces as a clean :class:`ServiceError` instead of a
hang.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional
from urllib.parse import urlsplit

from repro.service.protocol import JobRequest

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response (or no response at all); carries the status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Speak the service protocol to one server.

    :param url: base URL, e.g. ``http://127.0.0.1:8979``.
    """

    def __init__(self, url: str) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"expected an http:// URL, got {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        accept: str = "application/json",
    ):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Accept": accept}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                raise ServiceError(0, f"no response from {self.host}:{self.port} "
                                      f"({exc})") from exc
            if response.status >= 400:
                try:
                    message = json.loads(data.decode("utf-8"))["error"]
                except (ValueError, KeyError, UnicodeDecodeError):
                    message = data.decode("utf-8", "replace").strip()
                raise ServiceError(response.status, message)
            if accept == "text/plain":
                return data.decode("utf-8")
            return json.loads(data.decode("utf-8"))
        finally:
            conn.close()

    # -- one method per route ------------------------------------------

    def health(self) -> Dict:
        """``GET /healthz`` (raises :class:`ServiceError` while draining)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        """``GET /metrics``: the service + engine metrics snapshot."""
        return self._request("GET", "/metrics")

    def submit(self, request: JobRequest) -> Dict:
        """``POST /jobs``: returns the admitted job's status doc (202)."""
        return self._request("POST", "/jobs", body=request.to_json())

    def jobs(self, tenant: Optional[str] = None) -> List[Dict]:
        """``GET /jobs``: status docs, admission order."""
        path = f"/jobs?tenant={tenant}" if tenant else "/jobs"
        return self._request("GET", path)["jobs"]

    def status(self, job_id: str) -> Dict:
        """``GET /jobs/{id}``."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        """``GET /jobs/{id}/result`` as JSON (409 until the job is done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def result_text(self, job_id: str) -> str:
        """``GET /jobs/{id}/result`` as the verbatim report bytes."""
        return self._request("GET", f"/jobs/{job_id}/result", accept="text/plain")

    def cancel(self, job_id: str) -> Dict:
        """``POST /jobs/{id}/cancel``."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    # -- convenience ---------------------------------------------------

    def wait_for(self, job_id: str, interval: float = 0.05,
                 max_polls: int = 2400) -> Dict:
        """Poll until the job finishes; returns its final status doc.

        Bounded: after ``max_polls`` status reads (2 minutes at the
        defaults) an unfinished job raises :class:`ServiceError` 0.
        """
        doc: Dict = {}
        for _ in range(max_polls):
            doc = self.status(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            time.sleep(interval)
        raise ServiceError(0, f"job {job_id} still {doc.get('state')!r} "
                              f"after {max_polls} polls")
