"""Executed-event records.

An :class:`Event` is one *completed* operation: the machine emits exactly
one per step, in global execution order.  Events carry enough to (a) feed
sketch recorders, (b) run happens-before race analysis offline, and (c)
check replay fidelity (values included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.sim.ops import Address, Op, OpKind


@dataclass(frozen=True)
class Event:
    """One executed operation in the global order.

    :param gidx: global index (position in the trace).
    :param tid: thread that executed the operation.
    :param kind: operation kind.
    :param addr: memory address, for memory kinds.
    :param obj: synchronization object name / joined tid, for sync kinds.
    :param name: syscall or function name.
    :param label: basic-block label.
    :param args: syscall arguments (needed to pair channel sends/recvs and
        to check replay conformance of SYS-level sketches).
    :param value: observed value — the loaded value for READ, stored value
        for WRITE, result for RMW/CAS/SYSCALL, spawned tid for SPAWN.
    :param cpu: CPU the thread is pinned on.
    """

    gidx: int
    tid: int
    kind: OpKind
    addr: Optional[Address] = None
    obj: Any = None
    name: Optional[str] = None
    label: Optional[str] = None
    args: Tuple[Any, ...] = ()
    value: Any = None
    cpu: int = 0

    @classmethod
    def from_op(
        cls, gidx: int, tid: int, cpu: int, op: Op, value: Any = None
    ) -> "Event":
        return cls(
            gidx=gidx,
            tid=tid,
            kind=op.kind,
            addr=op.addr,
            obj=op.obj,
            name=op.name,
            label=op.label,
            args=op.args if op.kind is OpKind.SYSCALL else (),
            value=value,
            cpu=cpu,
        )

    def signature(self) -> Tuple[Any, ...]:
        """Identity of *what* executed, excluding position and value.

        Two events with equal signatures are "the same program action";
        sketch conformance compares signatures, not values, because a
        diverged value is a symptom the monitor handles separately.
        """
        return (self.tid, self.kind, self.addr, self.obj, self.name, self.label)

    def describe(self) -> str:
        parts = [f"#{self.gidx}", f"T{self.tid}", self.kind.value]
        if self.addr is not None:
            parts.append(repr(self.addr))
        if self.obj is not None:
            parts.append(repr(self.obj))
        if self.name is not None:
            parts.append(self.name)
        if self.label is not None:
            parts.append(self.label)
        return " ".join(parts)
