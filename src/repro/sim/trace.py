"""Execution traces.

A :class:`Trace` is everything one run produced: the event list in global
order, the schedule (the exact sequence of scheduler decisions — which is a
*complete* replay log), the final shared-memory snapshot, captured output,
the failure (if any) and timing figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.failures import Failure
from repro.sim.ops import Address, OpKind
from repro.sim.vtime import ClockSummary


@dataclass
class Trace:
    """The complete record of one simulated execution."""

    program_name: str
    events: List[Event] = field(default_factory=list)
    schedule: List[int] = field(default_factory=list)
    final_memory: Dict[Address, Any] = field(default_factory=dict)
    stdout: List[Any] = field(default_factory=list)
    files: Dict[str, List[Any]] = field(default_factory=dict)
    thread_returns: Dict[int, Any] = field(default_factory=dict)
    #: thread id -> body function name ("worker", "rotator", ...)
    thread_names: Dict[int, str] = field(default_factory=dict)
    failure: Optional[Failure] = None
    clock: Optional[ClockSummary] = None
    steps: int = 0
    ncpus: int = 1
    #: set when a replay scheduler aborted the run (sketch divergence);
    #: the trace then covers only the prefix up to the abort.
    divergence: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    @property
    def diverged(self) -> bool:
        return self.divergence is not None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def events_of(self, tid: int) -> List[Event]:
        """Events executed by one thread, in program order."""
        return [e for e in self.events if e.tid == tid]

    def events_at(self, addr: Address) -> List[Event]:
        """Memory events touching exactly this address, in global order."""
        return [e for e in self.events if e.addr == addr]

    def tids(self) -> List[int]:
        """Thread ids that executed at least one event, ascending."""
        return sorted({e.tid for e in self.events})

    def thread_label(self, tid: int) -> str:
        """Display label: 'T<tid>:<body name>' when the name is known."""
        name = self.thread_names.get(tid)
        return f"T{tid}:{name}" if name else f"T{tid}"

    def count_kind(self, kind: OpKind) -> int:
        """Number of executed events of one kind."""
        return sum(1 for e in self.events if e.kind is kind)

    def access_index(self) -> Dict[Tuple[int, Address], int]:
        """Per-(thread, address) memory-access counts.

        This is the coordinate system replay constraints use: the *k*-th
        access by thread *t* to address *a* names the same program action
        across different schedules as long as the thread's control flow has
        not diverged.
        """
        counts: Dict[Tuple[int, Address], int] = {}
        for event in self.events:
            if event.kind in (
                OpKind.READ,
                OpKind.WRITE,
                OpKind.RMW,
                OpKind.CAS,
                OpKind.FREE,
            ):
                key = (event.tid, event.addr)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def describe(self, limit: int = 20) -> str:
        """Multi-line human-readable summary (first ``limit`` events)."""
        lines = [
            f"trace of {self.program_name}: {len(self.events)} events, "
            f"{len(self.tids())} threads, "
            f"{'FAILED: ' + self.failure.describe() if self.failure else 'ok'}"
        ]
        lines.extend(e.describe() for e in self.events[:limit])
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more")
        return "\n".join(lines)
