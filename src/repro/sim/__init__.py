"""Multiprocessor execution simulator.

This package is the substrate PRES records and replays.  It simulates a
shared-memory multiprocessor at the granularity of individual operations:
application threads are Python generators that *yield*
:class:`~repro.sim.ops.Op` objects (loads, stores, lock acquisitions,
system calls, ...) and a :class:`~repro.sim.machine.Machine` decides, at
every step, which thread's pending operation executes next.

Because every source of non-determinism is funneled through one
:class:`~repro.sim.scheduler.Scheduler` decision per step, an execution is
completely determined by (program, params, scheduler decisions).  That is
exactly the property PRES needs: "record" means remembering a subset of the
decision outcomes, and "replay" means re-running with a scheduler that
enforces them.

The simulator knows nothing about PRES; it only exposes traces, observers
and schedulers.
"""

from repro.sim.events import Event
from repro.sim.failures import Failure, FailureKind
from repro.sim.machine import Machine, MachineConfig
from repro.sim.ops import Op, OpKind
from repro.sim.persist import dump_trace, load_trace, read_trace, save_trace
from repro.sim.program import Program, ThreadContext
from repro.sim.scheduler import (
    FixedOrderScheduler,
    PCTScheduler,
    PrefixScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.sim.stats import TraceStats, trace_stats
from repro.sim.trace import Trace

__all__ = [
    "Event",
    "Failure",
    "FailureKind",
    "FixedOrderScheduler",
    "Machine",
    "MachineConfig",
    "Op",
    "OpKind",
    "PCTScheduler",
    "PrefixScheduler",
    "Program",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "ThreadContext",
    "Trace",
    "TraceStats",
    "dump_trace",
    "load_trace",
    "read_trace",
    "save_trace",
    "trace_stats",
]
