"""Virtual-time model of a multiprocessor.

The machine charges every operation's latency to the CPU its thread is
pinned on; the program's runtime is the *maximum* CPU clock, so independent
work on different CPUs overlaps for free — exactly the property recording
overhead is measured against.

Two clocks are kept side by side for the same execution:

* the **native** clock charges only the operations themselves and tells us
  what the run would have cost without any instrumentation;
* the **recorded** clock additionally charges instrumentation
  (:meth:`VirtualClock.charge_instrumentation`) and global-log appends
  (:meth:`VirtualClock.charge_log_append`).

A global-order log is a serializing resource: appending means winning an
atomic increment on a shared counter and writing a shared buffer, so the
appender must wait for the previous append to finish regardless of which
CPU it ran on.  :meth:`charge_log_append` models that with a single
``log_clock`` that every append passes through.  This is the mechanism that
makes heavyweight sketches (RW, BB) scale *badly* with CPU count while
SYNC/SYS stay flat — the shape PRES's scalability figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SimUsageError


@dataclass
class ClockSummary:
    """Final timing figures for one run."""

    native_time: int
    recorded_time: int
    per_cpu_native: List[int]
    per_cpu_recorded: List[int]

    @property
    def overhead(self) -> float:
        """Fractional slowdown caused by recording (0.0 = free)."""
        if self.native_time <= 0:
            return 0.0
        return self.recorded_time / self.native_time - 1.0

    @property
    def overhead_percent(self) -> float:
        return self.overhead * 100.0


class VirtualClock:
    """Per-CPU virtual clocks plus the serializing log clock."""

    def __init__(self, ncpus: int) -> None:
        if ncpus < 1:
            raise SimUsageError(f"ncpus must be >= 1, got {ncpus}")
        self.ncpus = ncpus
        self._native = [0] * ncpus
        self._recorded = [0] * ncpus
        self._log_clock = 0

    def cpu_of(self, tid: int) -> int:
        """Static thread-to-CPU affinity."""
        return tid % self.ncpus

    def charge_op(self, cpu: int, cost: int) -> None:
        """Charge an operation's own latency (both clocks)."""
        self._native[cpu] += cost
        self._recorded[cpu] += cost

    def charge_instrumentation(self, cpu: int, cost: int) -> None:
        """Charge CPU-local instrumentation work (recorded clock only)."""
        self._recorded[cpu] += cost

    def charge_log_append(self, cpu: int, cost: int) -> None:
        """Charge an append to the global-order log (recorded clock only).

        The append serializes: it starts no earlier than both the CPU's own
        recorded clock and the completion of the previous append anywhere.
        """
        start = max(self._recorded[cpu], self._log_clock)
        finish = start + cost
        self._log_clock = finish
        self._recorded[cpu] = finish

    def now(self) -> int:
        """Current simulated wall time (max over recorded CPU clocks)."""
        return max(self._recorded)

    def advance(self, cpu: int, duration: int) -> None:
        """Let time pass on a CPU without work being done (sleep)."""
        self._native[cpu] += duration
        self._recorded[cpu] += duration

    def summary(self) -> ClockSummary:
        return ClockSummary(
            native_time=max(self._native),
            recorded_time=max(self._recorded),
            per_cpu_native=list(self._native),
            per_cpu_recorded=list(self._recorded),
        )
