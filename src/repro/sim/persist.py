"""Trace persistence: serialize executions for offline analysis.

A reproduced bug is most useful when the whole execution can be attached
to the bug report.  This module round-trips a :class:`~repro.sim.trace.
Trace` through a JSON-lines format: one header object, then one line per
event.  Values survive when they are JSON-representable (the simulator's
conventions — ints, strings, tuples, lists, None — all are; tuples are
tagged so they come back as tuples, which matters because addresses are
tuples).

Round-tripped traces support everything the analyses need: race
detection, lockset, timelines, diffing, and `schedule`-based re-execution.
"""

from __future__ import annotations

import json
from typing import Any, IO, List

from repro.errors import SketchFormatError
from repro.sim.events import Event
from repro.sim.failures import Failure, FailureKind
from repro.sim.ops import OpKind
from repro.sim.trace import Trace
from repro.sim.vtime import ClockSummary

_FORMAT = "pres-trace"
_VERSION = 1


def _pack(value: Any) -> Any:
    """JSON-encode simulator values, tagging tuples."""
    if isinstance(value, tuple):
        return {"__t": [_pack(v) for v in value]}
    if isinstance(value, list):
        return [_pack(v) for v in value]
    if isinstance(value, dict):
        return {"__d": [[_pack(k), _pack(v)] for k, v in value.items()]}
    return value


def _unpack(value: Any) -> Any:
    if isinstance(value, dict) and "__t" in value:
        return tuple(_unpack(v) for v in value["__t"])
    if isinstance(value, dict) and "__d" in value:
        return {_unpack(k): _unpack(v) for k, v in value["__d"]}
    if isinstance(value, list):
        return [_unpack(v) for v in value]
    return value


def dump_trace(trace: Trace, handle: IO[str]) -> None:
    """Write a trace as JSON lines: header first, then one event per line."""
    header = {
        "format": _FORMAT,
        "version": _VERSION,
        "program": trace.program_name,
        "ncpus": trace.ncpus,
        "steps": trace.steps,
        "schedule": trace.schedule,
        "stdout": _pack(trace.stdout),
        "files": _pack(trace.files),
        "final_memory": _pack(trace.final_memory),
        "thread_returns": _pack(
            {str(tid): value for tid, value in trace.thread_returns.items()}
        ),
        "thread_names": {str(tid): n for tid, n in trace.thread_names.items()},
        "divergence": trace.divergence,
        "failure": None
        if trace.failure is None
        else {
            "kind": trace.failure.kind.value,
            "where": trace.failure.where,
            "tid": trace.failure.tid,
            "gidx": trace.failure.gidx,
            "detail": trace.failure.detail,
            "involved_tids": list(trace.failure.involved_tids),
        },
        "clock": None
        if trace.clock is None
        else {
            "native_time": trace.clock.native_time,
            "recorded_time": trace.clock.recorded_time,
            "per_cpu_native": trace.clock.per_cpu_native,
            "per_cpu_recorded": trace.clock.per_cpu_recorded,
        },
    }
    handle.write(json.dumps(header) + "\n")
    for event in trace.events:
        handle.write(
            json.dumps(
                [
                    event.gidx,
                    event.tid,
                    event.kind.value,
                    _pack(event.addr),
                    _pack(event.obj),
                    event.name,
                    event.label,
                    _pack(list(event.args)),
                    _pack(event.value),
                    event.cpu,
                ]
            )
            + "\n"
        )


def load_trace(handle: IO[str]) -> Trace:
    """Read a trace written by :func:`dump_trace`."""
    header_line = handle.readline()
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SketchFormatError(f"corrupt trace header: {exc}") from None
    if header.get("format") != _FORMAT:
        raise SketchFormatError("not a PRES trace file")
    if header.get("version") != _VERSION:
        raise SketchFormatError(
            f"unsupported trace version {header.get('version')}"
        )

    events: List[Event] = []
    for line in handle:
        if not line.strip():
            continue
        try:
            row = json.loads(line)
            gidx, tid, kind, addr, obj, name, label, args, value, cpu = row
        except (json.JSONDecodeError, ValueError) as exc:
            raise SketchFormatError(f"corrupt trace event: {exc}") from None
        events.append(
            Event(
                gidx=gidx,
                tid=tid,
                kind=OpKind(kind),
                addr=_unpack(addr),
                obj=_unpack(obj),
                name=name,
                label=label,
                args=tuple(_unpack(args)),
                value=_unpack(value),
                cpu=cpu,
            )
        )

    failure = None
    if header["failure"] is not None:
        raw = header["failure"]
        failure = Failure(
            kind=FailureKind(raw["kind"]),
            where=raw["where"],
            tid=raw["tid"],
            gidx=raw["gidx"],
            detail=raw["detail"],
            involved_tids=tuple(raw["involved_tids"]),
        )
    clock = None
    if header["clock"] is not None:
        raw = header["clock"]
        clock = ClockSummary(
            native_time=raw["native_time"],
            recorded_time=raw["recorded_time"],
            per_cpu_native=raw["per_cpu_native"],
            per_cpu_recorded=raw["per_cpu_recorded"],
        )

    return Trace(
        program_name=header["program"],
        events=events,
        schedule=list(header["schedule"]),
        final_memory=_unpack(header["final_memory"]),
        stdout=_unpack(header["stdout"]),
        files=_unpack(header["files"]),
        thread_returns={
            int(tid): value
            for tid, value in _unpack(header["thread_returns"]).items()
        },
        thread_names={
            int(tid): name
            for tid, name in header.get("thread_names", {}).items()
        },
        failure=failure,
        clock=clock,
        steps=header["steps"],
        ncpus=header["ncpus"],
        divergence=header["divergence"],
    )


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        dump_trace(trace, handle)


def read_trace(path: str) -> Trace:
    """Load a trace from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_trace(handle)
