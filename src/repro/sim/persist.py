"""Trace persistence: serialize executions for offline analysis.

A reproduced bug is most useful when the whole execution can be attached
to the bug report.  This module round-trips a :class:`~repro.sim.trace.
Trace` through two formats:

* the classic JSON-lines format (one header object, then one line per
  event) written by :func:`dump_trace`;
* a crash-consistent *journal* format (:func:`save_trace_journaled`)
  built on :mod:`repro.robust.journal`, where every event is a
  checksummed record flushed as it is written and the run metadata
  becomes a completion footer — so a run that dies mid-recording leaves
  a salvageable prefix instead of nothing.

Values survive when they are JSON-representable (the simulator's
conventions — ints, strings, tuples, lists, None — all are; tuples are
tagged so they come back as tuples, which matters because addresses are
tuples).  Dicts are pair-encoded, so payloads that happen to contain the
tag keys ``__t``/``__d`` round-trip unharmed.

Round-tripped traces support everything the analyses need: race
detection, lockset, timelines, diffing, and `schedule`-based re-execution.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import SketchFormatError
from repro.sim.events import Event
from repro.sim.failures import Failure, FailureKind
from repro.sim.ops import OpKind
from repro.sim.trace import Trace
from repro.sim.vtime import ClockSummary

_FORMAT = "pres-trace"
_VERSION = 1


def _pack(value: Any) -> Any:
    """JSON-encode simulator values, tagging tuples and dicts."""
    if isinstance(value, tuple):
        return {"__t": [_pack(v) for v in value]}
    if isinstance(value, list):
        return [_pack(v) for v in value]
    if isinstance(value, dict):
        return {"__d": [[_pack(k), _pack(v)] for k, v in value.items()]}
    return value


def _unpack(value: Any) -> Any:
    # Only exact single-key tag dicts decode as tags; a payload dict that
    # merely *contains* "__t" (possible in hand-authored or adversarial
    # files — _pack itself always pair-encodes dicts) stays a plain dict.
    if isinstance(value, dict) and set(value) == {"__t"}:
        return tuple(_unpack(v) for v in value["__t"])
    if isinstance(value, dict) and set(value) == {"__d"}:
        return {_unpack(k): _unpack(v) for k, v in value["__d"]}
    if isinstance(value, list):
        return [_unpack(v) for v in value]
    return value


# -- event rows --------------------------------------------------------------


def event_row(event: Event) -> list:
    """One event as a flat JSON-ready row (shared by both formats)."""
    return [
        event.gidx,
        event.tid,
        event.kind.value,
        _pack(event.addr),
        _pack(event.obj),
        event.name,
        event.label,
        _pack(list(event.args)),
        _pack(event.value),
        event.cpu,
    ]


def event_from_row(row: Any) -> Event:
    """Decode :func:`event_row`; raises ``ValueError`` on a bad row."""
    gidx, tid, kind, addr, obj, name, label, args, value, cpu = row
    return Event(
        gidx=gidx,
        tid=tid,
        kind=OpKind(kind),
        addr=_unpack(addr),
        obj=_unpack(obj),
        name=name,
        label=label,
        args=tuple(_unpack(args)),
        value=_unpack(value),
        cpu=cpu,
    )


# -- trace metadata ----------------------------------------------------------


def trace_meta(trace: Trace) -> Dict[str, Any]:
    """Everything about a trace except the events (header or footer)."""
    return {
        "program": trace.program_name,
        "ncpus": trace.ncpus,
        "steps": trace.steps,
        "schedule": trace.schedule,
        "stdout": _pack(trace.stdout),
        "files": _pack(trace.files),
        "final_memory": _pack(trace.final_memory),
        "thread_returns": _pack(
            {str(tid): value for tid, value in trace.thread_returns.items()}
        ),
        "thread_names": {str(tid): n for tid, n in trace.thread_names.items()},
        "divergence": trace.divergence,
        "failure": None
        if trace.failure is None
        else {
            "kind": trace.failure.kind.value,
            "where": trace.failure.where,
            "tid": trace.failure.tid,
            "gidx": trace.failure.gidx,
            "detail": trace.failure.detail,
            "involved_tids": list(trace.failure.involved_tids),
        },
        "clock": None
        if trace.clock is None
        else {
            "native_time": trace.clock.native_time,
            "recorded_time": trace.clock.recorded_time,
            "per_cpu_native": trace.clock.per_cpu_native,
            "per_cpu_recorded": trace.clock.per_cpu_recorded,
        },
    }


def _trace_from_meta(meta: Dict[str, Any], events: List[Event]) -> Trace:
    failure = None
    if meta.get("failure") is not None:
        raw = meta["failure"]
        failure = Failure(
            kind=FailureKind(raw["kind"]),
            where=raw["where"],
            tid=raw["tid"],
            gidx=raw["gidx"],
            detail=raw["detail"],
            involved_tids=tuple(raw["involved_tids"]),
        )
    clock = None
    if meta.get("clock") is not None:
        raw = meta["clock"]
        clock = ClockSummary(
            native_time=raw["native_time"],
            recorded_time=raw["recorded_time"],
            per_cpu_native=raw["per_cpu_native"],
            per_cpu_recorded=raw["per_cpu_recorded"],
        )
    return Trace(
        program_name=meta["program"],
        events=events,
        schedule=list(meta["schedule"]),
        final_memory=_unpack(meta["final_memory"]),
        stdout=_unpack(meta["stdout"]),
        files=_unpack(meta["files"]),
        thread_returns={
            int(tid): value
            for tid, value in _unpack(meta["thread_returns"]).items()
        },
        thread_names={
            int(tid): name for tid, name in meta.get("thread_names", {}).items()
        },
        failure=failure,
        clock=clock,
        steps=meta["steps"],
        ncpus=meta["ncpus"],
        divergence=meta["divergence"],
    )


# -- classic JSON-lines format -----------------------------------------------


def dump_trace(trace: Trace, handle: IO[str]) -> None:
    """Write a trace as JSON lines: header first, then one event per line."""
    header = {"format": _FORMAT, "version": _VERSION}
    header.update(trace_meta(trace))
    handle.write(json.dumps(header) + "\n")
    for event in trace.events:
        handle.write(json.dumps(event_row(event)) + "\n")


def load_trace(handle: IO[str]) -> Trace:
    """Read a trace written by :func:`dump_trace`."""
    header_line = handle.readline()
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SketchFormatError(f"corrupt trace header (line 1): {exc}") from None
    if header.get("format") != _FORMAT:
        raise SketchFormatError("not a PRES trace file")
    if header.get("version") != _VERSION:
        raise SketchFormatError(
            f"unsupported trace version {header.get('version')}"
        )

    events: List[Event] = []
    for line_number, line in enumerate(handle, start=2):
        if not line.strip():
            continue
        try:
            events.append(event_from_row(json.loads(line)))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            raise SketchFormatError(
                f"corrupt trace event (line {line_number}, "
                f"event {line_number - 1}): {exc}"
            ) from None
    return _trace_from_meta(header, events)


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace to ``path``, atomically.

    The content lands in a temp file first and replaces ``path`` only
    once complete and fsynced (:mod:`repro.robust.atomic`), so a crash
    mid-write leaves whatever was at ``path`` before — never a truncated,
    unloadable trace.
    """
    from repro.robust.atomic import atomic_writer

    with atomic_writer(path) as handle:
        dump_trace(trace, handle)


def read_trace(path: str) -> Trace:
    """Load a trace from ``path`` (either format, sniffed by magic).

    Sniffing and parsing share one handle — one open, one read — so a
    concurrent :func:`save_trace` replacement cannot swap the file
    between the sniff and the reload, and hot paths pay a single open.
    Undecodable bytes are replaced rather than raised on (both formats
    turn the resulting damage into :class:`SketchFormatError`).
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        text = handle.read()
    if text.startswith("PRESJ"):
        from repro.robust.journal import read_journal_text

        return trace_from_salvage(read_journal_text(text, path))
    return load_trace(io.StringIO(text))


# -- crash-consistent journal format -----------------------------------------


def trace_journal_writer(program_name: str, ncpus: int, path: str):
    """Open an event journal for a run that is *about to happen*.

    Hand the writer to :class:`~repro.sim.machine.Machine` as its
    ``event_journal``; the machine appends every event as it executes and
    commits the metadata footer only if the run completes.  The caller
    owns closing it.
    """
    from repro.robust.journal import TRACE_KIND, JournalWriter

    return JournalWriter(
        path, TRACE_KIND, {"program": program_name, "ncpus": ncpus}
    )


def save_trace_journaled(trace: Trace, path: str) -> None:
    """Write a finished trace in the journal format (conversion utility)."""
    writer = trace_journal_writer(trace.program_name, trace.ncpus, path)
    try:
        for event in trace.events:
            writer.append(event_row(event))
        writer.commit(trace_meta(trace))
    finally:
        writer.close()


def _partial_trace(meta: Dict[str, Any], events: List[Event], note: str) -> Trace:
    """A prefix-only trace: the run's tail (and end state) are unknown."""
    return Trace(
        program_name=meta.get("program", "<unknown>"),
        events=events,
        schedule=[event.tid for event in events],
        final_memory={},
        stdout=[],
        files={},
        thread_returns={},
        thread_names={},
        failure=None,
        clock=None,
        steps=len(events),
        ncpus=int(meta.get("ncpus", 1)),
        divergence=note,
    )


def trace_from_salvage(report) -> Trace:
    """Rebuild a trace from a salvaged journal.

    With an intact footer this is a full, exact trace; without one it is
    the event prefix the dying process managed to flush, with the
    schedule re-derived from the events (every machine step that emitted
    an event was one scheduler pick of that event's thread).
    """
    from repro.robust.journal import TRACE_KIND

    if report.kind != TRACE_KIND:
        raise SketchFormatError(
            f"{report.path}: expected a trace journal, found {report.kind!r}"
        )
    events: List[Event] = []
    for number, row in enumerate(report.records, start=1):
        try:
            events.append(event_from_row(row))
        except (ValueError, TypeError) as exc:
            raise SketchFormatError(
                f"{report.path}: record {number}: {exc}"
            ) from None
    if report.footer is not None and "schedule" in report.footer:
        return _trace_from_meta(report.footer, events)
    return _partial_trace(
        report.meta,
        events,
        f"salvaged prefix: {report.reason or 'journal has no footer'}",
    )


def load_trace_journaled(path: str) -> Trace:
    """Strict journal load; raises on any damage."""
    from repro.robust.journal import read_journal

    return trace_from_salvage(read_journal(path))


def salvage_trace(path: str) -> Tuple[Trace, Any]:
    """Tolerant journal load: best-effort trace plus the salvage report."""
    from repro.robust.journal import salvage

    report = salvage(path)
    if report.unrecoverable:
        raise SketchFormatError(f"{path}: {report.reason}")
    return trace_from_salvage(report), report
