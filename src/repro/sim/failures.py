"""Failure taxonomy.

A :class:`Failure` is the observable symptom of a bug manifesting — the
thing a production run records and a replay attempt must re-trigger.
Matching is by :meth:`Failure.signature`, which deliberately excludes the
event index: the same assertion firing a few steps earlier in a replay is
still the same bug.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class FailureKind(enum.Enum):
    """How a simulated run can go wrong."""

    ASSERTION = "assertion"  # an application ctx.check() failed
    CRASH = "crash"  # illegal memory access / sync misuse
    DEADLOCK = "deadlock"  # lock-cycle: no thread can ever run again
    HANG = "hang"  # no runnable thread but no lock cycle (lost wakeup)
    WRONG_OUTPUT = "wrong_output"  # end-state oracle rejected the result
    TIMEOUT = "timeout"  # step budget exhausted (treated as a hang)


@dataclass(frozen=True)
class Failure:
    """A concrete failure observed in one run.

    :param kind: failure category.
    :param where: stable location descriptor — the assertion message, the
        crashing address, the set of deadlocked resources, or the oracle
        name.  This is what bug signatures are built from.
    :param tid: thread that failed, when meaningful.
    :param gidx: global index of the failing event, if any.
    :param detail: free-form human-readable explanation.
    """

    kind: FailureKind
    where: str
    tid: Optional[int] = None
    gidx: Optional[int] = None
    detail: str = ""
    involved_tids: Tuple[int, ...] = field(default=())

    def signature(self) -> Tuple[str, str]:
        """Schedule-independent identity of the failure."""
        return (self.kind.value, self.where)

    def matches(self, other: "Failure") -> bool:
        """Whether two failures are the same bug manifesting.

        HANG and TIMEOUT are considered interchangeable: a lost wakeup that
        exhausts the step budget during replay is the same symptom as one
        the machine proved outright.
        """
        stuck = {FailureKind.HANG, FailureKind.TIMEOUT}
        if self.kind in stuck and other.kind in stuck:
            return True
        return self.signature() == other.signature()

    def describe(self) -> str:
        """One-line human-readable rendering."""
        who = f" in T{self.tid}" if self.tid is not None else ""
        at = f" at event {self.gidx}" if self.gidx is not None else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"{self.kind.value}{who}{at}: {self.where}{detail}"
