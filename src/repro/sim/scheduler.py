"""Schedulers: the single source of execution non-determinism.

At every machine step, :meth:`Scheduler.pick` chooses which runnable
thread's pending operation executes.  Production runs use
:class:`RandomScheduler` (the "OS scheduler" of the simulated world);
deterministic re-execution from a complete log uses
:class:`FixedOrderScheduler`; PRES's partial-information replayer provides
its own scheduler (:class:`repro.core.pir.PIRScheduler`) built on the
same interface.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Sequence

from repro.errors import ReplayDivergence, SchedulerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine


class Scheduler:
    """Base class; subclasses implement :meth:`pick`."""

    def pick(self, machine: "Machine", runnable: Sequence[int]) -> int:
        """Choose the next thread to step from ``runnable`` (non-empty).

        ``runnable`` is in ascending tid order.  Implementations may
        inspect the machine (pending ops, memory, trace so far) but must
        not mutate it.
        """
        raise NotImplementedError

    def on_run_start(self, machine: "Machine") -> None:
        """Hook invoked once before the first step."""

    def describe(self) -> str:
        return type(self).__name__


class RandomScheduler(Scheduler):
    """Uniform random choice — the model of a production OS scheduler.

    The same seed always yields the same execution, which is how benchmark
    harnesses pin down a "production run that failed".
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, machine: "Machine", runnable: Sequence[int]) -> int:
        """Uniform choice among the runnable threads."""
        return runnable[self._rng.randrange(len(runnable))]

    def on_run_start(self, machine: "Machine") -> None:
        """Re-arm the RNG so one scheduler object is reusable across runs."""
        self._rng = random.Random(self.seed)

    def describe(self) -> str:
        """Identify the scheduler and its seed (for reports)."""
        return f"RandomScheduler(seed={self.seed})"


class PCTScheduler(Scheduler):
    """Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010).

    Each thread gets a random priority; the highest-priority runnable
    thread always runs, except at ``depth - 1`` randomly chosen steps
    where the running thread's priority drops below everyone else's.  For
    a bug of depth d, one run finds it with probability >= 1/(n * k^(d-1))
    — much better than uniform random for ordering bugs, which makes PCT
    the strong stress-testing baseline for the exploration-strategy
    ablation (benchmarks/bench_e9_exploration_strategies.py).
    """

    def __init__(self, seed: int, depth: int = 3, max_steps_hint: int = 1000):
        self.seed = seed
        self.depth = depth
        self.max_steps_hint = max_steps_hint
        self._rng = random.Random(seed)
        self._priorities: dict = {}
        self._change_points: set = set()
        self._steps = 0

    def on_run_start(self, machine: "Machine") -> None:
        self._rng = random.Random(self.seed)
        self._priorities = {}
        self._steps = 0
        self._change_points = {
            self._rng.randrange(self.max_steps_hint)
            for _ in range(max(0, self.depth - 1))
        }

    def _priority_of(self, tid: int) -> float:
        if tid not in self._priorities:
            # fresh threads draw a high base priority band
            self._priorities[tid] = 1.0 + self._rng.random()
        return self._priorities[tid]

    def pick(self, machine: "Machine", runnable: Sequence[int]) -> int:
        self._steps += 1
        winner = max(runnable, key=self._priority_of)
        if self._steps in self._change_points:
            # demote the would-be winner below every base priority
            self._priorities[winner] = self._rng.random()
            winner = max(runnable, key=self._priority_of)
        return winner

    def describe(self) -> str:
        return f"PCTScheduler(seed={self.seed}, depth={self.depth})"


class RoundRobinScheduler(Scheduler):
    """Cycle through runnable threads — a deterministic base policy."""

    def __init__(self) -> None:
        self._last = -1

    def pick(self, machine: "Machine", runnable: Sequence[int]) -> int:
        for tid in runnable:
            if tid > self._last:
                self._last = tid
                return tid
        self._last = runnable[0]
        return runnable[0]

    def on_run_start(self, machine: "Machine") -> None:
        self._last = -1


class FixedOrderScheduler(Scheduler):
    """Replay an exact schedule (a list of tids) — complete-log replay.

    Once PRES has reproduced a bug, the successful attempt's schedule is
    saved and this scheduler replays it verbatim: the "reproduce every
    time" guarantee.  A mismatch (the scheduled tid is not runnable, or the
    log is exhausted while threads still run) raises
    :class:`~repro.errors.ReplayDivergence`, because it means the recorded
    schedule does not correspond to this program/input.
    """

    def __init__(self, schedule: Sequence[int]) -> None:
        self.schedule: List[int] = list(schedule)
        self._cursor = 0

    def pick(self, machine: "Machine", runnable: Sequence[int]) -> int:
        if self._cursor >= len(self.schedule):
            raise ReplayDivergence(
                "complete log exhausted while threads are still runnable",
                step=self._cursor,
            )
        tid = self.schedule[self._cursor]
        if tid not in runnable:
            raise ReplayDivergence(
                f"scheduled thread {tid} is not runnable (runnable={list(runnable)})",
                step=self._cursor,
            )
        self._cursor += 1
        return tid

    def on_run_start(self, machine: "Machine") -> None:
        self._cursor = 0


class PrefixScheduler(Scheduler):
    """Replay an exact schedule prefix, then hand over to another policy.

    The developer's "what-if" tool once a bug is captured: replay the
    complete log up to just before the failure, then let a different
    scheduler vary the ending — e.g. to check whether a candidate fix
    closes *every* bad ending reachable from that state, not just the
    recorded one.
    """

    def __init__(self, prefix: Sequence[int], then: Scheduler) -> None:
        self.prefix: List[int] = list(prefix)
        self.then = then
        self._cursor = 0

    def pick(self, machine: "Machine", runnable: Sequence[int]) -> int:
        if self._cursor < len(self.prefix):
            tid = self.prefix[self._cursor]
            if tid not in runnable:
                raise ReplayDivergence(
                    f"prefix step {self._cursor}: thread {tid} not runnable",
                    step=self._cursor,
                )
            self._cursor += 1
            return tid
        return self.then.pick(machine, runnable)

    def on_run_start(self, machine: "Machine") -> None:
        self._cursor = 0
        self.then.on_run_start(machine)

    def describe(self) -> str:
        return f"PrefixScheduler({len(self.prefix)} steps, then {self.then.describe()})"


def validate_pick(tid: int, runnable: Sequence[int]) -> None:
    """Machine-side guard: a scheduler must return a runnable tid."""
    if tid not in runnable:
        raise SchedulerError(
            f"scheduler chose thread {tid}, runnable set is {list(runnable)}"
        )
