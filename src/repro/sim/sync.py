"""Synchronization objects: mutexes, condition variables, semaphores,
barriers.

These classes hold *state only*; all blocking/waking policy lives in the
machine, which is what keeps the nondeterminism (who wins a lock handoff,
which waiter a signal wakes) under the scheduler's control.  In particular:

* Releasing a contended mutex does not pick a winner — every waiter becomes
  eligible again and the *scheduler* decides who acquires next.
* ``signal`` wakes the longest-waiting thread (FIFO, like glibc), but the
  woken thread still races through the mutex re-acquire, so the effective
  wake order is again schedule-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimSyncError


@dataclass
class Mutex:
    """A non-reentrant mutual-exclusion lock."""

    name: str
    owner: Optional[int] = None

    def acquire(self, tid: int) -> None:
        if self.owner is not None:
            raise SimSyncError(f"mutex {self.name!r} already held by {self.owner}")
        self.owner = tid

    def release(self, tid: int) -> None:
        if self.owner != tid:
            raise SimSyncError(
                f"thread {tid} unlocking mutex {self.name!r} owned by {self.owner}"
            )
        self.owner = None

    @property
    def is_free(self) -> bool:
        return self.owner is None


@dataclass
class RWLock:
    """A reader-writer lock: many readers or one writer.

    No fairness policy is built in — when the lock frees up, whichever
    waiter the scheduler runs first wins, so writer starvation is a
    schedule the replayer can (and should be able to) explore.
    """

    name: str
    writer: Optional[int] = None
    readers: List[int] = field(default_factory=list)

    def acquire_read(self, tid: int) -> None:
        if self.writer is not None:
            raise SimSyncError(
                f"rwlock {self.name!r} read-acquired while writer {self.writer} holds it"
            )
        if tid in self.readers:
            raise SimSyncError(f"thread {tid} already holds rwlock {self.name!r} read-side")
        self.readers.append(tid)

    def acquire_write(self, tid: int) -> None:
        if self.writer is not None or self.readers:
            raise SimSyncError(f"rwlock {self.name!r} write-acquired while held")
        self.writer = tid

    def release(self, tid: int) -> None:
        if self.writer == tid:
            self.writer = None
        elif tid in self.readers:
            self.readers.remove(tid)
        else:
            raise SimSyncError(
                f"thread {tid} releasing rwlock {self.name!r} it does not hold"
            )

    @property
    def can_read(self) -> bool:
        return self.writer is None

    @property
    def can_write(self) -> bool:
        return self.writer is None and not self.readers

    def holders(self) -> List[int]:
        if self.writer is not None:
            return [self.writer]
        return list(self.readers)


@dataclass
class CondVar:
    """A condition variable; waiters are kept in arrival order."""

    name: str
    waiters: List[int] = field(default_factory=list)

    def add_waiter(self, tid: int) -> None:
        self.waiters.append(tid)

    def wake_one(self) -> Optional[int]:
        """Remove and return the longest-waiting thread, if any."""
        if not self.waiters:
            return None
        return self.waiters.pop(0)

    def wake_all(self) -> List[int]:
        """Remove and return every waiter (in arrival order)."""
        woken, self.waiters = self.waiters, []
        return woken


@dataclass
class Semaphore:
    """A counting semaphore."""

    name: str
    count: int = 0

    def acquire(self, tid: int) -> None:
        if self.count <= 0:
            raise SimSyncError(f"semaphore {self.name!r} acquired at zero")
        self.count -= 1

    def release(self) -> None:
        self.count += 1

    @property
    def available(self) -> bool:
        return self.count > 0


@dataclass
class Barrier:
    """A reusable (cyclic) barrier for a fixed number of parties."""

    name: str
    parties: int
    arrived: List[int] = field(default_factory=list)
    generation: int = 0

    def arrive(self, tid: int) -> bool:
        """Register arrival; returns True if this arrival trips the barrier."""
        if self.parties <= 0:
            raise SimSyncError(f"barrier {self.name!r} has no parties")
        self.arrived.append(tid)
        if len(self.arrived) >= self.parties:
            return True
        return False

    def release(self) -> List[int]:
        """Open the barrier: return the waiting parties and reset."""
        released, self.arrived = self.arrived, []
        self.generation += 1
        return released


class SyncTable:
    """All synchronization objects of one machine, created on demand.

    Mutexes and condition variables are auto-created on first use (as in C,
    where they are just initialized structs).  Semaphores and barriers must
    be declared by the :class:`~repro.sim.program.Program` because they
    need an initial count / party count.
    """

    def __init__(
        self,
        semaphores: Optional[Dict[str, int]] = None,
        barriers: Optional[Dict[str, int]] = None,
    ) -> None:
        self._mutexes: Dict[str, Mutex] = {}
        self._rwlocks: Dict[str, RWLock] = {}
        self._conds: Dict[str, CondVar] = {}
        self._semaphores = {
            name: Semaphore(name, count) for name, count in (semaphores or {}).items()
        }
        self._barriers = {
            name: Barrier(name, parties) for name, parties in (barriers or {}).items()
        }

    def mutex(self, name: str) -> Mutex:
        if name not in self._mutexes:
            self._mutexes[name] = Mutex(name)
        return self._mutexes[name]

    def rwlock(self, name: str) -> RWLock:
        if name not in self._rwlocks:
            self._rwlocks[name] = RWLock(name)
        return self._rwlocks[name]

    def cond(self, name: str) -> CondVar:
        if name not in self._conds:
            self._conds[name] = CondVar(name)
        return self._conds[name]

    def semaphore(self, name: str) -> Semaphore:
        try:
            return self._semaphores[name]
        except KeyError:
            raise SimSyncError(
                f"semaphore {name!r} was not declared by the program"
            ) from None

    def barrier(self, name: str) -> Barrier:
        try:
            return self._barriers[name]
        except KeyError:
            raise SimSyncError(
                f"barrier {name!r} was not declared by the program"
            ) from None

    def held_mutexes(self, tid: int) -> List[str]:
        """Names of mutexes currently owned by ``tid`` (creation order)."""
        return [m.name for m in self._mutexes.values() if m.owner == tid]
