"""Programs and the thread-side API for writing them.

A :class:`Program` bundles a main thread body with its inputs and the
initial shared state.  Thread bodies are generator functions taking a
:class:`ThreadContext` as their first argument; they interact with the
world exclusively by yielding :class:`~repro.sim.ops.Op` objects built via
the context::

    def main(ctx, nworkers):
        tids = []
        for i in range(nworkers):
            tid = yield ctx.spawn(worker, i)
            tids.append(tid)
        for tid in tids:
            yield ctx.join(tid)

Determinism contract: between two yields, a thread body must be a pure
function of the values it has received so far plus the program params.  In
particular, bodies must not consult ``random``, wall-clock time or any
other ambient state — use ``ctx.rand`` / ``ctx.now`` (simulated syscalls)
instead.  This is what makes "same scheduler decisions => same execution"
hold, which all of record/replay rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, Optional, Tuple

from repro.sim.ops import Address, Op, OpKind

ThreadBody = Callable[..., Generator[Op, Any, Any]]


class ThreadContext:
    """Per-thread handle used by thread bodies to construct operations.

    The context is cheap and stateless apart from its thread id; every
    method simply returns an :class:`Op` for the body to yield.  The two
    exceptions are :meth:`call` and :meth:`free_region`, which are generator
    helpers meant to be used with ``yield from``.
    """

    __slots__ = ("tid",)

    def __init__(self, tid: int) -> None:
        self.tid = tid

    # -- shared memory -------------------------------------------------

    def read(self, addr: Address, cost: int = 1) -> Op:
        """Load the value at ``addr``; the yield returns the value."""
        return Op(OpKind.READ, addr=addr, cost=cost)

    def write(self, addr: Address, value: Any, cost: int = 1) -> Op:
        """Store ``value`` at ``addr`` (creating the address if needed)."""
        return Op(OpKind.WRITE, addr=addr, value=value, cost=cost)

    def rmw(self, addr: Address, fn: Callable[[Any], Any], cost: int = 2) -> Op:
        """Atomically replace ``mem[addr]`` with ``fn(mem[addr])``.

        The yield returns the *old* value.  This models hardware atomics
        (``fetch_add`` etc.) and is the building block for race-free
        counters; the racy alternative is a separate read + write pair.
        """
        return Op(OpKind.RMW, addr=addr, value=fn, cost=cost)

    def cas(self, addr: Address, expected: Any, new: Any, cost: int = 2) -> Op:
        """Atomic compare-and-swap; the yield returns True on success."""
        return Op(OpKind.CAS, addr=addr, value=(expected, new), cost=cost)

    def free(self, addr: Address, cost: int = 1) -> Op:
        """Deallocate ``addr``.

        If ``addr`` is a string, every tuple address whose first element
        equals it is deallocated too (freeing a whole region/buffer).
        Subsequent access to a freed address crashes the accessing thread —
        which is exactly how use-after-free order violations manifest.
        """
        return Op(OpKind.FREE, addr=addr, cost=cost)

    # -- synchronization -----------------------------------------------

    def lock(self, name: str) -> Op:
        """Acquire the mutex ``name``, blocking until it is free."""
        return Op(OpKind.LOCK, obj=name)

    def trylock(self, name: str) -> Op:
        """Try to acquire mutex ``name``; yields True iff acquired."""
        return Op(OpKind.TRYLOCK, obj=name)

    def unlock(self, name: str) -> Op:
        """Release the mutex ``name`` (must be held by this thread)."""
        return Op(OpKind.UNLOCK, obj=name)

    def rdlock(self, name: str) -> Op:
        """Acquire reader-writer lock ``name`` in shared (read) mode."""
        return Op(OpKind.RDLOCK, obj=name)

    def wrlock(self, name: str) -> Op:
        """Acquire reader-writer lock ``name`` in exclusive (write) mode."""
        return Op(OpKind.WRLOCK, obj=name)

    def rwunlock(self, name: str) -> Op:
        """Release reader-writer lock ``name`` (either mode)."""
        return Op(OpKind.RWUNLOCK, obj=name)

    def wait(self, cond: str, lock: str) -> Op:
        """Wait on condition variable ``cond``; ``lock`` must be held.

        Semantics follow pthreads: the lock is released atomically with
        enqueueing on the condition, and re-acquired before the wait
        returns (the re-acquire appears as a separate LOCK event).
        Spurious wakeups do not occur, but as in pthreads, the predicate
        should still be re-checked in a loop because another thread may run
        between the signal and the re-acquire.
        """
        return Op(OpKind.COND_WAIT, obj=(cond, lock))

    def signal(self, cond: str) -> Op:
        """Wake one waiter of ``cond`` (no-op if none are waiting)."""
        return Op(OpKind.COND_SIGNAL, obj=cond)

    def broadcast(self, cond: str) -> Op:
        """Wake every waiter of ``cond``."""
        return Op(OpKind.COND_BROADCAST, obj=cond)

    def sem_acquire(self, name: str) -> Op:
        """Decrement semaphore ``name``, blocking while it is zero."""
        return Op(OpKind.SEM_ACQUIRE, obj=name)

    def sem_release(self, name: str) -> Op:
        """Increment semaphore ``name``."""
        return Op(OpKind.SEM_RELEASE, obj=name)

    def barrier(self, name: str) -> Op:
        """Wait at barrier ``name`` until all parties have arrived."""
        return Op(OpKind.BARRIER_WAIT, obj=name)

    # -- thread lifecycle ----------------------------------------------

    def spawn(self, body: ThreadBody, *args: Any) -> Op:
        """Start a new thread running ``body(ctx, *args)``; yields its tid."""
        return Op(OpKind.SPAWN, func=body, args=args, name=body.__name__)

    def join(self, tid: int) -> Op:
        """Block until thread ``tid`` finishes; yields its return value."""
        return Op(OpKind.JOIN, obj=tid)

    # -- environment ----------------------------------------------------

    def syscall(self, name: str, *args: Any) -> Op:
        """Invoke the simulated kernel (see :mod:`repro.sim.syscalls`)."""
        return Op(OpKind.SYSCALL, name=name, args=args)

    def output(self, value: Any) -> Op:
        """Append ``value`` to the program's captured stdout."""
        return Op(OpKind.SYSCALL, name="write_stdout", args=(value,))

    def rand(self, n: int) -> Op:
        """Yield a kernel-PRNG integer in ``[0, n)`` (deterministic under
        replay because draws are ordered by the schedule)."""
        return Op(OpKind.SYSCALL, name="rand", args=(n,))

    def now(self) -> Op:
        """Yield the current simulated time."""
        return Op(OpKind.SYSCALL, name="now", args=())

    def sleep(self, duration: int) -> Op:
        """Consume ``duration`` units of simulated time."""
        return Op(OpKind.SYSCALL, name="sleep", args=(duration,))

    def epoch_barrier(self) -> Op:
        """Request an epoch boundary from an epoch-windowed recorder.

        A kernel no-op: applications place it at natural quiescent points
        (a served request, a committed transaction) so the recorder can
        cut its rolling window there.  Without ``--epoch-steps`` the
        marker is just an ordinary (SYS-visible) syscall.
        """
        return Op(OpKind.SYSCALL, name="epoch_barrier", args=())

    # -- instrumentation markers -----------------------------------------

    def bb(self, label: str) -> Op:
        """Mark entry to basic block ``label``.

        Real PRES instruments these automatically with a binary rewriter;
        here application code places markers at loop heads and branch
        targets, which is where instrumentation would put them.
        """
        return Op(OpKind.BASIC_BLOCK, label=label, cost=0)

    def call(
        self, body: ThreadBody, *args: Any, name: Optional[str] = None
    ) -> Generator[Op, Any, Any]:
        """Call a sub-generator, bracketing it with FUNC_ENTER/FUNC_EXIT.

        Use as ``result = yield from ctx.call(helper, arg)`` where
        ``helper`` is ``def helper(ctx, arg): yield ...; return value``.
        """
        fname = name if name is not None else body.__name__
        yield Op(OpKind.FUNC_ENTER, name=fname, cost=0)
        result = yield from body(self, *args)
        yield Op(OpKind.FUNC_EXIT, name=fname, cost=0)
        return result

    # -- local work and checks -------------------------------------------

    def local(self, cost: int = 1) -> Op:
        """Perform ``cost`` units of thread-local computation as ONE step.

        Note: this is a single scheduling quantum however large ``cost``
        is; it only affects virtual time.  To model think-time that other
        threads can interleave with, use :meth:`work`.
        """
        return Op(OpKind.LOCAL, cost=cost)

    def work(self, units: int, cost: int = 1) -> Generator[Op, Any, None]:
        """Perform ``units`` interleavable quanta of local computation.

        Each quantum is a separate operation, so the scheduler can run
        other threads between them — this is what spaces out race windows
        in schedule-space, not :meth:`local`'s cost parameter.
        Use with ``yield from``.
        """
        for _ in range(units):
            yield Op(OpKind.LOCAL, cost=cost)

    def cpu_yield(self) -> Op:
        """A pure scheduling point with no effect."""
        return Op(OpKind.YIELD, cost=0)

    def check(self, cond: bool, msg: str) -> Op:
        """Assert a program invariant; a false ``cond`` is a failure."""
        return Op(OpKind.ASSERT, value=bool(cond), msg=msg, cost=0)

    def free_region(
        self, prefix: str, indices: Iterable[Any]
    ) -> Generator[Op, Any, None]:
        """Free ``(prefix, i)`` for each index, then ``prefix`` itself."""
        for i in indices:
            yield Op(OpKind.FREE, addr=(prefix, i))
        yield Op(OpKind.FREE, addr=prefix)


@dataclass
class Program:
    """A complete simulated program: entry point, inputs, initial state.

    :param name: identifier used in traces, logs and reports.
    :param main: thread body for thread 0, invoked as ``main(ctx, **params)``.
    :param params: program inputs.  These are recorded in
        :class:`~repro.core.recorder.RecordedRun` so replay sees identical
        inputs (PRES assumes input non-determinism is logged by prior work).
    :param initial_memory: shared-memory contents before the run.
    :param semaphores: initial count per semaphore name.
    :param barriers: party count per barrier name.  Mutexes and condition
        variables need no declaration; they are created on first use.
    :param initial_files: pre-existing kernel files (record lists), e.g.
        the documents a web server serves.
    """

    name: str
    main: ThreadBody
    params: Dict[str, Any] = field(default_factory=dict)
    initial_memory: Dict[Address, Any] = field(default_factory=dict)
    semaphores: Dict[str, int] = field(default_factory=dict)
    barriers: Dict[str, int] = field(default_factory=dict)
    initial_files: Dict[str, list] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary for reports."""
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.name}({params})"
