"""Shared memory of the simulated machine.

Memory is a flat map from hashable addresses to values.  Addresses are
either strings (scalar variables: ``"counter"``) or tuples whose first
element names a region (``("buf", 3)`` is cell 3 of buffer ``"buf"``).

Deallocation is first-class because order-violation bugs frequently
manifest as use-after-free: :meth:`SharedMemory.free` removes addresses and
remembers them, so a later access raises :class:`~repro.errors.SimMemoryError`
with a "use after free" diagnosis rather than a generic missing-address
error.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Set, Tuple

from repro.errors import SimMemoryError
from repro.sim.ops import Address


def region_of(addr: Address) -> Address:
    """The region an address belongs to (itself, for scalar addresses)."""
    if isinstance(addr, tuple) and addr:
        return addr[0]
    return addr


def addresses_conflict(a: Address, b: Address) -> bool:
    """Whether two accesses to these addresses can race.

    Exact equality conflicts; additionally a scalar address that names a
    region conflicts with every cell of that region, because freeing the
    region (addressed by its name) conflicts with any access to its cells.
    """
    if a == b:
        return True
    if isinstance(a, tuple) and not isinstance(b, tuple):
        return region_of(a) == b
    if isinstance(b, tuple) and not isinstance(a, tuple):
        return region_of(b) == a
    return False


class SharedMemory:
    """The machine's shared address space."""

    def __init__(self, initial: Dict[Address, Any] | None = None) -> None:
        self._cells: Dict[Address, Any] = dict(initial or {})
        self._freed: Set[Address] = set()

    def __contains__(self, addr: Address) -> bool:
        return addr in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def addresses(self) -> Iterator[Address]:
        """Iterate over live addresses in insertion order."""
        return iter(self._cells)

    def load(self, addr: Address) -> Any:
        """Read ``addr``; raises :class:`SimMemoryError` if invalid."""
        try:
            return self._cells[addr]
        except KeyError:
            raise SimMemoryError(addr, self._diagnose(addr)) from None

    def store(self, addr: Address, value: Any) -> None:
        """Write ``addr``, creating it if new.

        Writing to a freed address is a use-after-free and crashes, the
        same as reading one.  (Re-creating a freed address would silently
        mask exactly the bug class we need to surface.)
        """
        if addr in self._freed or region_of(addr) in self._freed:
            raise SimMemoryError(addr, self._diagnose(addr))
        self._cells[addr] = value

    def rmw(self, addr: Address, fn: Any) -> Any:
        """Atomically apply ``fn`` to ``addr``; returns the old value."""
        old = self.load(addr)
        self._cells[addr] = fn(old)
        return old

    def cas(self, addr: Address, expected: Any, new: Any) -> bool:
        """Atomic compare-and-swap; returns True iff the swap happened."""
        old = self.load(addr)
        if old != expected:
            return False
        self._cells[addr] = new
        return True

    def free(self, addr: Address) -> Tuple[Address, ...]:
        """Deallocate ``addr``; a scalar address also frees its region.

        Returns the tuple of addresses removed.  Freeing an address that
        does not exist (or was already freed) is a double-free crash.
        """
        victims = [a for a in self._cells if a == addr or region_of(a) == addr]
        if not victims:
            raise SimMemoryError(addr, self._diagnose(addr, freeing=True))
        for victim in victims:
            del self._cells[victim]
            self._freed.add(victim)
        self._freed.add(addr)
        return tuple(victims)

    def was_freed(self, addr: Address) -> bool:
        """Whether ``addr`` (or its region) has been deallocated."""
        return addr in self._freed or region_of(addr) in self._freed

    def snapshot(self) -> Dict[Address, Any]:
        """Shallow copy of the live cells (for end-of-run oracles)."""
        return dict(self._cells)

    def _diagnose(self, addr: Address, freeing: bool = False) -> str:
        if self.was_freed(addr):
            return "double free" if freeing else "use after free"
        if freeing:
            return "free of unallocated address"
        return "address was never allocated"
