"""The simulated kernel.

Applications reach the environment exclusively through syscalls, mirroring
how PRES piggybacks on existing input-logging work: everything the kernel
returns is a deterministic function of (machine seed, global order of
syscalls), so replaying the schedule replays the environment for free.

Provided facilities:

``write_stdout(value)``
    Append to the captured program output (used by wrong-output oracles).
``write_file(name, record) / read_file(name, index) / file_len(name)``
    An append-only record file system (logs, binlogs, ...).
``send(chan, msg) / recv(chan) / try_recv(chan) / chan_len(chan)``
    FIFO channels modelling sockets/pipes; ``recv`` blocks while empty.
``rand(n)``
    Kernel PRNG integer in ``[0, n)``; seeded per machine.
``now()``
    Simulated wall clock (the machine's maximum CPU virtual time).
``sleep(duration)``
    Consume virtual time without doing work.
``epoch_barrier()``
    No-op marker an epoch-windowed recorder cuts its rolling window on.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.errors import SimSyscallError


class Kernel:
    """State and semantics of the simulated operating system."""

    #: syscall names whose execution may have to wait for a condition.
    BLOCKING = frozenset({"recv"})

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._files: Dict[str, List[Any]] = {}
        self._channels: Dict[str, List[Any]] = {}
        self.stdout: List[Any] = []
        self.syscall_count = 0

    # -- dispatch ---------------------------------------------------------

    def can_execute(self, name: str, args: Tuple[Any, ...]) -> bool:
        """Whether the syscall can complete now (False => caller blocks)."""
        if name == "recv":
            (chan,) = args
            return bool(self._channels.get(chan))
        return True

    def execute(self, name: str, args: Tuple[Any, ...], now: int) -> Any:
        """Run the syscall; the caller guarantees :meth:`can_execute`."""
        handler = getattr(self, "_sys_" + name, None)
        if handler is None:
            raise SimSyscallError(f"unknown syscall {name!r}")
        try:
            if name == "now":
                return handler(now)
            return handler(*args)
        except TypeError as exc:
            raise SimSyscallError(f"bad arguments for {name}{args!r}: {exc}") from None
        finally:
            self.syscall_count += 1

    # -- stdout -------------------------------------------------------------

    def _sys_write_stdout(self, value: Any) -> None:
        self.stdout.append(value)

    # -- files ----------------------------------------------------------------

    def _sys_write_file(self, name: str, record: Any) -> int:
        """Append a record; returns its index."""
        records = self._files.setdefault(name, [])
        records.append(record)
        return len(records) - 1

    def _sys_read_file(self, name: str, index: int) -> Any:
        try:
            return self._files[name][index]
        except (KeyError, IndexError):
            raise SimSyscallError(f"read_file({name!r}, {index}) out of range") from None

    def _sys_file_len(self, name: str) -> int:
        return len(self._files.get(name, ()))

    def file_contents(self, name: str) -> List[Any]:
        """Host-side accessor for oracles; not a syscall."""
        return list(self._files.get(name, ()))

    def file_names(self) -> List[str]:
        """Host-side accessor: names of all files, creation order."""
        return list(self._files)

    def seed_files(self, files: Dict[str, List[Any]]) -> None:
        """Host-side setup: install pre-existing files before the run."""
        for name, records in files.items():
            self._files[name] = list(records)

    # -- channels -------------------------------------------------------------

    def _sys_send(self, chan: str, msg: Any) -> None:
        self._channels.setdefault(chan, []).append(msg)

    def _sys_recv(self, chan: str) -> Any:
        queue = self._channels.get(chan)
        if not queue:
            raise SimSyscallError(f"recv on empty channel {chan!r}")
        return queue.pop(0)

    def _sys_try_recv(self, chan: str) -> Any:
        queue = self._channels.get(chan)
        if not queue:
            return None
        return queue.pop(0)

    def _sys_chan_len(self, chan: str) -> int:
        return len(self._channels.get(chan, ()))

    # -- misc ------------------------------------------------------------------

    def _sys_rand(self, n: int) -> int:
        if n <= 0:
            raise SimSyscallError(f"rand({n}) requires n > 0")
        return self._rng.randrange(n)

    def _sys_now(self, now: int) -> int:
        return now

    def _sys_sleep(self, duration: int) -> None:
        # Time accounting happens in the machine's clock; nothing to do here.
        if duration < 0:
            raise SimSyscallError(f"sleep({duration}) requires duration >= 0")

    def _sys_epoch_barrier(self) -> None:
        # The epoch-windowed recorder watches for this marker in the event
        # stream (see repro.core.epochs); the kernel itself does nothing.
        pass
