"""The simulated multiprocessor machine.

The machine owns the shared memory, synchronization objects, kernel and
virtual clocks, and runs a :class:`~repro.sim.program.Program` under a
:class:`~repro.sim.scheduler.Scheduler`.  One call to :meth:`Machine.run`
is one execution; machines are single-use.

Execution model
---------------

Each thread is a generator with exactly one *pending* operation — the op it
yielded and is waiting to have performed.  A step is:

1. compute the runnable set (threads whose pending op can complete now);
2. ask the scheduler to pick one;
3. perform the op's effect, emit an :class:`~repro.sim.events.Event`,
   charge virtual time, notify observers;
4. resume the generator with the op's result to obtain the next pending op.

Blocking ops simply keep their thread out of the runnable set until the
awaited condition holds (a held mutex, an empty channel, an unfinished
join target...), so no step is ever "wasted" on a thread that cannot make
progress, and every step emits exactly one event.  Condition waits and
barriers park the thread in a dedicated waiting state between their two
phases.

When no thread is runnable and not all threads are done, the machine
classifies the situation as DEADLOCK (a cycle in the wait-for graph) or
HANG (e.g. a lost wakeup) and ends the run with that failure.
"""

from __future__ import annotations

import copy
import enum
import pickle
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import (
    ReplayDivergence,
    SimMemoryError,
    SimProgramError,
    SimUsageError,
)
from repro.sim.events import Event
from repro.sim.failures import Failure, FailureKind
from repro.sim.memory import SharedMemory
from repro.sim.ops import Op, OpKind
from repro.sim.persist import event_row, trace_meta
from repro.sim.program import Program, ThreadContext
from repro.sim.scheduler import Scheduler, validate_pick
from repro.sim.sync import SyncTable
from repro.sim.syscalls import Kernel
from repro.sim.trace import Trace
from repro.sim.vtime import VirtualClock


class ThreadStatus(enum.Enum):
    READY = "ready"
    WAITING_COND = "waiting_cond"
    WAITING_BARRIER = "waiting_barrier"
    DONE = "done"
    FAILED = "failed"


@dataclass
class ThreadState:
    """Bookkeeping for one simulated thread."""

    tid: int
    gen: Any
    name: str
    status: ThreadStatus = ThreadStatus.READY
    pending_op: Optional[Op] = None
    #: original COND_WAIT op while the thread is re-acquiring the mutex;
    #: its presence marks pending_op as a synthetic re-acquire LOCK.
    resuming_wait: Optional[Op] = None
    retval: Any = None
    #: how the generator was built, plus every value ever sent into it
    #: (including the priming ``None``).  Generators cannot be pickled or
    #: deep-copied, but thread bodies are pure functions of the values
    #: they receive (the :mod:`repro.sim.program` contract), so replaying
    #: ``feeds`` into a fresh generator reconstructs this thread exactly.
    #: That is what makes mid-run machine snapshots possible.
    body: Any = None
    args: tuple = ()
    kwargs: Optional[dict] = None
    feeds: List[Any] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.status in (ThreadStatus.DONE, ThreadStatus.FAILED)


@dataclass
class MachineConfig:
    """Run-wide knobs."""

    ncpus: int = 4
    max_steps: int = 200_000
    kernel_seed: int = 0


class Observer:
    """Passive hook notified of machine lifecycle; subclass what you need."""

    def on_start(self, machine: "Machine") -> None:
        """Called once before the first step."""

    def on_event(self, machine: "Machine", event: Event) -> None:
        """Called after every executed operation."""

    def on_finish(self, machine: "Machine", trace: Trace) -> None:
        """Called once after the run ends."""


class Machine:
    """One simulated execution of a program under a scheduler."""

    def __init__(
        self,
        program: Program,
        scheduler: Scheduler,
        config: Optional[MachineConfig] = None,
        observers: Sequence[Observer] = (),
        event_journal: Optional[Any] = None,
    ) -> None:
        self.program = program
        self.scheduler = scheduler
        self.config = config or MachineConfig()
        self.observers = list(observers)
        #: crash-consistent event sink (anything with ``append``/``commit``,
        #: e.g. :func:`repro.sim.persist.trace_journal_writer`).  Events are
        #: journaled the moment they execute — *before* observers run — so a
        #: process dying at event k leaves a salvageable prefix of length k.
        self.event_journal = event_journal

        self.memory = SharedMemory(program.initial_memory)
        self.sync = SyncTable(program.semaphores, program.barriers)
        self.kernel = Kernel(seed=self.config.kernel_seed)
        self.kernel.seed_files(program.initial_files)
        self.clock = VirtualClock(self.config.ncpus)

        self.threads: Dict[int, ThreadState] = {}
        self.events: List[Event] = []
        self.schedule: List[int] = []
        self.failure: Optional[Failure] = None
        self.divergence: Optional[str] = None
        self._next_tid = 0
        self._ran = False
        self._resumed = False

    # -- public API -------------------------------------------------------

    def run(
        self,
        *,
        snapshot_depths: Iterable[int] = (),
        on_snapshot: Optional[Callable[["Machine"], None]] = None,
        snapshot_when: Optional[Callable[["Machine"], bool]] = None,
        stop_after: Optional[int] = None,
    ) -> Trace:
        """Execute the program to completion; returns the trace.

        ``snapshot_depths``/``on_snapshot`` invoke the callback at the top
        of the step loop whenever ``len(schedule)`` is a requested depth —
        the state at that moment is exactly "``depth`` steps executed,
        nothing failed yet", which is what :meth:`capture_state` wants.
        ``snapshot_when`` is the dynamic variant: a predicate consulted at
        the same point, for producers (the epoch-windowed recorder) whose
        boundaries depend on run state rather than a precomputed depth
        set.  ``stop_after`` ends the run once that many steps have
        executed (used when a snapshot producer has no use for the
        suffix).
        """
        if self._ran:
            raise SimUsageError("a Machine is single-use; build a fresh one")
        self._ran = True

        if not self._resumed:
            self._spawn_thread(
                self.program.main, (), kwargs=self.program.params
            )
            self.scheduler.on_run_start(self)
        for observer in self.observers:
            observer.on_start(self)

        depths = frozenset(snapshot_depths)

        while self.failure is None:
            if on_snapshot is not None and (
                len(self.schedule) in depths
                or (snapshot_when is not None and snapshot_when(self))
            ):
                on_snapshot(self)
            if stop_after is not None and len(self.schedule) >= stop_after:
                break
            runnable = self.runnable_tids()
            if not runnable:
                if all(ts.finished for ts in self.threads.values()):
                    break
                self.failure = self._diagnose_stuck()
                break
            if len(self.schedule) >= self.config.max_steps:
                self.failure = Failure(
                    kind=FailureKind.TIMEOUT,
                    where="step budget exhausted",
                    gidx=len(self.events),
                )
                break
            try:
                tid = self.scheduler.pick(self, runnable)
            except ReplayDivergence as diverged:
                # A replay scheduler proved the attempt cannot follow its
                # recorded order; end the run with the prefix trace.
                self.divergence = diverged.reason
                break
            validate_pick(tid, runnable)
            self.schedule.append(tid)
            self._step(tid)

        trace = self._build_trace()
        if self.event_journal is not None:
            # Reaching here means the run *completed* (with or without a
            # failure); a killed recorder never writes this footer, which
            # is how salvage tells a finished journal from a torn one.
            self.event_journal.commit(trace_meta(trace))
        for observer in self.observers:
            observer.on_finish(self, trace)
        return trace

    def runnable_tids(self) -> List[int]:
        """Threads whose pending operation can complete now (ascending)."""
        return [
            ts.tid
            for ts in self.threads.values()
            if ts.status is ThreadStatus.READY and self._can_execute(ts)
        ]

    def pending_op_of(self, tid: int) -> Optional[Op]:
        """The operation thread ``tid`` will perform when next scheduled.

        For a thread re-acquiring a condition-variable mutex this is the
        synthetic LOCK op, which is also what its next event will be.
        """
        return self.threads[tid].pending_op

    # -- mid-run snapshots -------------------------------------------------

    def capture_state(self, *, serialize: bool = False) -> Dict[str, Any]:
        """A deep, reusable snapshot of a healthy mid-run machine.

        Valid only between steps with no failure recorded — callers
        capture through :meth:`run`'s ``on_snapshot`` hook, which fires
        exactly there.  The snapshot is independent of this machine (its
        mutable pieces are deep-copied) and can seed any number of fresh
        machines via :meth:`restore_state`.  Generators are represented
        by their (body, args, kwargs, feeds) recipe, not the generator
        object — see :class:`ThreadState`.

        With ``serialize=True`` the mutable pieces are stored as one
        pickle blob instead of a deep copy — considerably cheaper to
        capture (pickling runs in C), and every restore unpickles its
        own fresh copy.  Raises when the state does not pickle (e.g. a
        thread body that is a closure); callers fall back to the deep
        variant.
        """
        if self.failure is not None or self.divergence is not None:
            raise SimUsageError("cannot snapshot a failed or diverged run")
        thread_meta = []
        for tid in sorted(self.threads):
            ts = self.threads[tid]
            thread_meta.append(
                {
                    "tid": ts.tid,
                    "name": ts.name,
                    "status": ts.status,
                    "retval": ts.retval,
                    "resuming": ts.resuming_wait is not None,
                    "body": ts.body,
                    "args": ts.args,
                    "kwargs": ts.kwargs,
                    "feeds": list(ts.feeds),
                }
            )
        live = {
            "memory": self.memory,
            "sync": self.sync,
            "kernel": self.kernel,
            "clock": self.clock,
            "threads": thread_meta,
        }
        if serialize:
            mutable: Dict[str, Any] = {
                "blob": pickle.dumps(live, protocol=pickle.HIGHEST_PROTOCOL)
            }
        else:
            mutable = copy.deepcopy(live)
        # Events are immutable once emitted; sharing them across restores
        # keeps snapshots cheap.
        mutable["events"] = tuple(self.events)
        mutable["schedule"] = tuple(self.schedule)
        mutable["next_tid"] = self._next_tid
        return mutable

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`capture_state` snapshot into this *fresh* machine.

        The next :meth:`run` then continues from the snapshot point:
        the main-thread spawn and ``scheduler.on_run_start`` are skipped
        (the caller is responsible for fast-forwarding its scheduler with
        matching state).  The snapshot itself is not consumed — mutable
        pieces are deep-copied again here, so one snapshot can seed many
        sibling attempts.
        """
        if self._ran:
            raise SimUsageError("restore_state requires an unused Machine")
        events = state["events"]
        schedule = state["schedule"]
        blob = state.get("blob")
        if blob is not None:
            # serialized snapshot: unpickling *is* the private fresh copy
            mutable = pickle.loads(blob)
        else:
            mutable = copy.deepcopy(
                {key: state[key] for key in ("memory", "sync", "kernel", "clock", "threads")}
            )
        self.memory = mutable["memory"]
        self.sync = mutable["sync"]
        self.kernel = mutable["kernel"]
        self.clock = mutable["clock"]
        self.events = list(events)
        self.schedule = list(schedule)
        self._next_tid = state["next_tid"]
        self.threads = {}
        for meta in mutable["threads"]:
            ts = self._rebuild_thread(meta)
            self.threads[ts.tid] = ts
        self._resumed = True

    def _rebuild_thread(self, meta: Dict[str, Any]) -> ThreadState:
        """Reconstruct one thread by replaying its recorded feeds into a
        fresh generator (bodies are pure functions of their feeds)."""
        ctx = ThreadContext(meta["tid"])
        gen = meta["body"](ctx, *meta["args"], **(meta["kwargs"] or {}))
        ts = ThreadState(
            tid=meta["tid"],
            gen=gen,
            name=meta["name"],
            body=meta["body"],
            args=meta["args"],
            kwargs=meta["kwargs"],
        )
        op: Optional[Op] = None
        done = False
        try:
            for value in meta["feeds"]:  # feeds[0] is the priming None
                op = gen.send(value)
        except StopIteration as stop:
            done = True
            ts.status = ThreadStatus.DONE
            ts.pending_op = None
            ts.retval = stop.value
        if not done:
            ts.status = meta["status"]
            ts.retval = meta["retval"]
            ts.pending_op = op
            if meta["resuming"]:
                # Mid condition-wait re-acquire: pending op is the
                # synthetic LOCK, the original COND_WAIT is parked.
                ts.resuming_wait = op
                _, lock_name = op.obj
                ts.pending_op = Op(OpKind.LOCK, obj=lock_name)
        ts.feeds = list(meta["feeds"])
        return ts

    # -- thread management ---------------------------------------------------

    def _spawn_thread(self, body: Any, args: tuple, kwargs: Optional[dict] = None) -> int:
        tid = self._next_tid
        self._next_tid += 1
        ctx = ThreadContext(tid)
        gen = body(ctx, *args, **(kwargs or {}))
        ts = ThreadState(
            tid=tid,
            gen=gen,
            name=getattr(body, "__name__", "thread"),
            body=body,
            args=args,
            kwargs=kwargs,
        )
        self.threads[tid] = ts
        self._advance(ts, None)
        return tid

    def _advance(self, ts: ThreadState, send_value: Any) -> None:
        """Resume a thread's generator and stash its next pending op."""
        ts.feeds.append(send_value)
        try:
            op = ts.gen.send(send_value)
        except StopIteration as stop:
            ts.status = ThreadStatus.DONE
            ts.pending_op = None
            ts.retval = stop.value
            return
        except SimProgramError as exc:
            self._fail_thread(ts, exc)
            return
        except Exception as exc:  # application-level Python crash
            detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            self._fail_thread(ts, exc, detail=detail)
            return
        if not isinstance(op, Op):
            raise SimUsageError(
                f"thread {ts.name!r} yielded {op!r}; thread bodies must yield Op "
                "objects built via their ThreadContext"
            )
        ts.pending_op = op
        ts.status = ThreadStatus.READY

    def _fail_thread(self, ts: ThreadState, exc: Exception, detail: str = "") -> None:
        ts.status = ThreadStatus.FAILED
        ts.pending_op = None
        # Memory crashes are identified by their static crash site (the
        # region), not the dynamic address instance — hitting the same
        # use-after-free on a different element is the same bug.
        if isinstance(exc, SimMemoryError):
            where = exc.crash_site()
            detail = detail or str(exc)
        else:
            where = str(exc)
        self.failure = Failure(
            kind=FailureKind.CRASH,
            where=where,
            tid=ts.tid,
            gidx=len(self.events),
            detail=detail,
        )

    # -- runnability ------------------------------------------------------------

    def _can_execute(self, ts: ThreadState) -> bool:
        op = ts.pending_op
        if op is None:
            return False
        kind = op.kind
        if kind is OpKind.LOCK:
            return self.sync.mutex(op.obj).is_free
        if kind is OpKind.RDLOCK:
            return self.sync.rwlock(op.obj).can_read
        if kind is OpKind.WRLOCK:
            return self.sync.rwlock(op.obj).can_write
        if kind is OpKind.SEM_ACQUIRE:
            return self.sync.semaphore(op.obj).available
        if kind is OpKind.JOIN:
            target = self.threads.get(op.obj)
            return target is not None and target.finished
        if kind is OpKind.SYSCALL:
            return self.kernel.can_execute(op.name, op.args)
        return True

    # -- stepping ----------------------------------------------------------------

    def _step(self, tid: int) -> None:
        ts = self.threads[tid]
        op = ts.pending_op
        if op is None:
            raise SimUsageError(f"stepping thread {tid} with no pending op")
        cpu = self.clock.cpu_of(tid)
        self.clock.charge_op(cpu, op.cost)

        try:
            result, emit, advance = self._perform(ts, op)
        except SimProgramError as exc:
            self._fail_thread(ts, exc)
            return

        if emit:
            event = Event.from_op(len(self.events), tid, cpu, op, value=result)
            self.events.append(event)
            if self.event_journal is not None:
                self.event_journal.append(event_row(event))
            for observer in self.observers:
                observer.on_event(self, event)
            if self.failure is not None and self.failure.gidx is None:
                # an ASSERT failure points at its own event
                self.failure = Failure(
                    kind=self.failure.kind,
                    where=self.failure.where,
                    tid=self.failure.tid,
                    gidx=event.gidx,
                    detail=self.failure.detail,
                )
        if advance and self.failure is None:
            self._advance(ts, result)

    def _perform(self, ts: ThreadState, op: Op):
        """Apply the op's effect.

        Returns ``(result, emit_event, advance_generator)``.
        """
        kind = op.kind
        tid = ts.tid

        # Memory -----------------------------------------------------------
        if kind is OpKind.READ:
            return self.memory.load(op.addr), True, True
        if kind is OpKind.WRITE:
            self.memory.store(op.addr, op.value)
            return op.value, True, True
        if kind is OpKind.RMW:
            return self.memory.rmw(op.addr, op.value), True, True
        if kind is OpKind.CAS:
            expected, new = op.value
            return self.memory.cas(op.addr, expected, new), True, True
        if kind is OpKind.FREE:
            victims = self.memory.free(op.addr)
            return len(victims), True, True

        # Mutexes -------------------------------------------------------------
        if kind is OpKind.LOCK:
            self.sync.mutex(op.obj).acquire(tid)
            if ts.resuming_wait is not None:
                # Second phase of a condition wait: the mutex is back, the
                # original COND_WAIT finally returns.
                ts.resuming_wait = None
                return None, True, True
            return None, True, True
        if kind is OpKind.TRYLOCK:
            mutex = self.sync.mutex(op.obj)
            if mutex.is_free:
                mutex.acquire(tid)
                return True, True, True
            return False, True, True
        if kind is OpKind.UNLOCK:
            self.sync.mutex(op.obj).release(tid)
            return None, True, True

        # Reader-writer locks ---------------------------------------------------
        if kind is OpKind.RDLOCK:
            self.sync.rwlock(op.obj).acquire_read(tid)
            return None, True, True
        if kind is OpKind.WRLOCK:
            self.sync.rwlock(op.obj).acquire_write(tid)
            return None, True, True
        if kind is OpKind.RWUNLOCK:
            self.sync.rwlock(op.obj).release(tid)
            return None, True, True

        # Condition variables ---------------------------------------------------
        if kind is OpKind.COND_WAIT:
            cond_name, lock_name = op.obj
            self.sync.mutex(lock_name).release(tid)  # raises if not owner
            self.sync.cond(cond_name).add_waiter(tid)
            ts.status = ThreadStatus.WAITING_COND
            # The generator is resumed only after the wakeup + re-acquire.
            return None, True, False
        if kind is OpKind.COND_SIGNAL:
            woken = self.sync.cond(op.obj).wake_one()
            if woken is not None:
                self._wake_from_cond(woken)
            # The woken tid is the event value so offline happens-before
            # analysis can draw the signal -> wakeup edge.
            return woken, True, True
        if kind is OpKind.COND_BROADCAST:
            woken = self.sync.cond(op.obj).wake_all()
            for wtid in woken:
                self._wake_from_cond(wtid)
            return tuple(woken), True, True

        # Semaphores --------------------------------------------------------------
        if kind is OpKind.SEM_ACQUIRE:
            self.sync.semaphore(op.obj).acquire(tid)
            return None, True, True
        if kind is OpKind.SEM_RELEASE:
            self.sync.semaphore(op.obj).release()
            return None, True, True

        # Barriers ------------------------------------------------------------------
        if kind is OpKind.BARRIER_WAIT:
            barrier = self.sync.barrier(op.obj)
            tripped = barrier.arrive(tid)
            if tripped:
                waiters = barrier.release()
                generation = barrier.generation
                for wtid in waiters:
                    if wtid == tid:
                        continue
                    wts = self.threads[wtid]
                    wts.status = ThreadStatus.READY
                    self._advance(wts, generation)
                return generation, True, True
            ts.status = ThreadStatus.WAITING_BARRIER
            return None, True, False

        # Thread lifecycle ----------------------------------------------------------
        if kind is OpKind.SPAWN:
            child = self._spawn_thread(op.func, op.args)
            return child, True, True
        if kind is OpKind.JOIN:
            target = self.threads[op.obj]
            return target.retval, True, True

        # Environment ------------------------------------------------------------------
        if kind is OpKind.SYSCALL:
            if op.name == "sleep":
                self.clock.advance(self.clock.cpu_of(tid), op.args[0])
            result = self.kernel.execute(op.name, op.args, now=len(self.events))
            return result, True, True

        # Markers, local work, checks ---------------------------------------------------
        if kind in (OpKind.FUNC_ENTER, OpKind.FUNC_EXIT, OpKind.BASIC_BLOCK):
            return None, True, True
        if kind in (OpKind.LOCAL, OpKind.YIELD):
            return None, True, True
        if kind is OpKind.ASSERT:
            if not op.value:
                self.failure = Failure(
                    kind=FailureKind.ASSERTION,
                    where=op.msg or "assertion failed",
                    tid=tid,
                    gidx=None,  # filled in by _step once the event exists
                )
                ts.status = ThreadStatus.FAILED
                ts.pending_op = None
                return False, True, False
            return True, True, True

        raise SimUsageError(f"machine cannot perform op kind {kind}")

    def _wake_from_cond(self, tid: int) -> None:
        """Move a condition waiter to the mutex re-acquire phase."""
        ts = self.threads[tid]
        wait_op = ts.pending_op
        _, lock_name = wait_op.obj
        ts.resuming_wait = wait_op
        ts.pending_op = Op(OpKind.LOCK, obj=lock_name)
        ts.status = ThreadStatus.READY

    # -- stuck diagnosis -------------------------------------------------------

    def _diagnose_stuck(self) -> Failure:
        """No runnable thread, not all finished: deadlock or hang?"""
        waiting_for: Dict[int, Any] = {}
        for ts in self.threads.values():
            if ts.finished:
                continue
            op = ts.pending_op
            if ts.status is ThreadStatus.READY and op is not None:
                if op.kind is OpKind.LOCK:
                    waiting_for[ts.tid] = ("mutex", op.obj)
                elif op.kind in (OpKind.RDLOCK, OpKind.WRLOCK):
                    waiting_for[ts.tid] = ("rwlock", op.obj)
                elif op.kind is OpKind.JOIN:
                    waiting_for[ts.tid] = ("thread", op.obj)
                elif op.kind is OpKind.SEM_ACQUIRE:
                    waiting_for[ts.tid] = ("semaphore", op.obj)
                elif op.kind is OpKind.SYSCALL:
                    waiting_for[ts.tid] = ("syscall", op.name)

        # Wait-for edges: waiter -> holder (only attributable resources).
        edges: Dict[int, int] = {}
        for tid, (what, obj) in waiting_for.items():
            if what == "mutex":
                owner = self.sync.mutex(obj).owner
                if owner is not None:
                    edges[tid] = owner
            elif what == "rwlock":
                holders = self.sync.rwlock(obj).holders()
                if holders:
                    # functional graph: wait on the first holder; enough
                    # to expose writer/reader cycles
                    edges[tid] = holders[0]
            elif what == "thread":
                edges[tid] = obj

        cycle = _find_cycle(edges)
        if cycle:
            resources = sorted(
                str(waiting_for[tid][1]) for tid in cycle if tid in waiting_for
            )
            return Failure(
                kind=FailureKind.DEADLOCK,
                where="cycle:" + ",".join(resources),
                gidx=len(self.events),
                involved_tids=tuple(sorted(cycle)),
                detail=f"threads {sorted(cycle)} wait in a cycle",
            )
        stuck = sorted(
            ts.tid for ts in self.threads.values() if not ts.finished
        )
        return Failure(
            kind=FailureKind.HANG,
            where="no runnable thread",
            gidx=len(self.events),
            involved_tids=tuple(stuck),
            detail=f"threads {stuck} are blocked with no waker",
        )

    # -- trace assembly ------------------------------------------------------------

    def _build_trace(self) -> Trace:
        return Trace(
            program_name=self.program.name,
            events=self.events,
            schedule=self.schedule,
            final_memory=self.memory.snapshot(),
            stdout=list(self.kernel.stdout),
            files={
                name: self.kernel.file_contents(name)
                for name in self.kernel.file_names()
            },
            thread_returns={
                ts.tid: ts.retval
                for ts in self.threads.values()
                if ts.status is ThreadStatus.DONE
            },
            thread_names={ts.tid: ts.name for ts in self.threads.values()},
            failure=self.failure,
            clock=self.clock.summary(),
            steps=len(self.schedule),
            ncpus=self.config.ncpus,
            divergence=self.divergence,
        )


def _find_cycle(edges: Dict[int, int]) -> List[int]:
    """Nodes on some cycle of the functional graph ``edges`` (may be empty)."""
    for start in edges:
        seen: List[int] = []
        node = start
        while node in edges and node not in seen:
            seen.append(node)
            node = edges[node]
        if node in seen:
            return seen[seen.index(node):]
    return []
