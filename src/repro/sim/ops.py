"""Operation vocabulary of the simulated machine.

Every observable action a simulated thread can take is an :class:`Op`.
Thread bodies are generators that yield ops and receive the op's result
back from the machine::

    def worker(ctx):
        value = yield ctx.read("counter")
        yield ctx.write("counter", value + 1)

The vocabulary mirrors what PRES's instrumentation can see on a real
machine: shared-memory accesses, synchronization operations, system calls,
function boundaries and basic-block markers.  Sketching mechanisms are
defined as subsets of this vocabulary (see :mod:`repro.core.sketches`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

Address = Any  # a string, or a tuple like ("buf", 3); must be hashable


class OpKind(enum.Enum):
    """Kinds of operations a simulated thread can perform."""

    # Shared-memory accesses.
    READ = "read"
    WRITE = "write"
    RMW = "rmw"  # atomic read-modify-write
    CAS = "cas"  # atomic compare-and-swap
    FREE = "free"  # deallocate an address (or a region prefix)

    # Synchronization.
    LOCK = "lock"
    TRYLOCK = "trylock"
    UNLOCK = "unlock"
    RDLOCK = "rdlock"
    WRLOCK = "wrlock"
    RWUNLOCK = "rwunlock"
    COND_WAIT = "cond_wait"
    COND_SIGNAL = "cond_signal"
    COND_BROADCAST = "cond_broadcast"
    SEM_ACQUIRE = "sem_acquire"
    SEM_RELEASE = "sem_release"
    BARRIER_WAIT = "barrier_wait"

    # Thread lifecycle (these are synchronization points too).
    SPAWN = "spawn"
    JOIN = "join"

    # Environment.
    SYSCALL = "syscall"

    # Control-flow markers emitted by instrumentation.
    FUNC_ENTER = "func_enter"
    FUNC_EXIT = "func_exit"
    BASIC_BLOCK = "basic_block"

    # Thread-local work and scheduling hints.
    LOCAL = "local"
    YIELD = "yield"

    # Program-level invariant check; a false condition is a failure.
    ASSERT = "assert"


#: Kinds that read and/or write shared memory.  These are the accesses whose
#: relative order across threads is the unrecorded non-determinism PRES's
#: replayer must search (unless the sketch captured them).
MEMORY_KINDS = frozenset(
    {OpKind.READ, OpKind.WRITE, OpKind.RMW, OpKind.CAS, OpKind.FREE}
)

#: Kinds that *write* shared memory (for race detection two accesses
#: conflict if they touch the same address and at least one is a write).
WRITE_KINDS = frozenset({OpKind.WRITE, OpKind.RMW, OpKind.CAS, OpKind.FREE})

#: Synchronization kinds, including thread lifecycle events.
SYNC_KINDS = frozenset(
    {
        OpKind.LOCK,
        OpKind.TRYLOCK,
        OpKind.UNLOCK,
        OpKind.RDLOCK,
        OpKind.WRLOCK,
        OpKind.RWUNLOCK,
        OpKind.COND_WAIT,
        OpKind.COND_SIGNAL,
        OpKind.COND_BROADCAST,
        OpKind.SEM_ACQUIRE,
        OpKind.SEM_RELEASE,
        OpKind.BARRIER_WAIT,
        OpKind.SPAWN,
        OpKind.JOIN,
    }
)

#: Kinds that may block the issuing thread until some condition holds.
BLOCKING_KINDS = frozenset(
    {
        OpKind.LOCK,
        OpKind.RDLOCK,
        OpKind.WRLOCK,
        OpKind.COND_WAIT,
        OpKind.SEM_ACQUIRE,
        OpKind.BARRIER_WAIT,
        OpKind.JOIN,
        OpKind.SYSCALL,  # only some syscalls block; the kernel decides
    }
)


@dataclass(frozen=True)
class Op:
    """One operation yielded by a simulated thread.

    Only the fields relevant to ``kind`` are populated; the rest keep their
    defaults.  Ops are immutable so they can be shared and used as parts of
    dictionary keys.

    :param kind: what the operation does.
    :param addr: target address for memory kinds.
    :param value: value to store (WRITE), expected/new pair (CAS) or
        asserted condition (ASSERT).
    :param obj: name of the synchronization object (lock/cond/sem/barrier)
        or the joined thread id (JOIN).
    :param name: syscall or function name.
    :param args: positional syscall arguments or spawn arguments.
    :param func: thread body callable for SPAWN.
    :param label: basic-block label for BASIC_BLOCK.
    :param msg: human-readable message for ASSERT.
    :param cost: virtual-time units the op consumes on its CPU.
    """

    kind: OpKind
    addr: Optional[Address] = None
    value: Any = None
    obj: Any = None
    name: Optional[str] = None
    args: Tuple[Any, ...] = ()
    func: Optional[Callable[..., Any]] = field(default=None, compare=False)
    label: Optional[str] = None
    msg: Optional[str] = None
    cost: int = 1

    def is_memory_access(self) -> bool:
        """Whether this op reads or writes shared memory."""
        return self.kind in MEMORY_KINDS

    def is_write(self) -> bool:
        """Whether this op may modify shared memory."""
        return self.kind in WRITE_KINDS

    def is_sync(self) -> bool:
        """Whether this op is a synchronization operation."""
        return self.kind in SYNC_KINDS

    def describe(self) -> str:
        """Short human-readable rendering, used in logs and error messages."""
        kind = self.kind.value
        if self.kind in MEMORY_KINDS:
            return f"{kind}({self.addr!r})"
        if self.kind in SYNC_KINDS:
            return f"{kind}({self.obj!r})"
        if self.kind is OpKind.SYSCALL:
            return f"syscall {self.name}{self.args!r}"
        if self.kind in (OpKind.FUNC_ENTER, OpKind.FUNC_EXIT):
            return f"{kind}({self.name})"
        if self.kind is OpKind.BASIC_BLOCK:
            return f"bb({self.label})"
        if self.kind is OpKind.ASSERT:
            return f"assert({self.msg})"
        return kind
