"""Execution statistics: what a trace was made of.

Summaries the benchmarks and docs quote — operation mix, per-thread
activity, synchronization density, lock contention — computed in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.ops import MEMORY_KINDS, SYNC_KINDS, OpKind
from repro.sim.trace import Trace


@dataclass
class LockStats:
    """Acquisition counts and handoffs for one mutex/rwlock."""

    name: str
    acquisitions: int = 0
    handoffs: int = 0  # consecutive acquisitions by different threads
    last_owner: int = -1


@dataclass
class TraceStats:
    """One-pass summary of an execution."""

    total_events: int = 0
    by_kind: Dict[OpKind, int] = field(default_factory=dict)
    per_thread: Dict[int, int] = field(default_factory=dict)
    memory_ops: int = 0
    sync_ops: int = 0
    syscall_ops: int = 0
    distinct_addresses: int = 0
    locks: Dict[str, LockStats] = field(default_factory=dict)

    @property
    def sync_density(self) -> float:
        """Sync operations per 1000 events — the knob SYNC-sketch cost
        tracks, and the reason scientific kernels record almost for free."""
        if self.total_events == 0:
            return 0.0
        return 1000.0 * self.sync_ops / self.total_events

    @property
    def memory_density(self) -> float:
        if self.total_events == 0:
            return 0.0
        return 1000.0 * self.memory_ops / self.total_events

    def contended_locks(self) -> List[str]:
        """Locks whose ownership actually moved between threads."""
        return sorted(
            name for name, stats in self.locks.items() if stats.handoffs > 0
        )

    def to_metrics(self, registry, prefix: str = "trace") -> None:
        """Fold this summary into a metrics registry.

        ``registry`` is anything with the
        :class:`~repro.obs.metrics.MetricsRegistry` counter/gauge surface
        (duck-typed so :mod:`repro.sim` keeps no import edge into
        :mod:`repro.obs`).  Counters are charged with the trace's event
        totals; densities land on gauges.
        """
        registry.counter(f"{prefix}_events").inc(self.total_events)
        registry.counter(f"{prefix}_memory_ops").inc(self.memory_ops)
        registry.counter(f"{prefix}_sync_ops").inc(self.sync_ops)
        registry.counter(f"{prefix}_syscall_ops").inc(self.syscall_ops)
        registry.gauge(f"{prefix}_threads").set(len(self.per_thread))
        registry.gauge(f"{prefix}_sync_density").set(self.sync_density)
        registry.gauge(f"{prefix}_memory_density").set(self.memory_density)
        registry.gauge(f"{prefix}_contended_locks").set(
            len(self.contended_locks())
        )

    def describe(self) -> str:
        top_kinds = sorted(
            self.by_kind.items(), key=lambda kv: -kv[1]
        )[:5]
        kinds = ", ".join(f"{k.value}:{n}" for k, n in top_kinds)
        return (
            f"{self.total_events} events across {len(self.per_thread)} threads; "
            f"sync density {self.sync_density:.1f}/1k, "
            f"memory density {self.memory_density:.1f}/1k; "
            f"top kinds: {kinds}; "
            f"contended locks: {', '.join(self.contended_locks()) or 'none'}"
        )


_ACQUIRE_KINDS = (OpKind.LOCK, OpKind.WRLOCK, OpKind.RDLOCK)


def trace_stats(trace: Trace) -> TraceStats:
    """Compute the summary for one trace."""
    stats = TraceStats(total_events=len(trace.events))
    addresses = set()
    for event in trace.events:
        stats.by_kind[event.kind] = stats.by_kind.get(event.kind, 0) + 1
        stats.per_thread[event.tid] = stats.per_thread.get(event.tid, 0) + 1
        if event.kind in MEMORY_KINDS:
            stats.memory_ops += 1
            addresses.add(event.addr)
        elif event.kind in SYNC_KINDS:
            stats.sync_ops += 1
        elif event.kind is OpKind.SYSCALL:
            stats.syscall_ops += 1
        acquired = event.kind in _ACQUIRE_KINDS or (
            event.kind is OpKind.TRYLOCK and event.value
        )
        if acquired:
            lock = stats.locks.setdefault(event.obj, LockStats(event.obj))
            lock.acquisitions += 1
            if lock.last_owner not in (-1, event.tid):
                lock.handoffs += 1
            lock.last_owner = event.tid
    stats.distinct_addresses = len(addresses)
    return stats
