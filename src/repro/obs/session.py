"""One observability session: a tracer plus a metrics registry.

Everything downstream (recorder, reproducer, explorers, the degradation
ladder, the CLI) takes a single :class:`ObsSession` handle instead of
separate tracer/metrics arguments, and the shared :data:`NULL_SESSION`
makes "observability off" the zero-cost default — callers never
``if obs is not None`` around instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.export import save_chrome_trace
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass
class ObsSession:
    """The observability handles threaded through one pipeline run."""

    tracer: Tracer
    metrics: MetricsRegistry

    @property
    def enabled(self) -> bool:
        """Whether any instrument in this session is live."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def create(cls, trace: bool = True, metrics: bool = True) -> "ObsSession":
        """A live session; disable either half to skip its cost."""
        return cls(
            tracer=Tracer(enabled=True) if trace else NULL_TRACER,
            metrics=MetricsRegistry(enabled=True) if metrics else NULL_METRICS,
        )

    def write_trace(self, path: str) -> str:
        """Export the collected spans as Chrome-trace JSON at ``path``."""
        return save_chrome_trace(self.tracer, path)

    def write_metrics(self, path: str) -> str:
        """Write the metrics snapshot JSON at ``path`` atomically."""
        from repro.robust.atomic import atomic_write_text

        return atomic_write_text(path, self.metrics.to_json())


#: The shared disabled session: a null tracer and a null registry.
NULL_SESSION = ObsSession(tracer=NULL_TRACER, metrics=NULL_METRICS)


def resolve_session(config: Any, obs: Optional[ObsSession]) -> ObsSession:
    """The session a pipeline stage should use.

    An explicit ``obs`` wins; otherwise the ``trace`` / ``metrics`` knobs
    on an :class:`~repro.core.explorer.ExplorerConfig`-shaped config turn
    a fresh session on (looked up with ``getattr`` so this module keeps
    no import edge into :mod:`repro.core`); otherwise the shared
    :data:`NULL_SESSION`.
    """
    if obs is not None:
        return obs
    trace = bool(getattr(config, "trace", False))
    metrics = bool(getattr(config, "metrics", False))
    if trace or metrics:
        return ObsSession.create(trace=trace, metrics=metrics)
    return NULL_SESSION
