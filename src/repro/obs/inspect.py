"""Render a saved observability trace as text (``pres inspect``).

Where the Chrome exporter targets Perfetto, this module targets a
terminal: the same document renders as an *attempt timeline* — one row
per replay attempt, one column per timeline lane, following the
conventions of :mod:`repro.analysis.timeline` (right-justified time
column, per-column widths, a ``<-`` marker on the row that matters) —
plus a phase table and per-category totals, so "why did this
reproduction take 9 attempts" is answerable without leaving the shell.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.tracer import PARENT_TRACK

#: categories rendered in the phase table (session-level structure).
_PHASE_CATEGORIES = frozenset(
    {"session", "record", "ladder", "engine", "explore"}
)


def _ms(value_us: float) -> str:
    """Microseconds rendered as fixed-width milliseconds."""
    return f"{value_us / 1000.0:.3f}"


def _split(payload: Dict[str, Any]):
    """(lane names, span events, instant events) from a trace document."""
    lanes: Dict[int, str] = {}
    spans: List[Dict[str, Any]] = []
    instants: List[Dict[str, Any]] = []
    for event in payload.get("traceEvents", []):
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "thread_name":
                lanes[int(event["tid"])] = event["args"]["name"]
            continue
        if phase == "X":
            spans.append(event)
        elif phase == "i":
            instants.append(event)
    spans.sort(key=lambda e: (e.get("ts", 0), e.get("tid", 0)))
    instants.sort(key=lambda e: (e.get("ts", 0), e.get("tid", 0)))
    return lanes, spans, instants


def _attempt_cell(event: Dict[str, Any]) -> str:
    """One attempt span as a compact cell: ``s<seed> c<n> <outcome>``."""
    args = event.get("args", {})
    parts: List[str] = []
    if "seed" in args:
        parts.append(f"s{args['seed']}")
    if "constraints" in args:
        parts.append(f"c{args['constraints']}")
    parts.append(str(args.get("outcome", "?")))
    return " ".join(parts)


def render_attempt_timeline(payload: Dict[str, Any]) -> str:
    """The attempt-by-attempt view: one column per timeline lane."""
    lanes, spans, _ = _split(payload)
    attempts = [e for e in spans if e.get("cat") == "attempt"]
    if not attempts:
        return "(no attempt spans in this trace)"
    tids = sorted({int(e.get("tid", PARENT_TRACK)) for e in attempts})
    labels = {tid: lanes.get(tid, f"track {tid}") for tid in tids}
    cells = [(int(e.get("tid", 0)), _attempt_cell(e), e) for e in attempts]
    widths = {
        tid: max(
            [len(labels[tid])]
            + [len(text) for cell_tid, text, _ in cells if cell_tid == tid]
        )
        for tid in tids
    }
    time_width = max(len("ms"), *(len(_ms(e.get("ts", 0))) for e in attempts))
    header = ["ms".rjust(time_width)] + [
        labels[tid].ljust(widths[tid]) for tid in tids
    ]
    divider = ["-" * time_width] + ["-" * widths[tid] for tid in tids]
    lines = ["  ".join(header), "  ".join(divider)]
    for tid, text, event in cells:
        row = [_ms(event.get("ts", 0)).rjust(time_width)]
        for col in tids:
            row.append((text if col == tid else "").ljust(widths[col]))
        line = "  ".join(row).rstrip()
        if event.get("args", {}).get("outcome") == "matched":
            line += "   <- matched"
        lines.append(line)
    return "\n".join(lines)


def render_phases(payload: Dict[str, Any]) -> str:
    """Session-level phases (record, explore batches, ladder rungs)."""
    _, spans, _ = _split(payload)
    phases = [e for e in spans if e.get("cat") in _PHASE_CATEGORIES]
    if not phases:
        return "(no phase spans in this trace)"
    name_width = max(len("phase"), *(len(e["name"]) for e in phases))
    lines = [
        f"{'phase'.ljust(name_width)}  {'start ms'.rjust(9)}  {'dur ms'.rjust(9)}",
        f"{'-' * name_width}  {'-' * 9}  {'-' * 9}",
    ]
    for event in phases:
        lines.append(
            f"{event['name'].ljust(name_width)}  "
            f"{_ms(event.get('ts', 0)).rjust(9)}  "
            f"{_ms(event.get('dur', 0)).rjust(9)}"
        )
    return "\n".join(lines)


def render_totals(payload: Dict[str, Any]) -> str:
    """Per-category span counts and total time."""
    _, spans, instants = _split(payload)
    totals: Dict[str, Tuple[int, float]] = {}
    for event in spans:
        count, dur = totals.get(event.get("cat", "?"), (0, 0.0))
        totals[event.get("cat", "?")] = (count + 1, dur + event.get("dur", 0))
    for event in instants:
        count, dur = totals.get(event.get("cat", "?"), (0, 0.0))
        totals[event.get("cat", "?")] = (count + 1, dur)
    if not totals:
        return "(empty trace)"
    width = max(len("category"), *(len(c) for c in totals))
    lines = [
        f"{'category'.ljust(width)}  {'events'.rjust(6)}  {'total ms'.rjust(9)}",
        f"{'-' * width}  {'-' * 6}  {'-' * 9}",
    ]
    for category in sorted(totals):
        count, dur = totals[category]
        lines.append(
            f"{category.ljust(width)}  {str(count).rjust(6)}  "
            f"{_ms(dur).rjust(9)}"
        )
    return "\n".join(lines)


def render_trace(payload: Dict[str, Any]) -> str:
    """The full ``pres inspect`` report for one trace document."""
    lanes, spans, instants = _split(payload)
    workers = sorted(tid for tid in lanes if tid != PARENT_TRACK)
    span_end = max((e.get("ts", 0) + e.get("dur", 0) for e in spans), default=0)
    header = (
        f"pres trace: {len(spans)} span(s), {len(instants)} instant "
        f"event(s), {len(workers)} worker lane(s), "
        f"{_ms(span_end)} ms timeline"
    )
    sections = [
        header,
        "",
        "phases",
        render_phases(payload),
        "",
        "attempt timeline",
        render_attempt_timeline(payload),
        "",
        "totals by category",
        render_totals(payload),
    ]
    return "\n".join(sections)
