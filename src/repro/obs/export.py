"""Exporters: Chrome ``trace_event`` JSON for Perfetto / chrome://tracing.

The tracer's span list (:mod:`repro.obs.tracer`) becomes a standard
`trace_event <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
document: complete spans are ``"ph": "X"`` events, instants are
``"ph": "i"``, and every timeline lane gets a ``thread_name`` metadata
record — the parent explorer on track 0, one track per replay worker
above it — so a reproduction session opens directly in Perfetto with
replay attempts laid out worker-by-worker.

The written document is ``{"traceEvents": [...], ...}``; both Perfetto
and ``chrome://tracing`` accept that envelope (and the bare-array form,
which :func:`load_chrome_trace` also reads back).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.tracer import PARENT_TRACK, SpanRecord, Tracer

#: pid stamped on every exported event (one process == one trace).
EXPORT_PID = 1

#: recognized trace_event phases for validation.
_KNOWN_PHASES = {"X", "i", "M"}


def _jsonable_args(args: Dict[str, Any]) -> Dict[str, Any]:
    """Span annotations coerced to JSON scalars (repr for the exotic)."""
    out: Dict[str, Any] = {}
    for key in sorted(args):
        value = args[key]
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def _lane_name(track: int) -> str:
    """Human name for a timeline lane."""
    return "explorer" if track == PARENT_TRACK else f"worker {track}"


def chrome_trace_events(
    spans: Sequence[SpanRecord],
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` array for a span list.

    Metadata (process/thread names) comes first, then spans sorted by
    start time with ties broken by track — a canonical order, so the
    exported document is a pure function of the span list.
    """
    tracks = sorted({span.track for span in spans} | {PARENT_TRACK})
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": EXPORT_PID,
            "tid": PARENT_TRACK,
            "args": {"name": "pres replay session"},
        }
    ]
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": EXPORT_PID,
                "tid": track,
                "args": {"name": _lane_name(track)},
            }
        )
    for span in sorted(spans, key=lambda s: (s.start_us, s.track, s.name)):
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "pid": EXPORT_PID,
            "tid": span.track,
            "ts": round(span.start_us, 3),
            "args": _jsonable_args(span.args),
        }
        if span.duration_us > 0:
            event["ph"] = "X"
            event["dur"] = round(span.duration_us, 3)
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    return events


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The full Chrome-trace document for a tracer's collected spans."""
    return {
        "traceEvents": chrome_trace_events(tracer.spans),
        "displayTimeUnit": "ms",
        "otherData": {"tool": "pres", "format": "pres-obs-trace", "version": 1},
    }


def save_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the Chrome-trace JSON for ``tracer`` to ``path`` atomically."""
    from repro.robust.atomic import atomic_writer

    with atomic_writer(path) as handle:
        json.dump(chrome_trace(tracer), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Read a saved trace document back, normalized to the dict envelope.

    Accepts both the ``{"traceEvents": [...]}`` envelope this module
    writes and a bare event array (the other shape Perfetto accepts).
    Malformed documents raise ``ValueError`` with a named reason — the
    CLI turns those into exit-code-2 messages, never tracebacks.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from None
    if isinstance(payload, list):
        payload = {"traceEvents": payload}
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise ValueError(
            f"{path} is not a Chrome trace (no traceEvents array); "
            "expected a file written by `pres reproduce --trace-out`"
        )
    for index, event in enumerate(payload["traceEvents"], start=1):
        problem = validate_trace_event(event)
        if problem:
            raise ValueError(f"{path}: trace event {index} {problem}")
    return payload


def validate_trace_event(event: Any) -> str:
    """Why one ``traceEvents`` element is malformed; empty string if OK.

    This is the schema check the exporter's tests (and ``pres inspect``)
    share: required keys per phase, numeric timestamps, known phase.
    """
    if not isinstance(event, dict):
        return "is not an object"
    phase = event.get("ph")
    if phase not in _KNOWN_PHASES:
        return f"has unknown phase {phase!r}"
    if "name" not in event or "pid" not in event or "tid" not in event:
        return "is missing name/pid/tid"
    if phase == "M":
        return ""
    if not isinstance(event.get("ts"), (int, float)):
        return "has a non-numeric ts"
    if phase == "X" and not isinstance(event.get("dur"), (int, float)):
        return "is a complete span without a numeric dur"
    return ""
