"""Span/event tracing for the replay pipeline.

The exploration loop is where PRES earns its headline claim — feedback
converges "in fewer than 10 attempts" — and where every future perf PR
must justify itself.  :class:`Tracer` makes that loop visible: code under
instrumentation opens *spans* (``with tracer.span("attempt", ...)``) and
drops *instant events* (``tracer.instant("cache-hit")``), and the
collected :class:`SpanRecord` list exports to Chrome ``trace_event`` JSON
(:mod:`repro.obs.export`) or the attempt-timeline renderer
(:mod:`repro.obs.inspect`).

Two properties are load-bearing:

* **Near-zero overhead when disabled.**  A disabled tracer returns one
  shared no-op span object from every :meth:`Tracer.span` call and
  records nothing — no per-call allocation, no clock read.  Hot paths
  may therefore keep their instrumentation unconditional (the E12 bench
  budget allows < 2% regression with observability off).
* **Cross-process mergeability.**  Replay workers run in separate
  processes but share the parent's monotonic-clock epoch (shipped inside
  the pickled :class:`~repro.core.parallel.AttemptContext`), so worker
  spans carry parent-comparable timestamps and are merged
  deterministically — in batch *fold order*, never completion order —
  into the parent timeline (see ``ParallelExplorer._fold``).

Timestamps are wall-clock and therefore not reproducible run-to-run; the
deterministic view of a session is the metrics snapshot
(:mod:`repro.obs.metrics`), not the trace.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Track 0 is the session's own timeline; replay-worker lanes are 1..jobs.
PARENT_TRACK = 0


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (or instant event, when ``duration_us`` is 0).

    Records are plain frozen dataclasses so they pickle compactly across
    the process-pool boundary (workers ship them back on
    :class:`~repro.core.parallel.AttemptOutcome`).
    """

    #: span name, e.g. ``"attempt"`` or ``"rung rw"``.
    name: str
    #: coarse grouping used by exporters: ``record`` | ``explore`` |
    #: ``attempt`` | ``replay`` | ``feedback`` | ``cache`` | ``ladder`` |
    #: ``engine`` | ``session``.
    category: str
    #: microseconds since the owning tracer's epoch.
    start_us: float
    #: span length in microseconds; 0 marks an instant event.
    duration_us: float
    #: timeline lane (:data:`PARENT_TRACK`, or a worker lane >= 1).
    track: int = PARENT_TRACK
    #: pid of the recording process; the parent maps worker pids to
    #: stable lane numbers at fold time.
    pid: int = 0
    #: free-form annotations (seed, outcome, constraint count, ...).
    args: Dict[str, Any] = field(default_factory=dict)

    def retrack(self, track: int) -> "SpanRecord":
        """A copy of this record on a different timeline lane."""
        return SpanRecord(
            name=self.name,
            category=self.category,
            start_us=self.start_us,
            duration_us=self.duration_us,
            track=track,
            pid=self.pid,
            args=dict(self.args),
        )


class _NullSpan:
    """The shared no-op span a disabled tracer hands out.

    One module-level instance serves every ``span()`` call of every
    disabled tracer — the zero-allocation property the disabled-mode
    test pins down by identity.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op; returns itself so ``with ... as span`` still works."""
        return self

    def __exit__(self, *exc: Any) -> bool:
        """No-op; never swallows exceptions."""
        return False

    def note(self, **args: Any) -> None:
        """Discard annotations."""


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; finalizes into a :class:`SpanRecord` on exit."""

    __slots__ = ("_tracer", "name", "category", "track", "args", "_start_us")

    def __init__(
        self, tracer: "Tracer", name: str, category: str, track: int,
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self.args = args
        self._start_us = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._start_us = self._tracer.now_us()
        return self

    def note(self, **args: Any) -> None:
        """Attach annotations (outcome, steps, ...) to the open span."""
        self.args.update(args)

    def __exit__(self, *exc: Any) -> bool:
        tracer = self._tracer
        tracer.spans.append(
            SpanRecord(
                name=self.name,
                category=self.category,
                start_us=self._start_us,
                duration_us=tracer.now_us() - self._start_us,
                track=self.track,
                pid=tracer.pid,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects spans and instant events on one monotonic timeline.

    :param enabled: a disabled tracer records nothing and returns the
        shared :data:`NULL_SPAN` from every :meth:`span` call.
    :param epoch: timeline origin in ``clock()`` units.  Pass a parent
        tracer's epoch to a worker-process tracer so both timelines are
        directly comparable (``time.perf_counter`` is system-wide on the
        platforms the process pool runs on).
    :param clock: injectable time source, for deterministic tests.
    """

    def __init__(
        self,
        enabled: bool = True,
        epoch: Optional[float] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = enabled
        self._clock = clock
        self.epoch = clock() if epoch is None else epoch
        self.pid = os.getpid()
        #: finished spans, in completion order; exporters sort by start.
        self.spans: List[SpanRecord] = []

    def now_us(self) -> float:
        """Microseconds since this tracer's epoch."""
        return (self._clock() - self.epoch) * 1e6

    def span(
        self, name: str, category: str = "replay", track: int = PARENT_TRACK,
        **args: Any,
    ):
        """Open a span as a context manager.

        Disabled tracers return the shared no-op span; callers never need
        their own ``if tracer.enabled`` guard (though guarding is still
        worthwhile when *computing the annotations* is itself costly).
        """
        if not self.enabled:
            return NULL_SPAN
        return _LiveSpan(self, name, category, track, args)

    def instant(
        self, name: str, category: str = "replay", track: int = PARENT_TRACK,
        **args: Any,
    ) -> None:
        """Record a zero-duration event at the current time."""
        if not self.enabled:
            return
        self.spans.append(
            SpanRecord(
                name=name,
                category=category,
                start_us=self.now_us(),
                duration_us=0.0,
                track=track,
                pid=self.pid,
                args=args,
            )
        )

    def absorb(self, records: Iterable[SpanRecord], track: int) -> None:
        """Merge spans recorded elsewhere (a pool worker) onto ``track``.

        Callers are responsible for calling this in a deterministic order
        — the parallel engine absorbs in batch fold order, so the span
        *list* is reproducible even though timestamps are not.
        """
        if not self.enabled:
            return
        for record in records:
            self.spans.append(record.retrack(track))

    def worker_lanes(self) -> Tuple[int, ...]:
        """The distinct non-parent lanes present, in sorted order."""
        return tuple(
            sorted({s.track for s in self.spans if s.track != PARENT_TRACK})
        )


#: The shared disabled tracer; the default everywhere observability is off.
NULL_TRACER = Tracer(enabled=False, epoch=0.0)
