"""Observability for the PRES pipeline: tracing, metrics, exporters.

PRES's claim lives or dies on its exploration loop, and replay systems
live or die on their introspection tooling (rr and iReplayer both make
the same point) — this package is that tooling for the reproduction:

* :mod:`repro.obs.tracer` — a span/event tracer with a context-manager
  API and near-zero overhead when disabled; worker-process spans merge
  deterministically into the parent timeline.
* :mod:`repro.obs.metrics` — counters, gauges and histograms
  (attempts/sec, cache hit ratio, divergence depth, constraint-set
  growth, per-rung budget burn), snapshotable as JSON and printable as
  an ASCII summary.  Counters and histograms are updated only at
  schedule-deterministic points, so they are identical for every
  ``jobs`` value at a fixed ``batch_size``.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON that Perfetto /
  ``chrome://tracing`` open directly, one track per replay worker.
* :mod:`repro.obs.inspect` — the ``pres inspect`` text renderer: attempt
  timeline, phase table, per-category totals.
* :mod:`repro.obs.session` — the :class:`ObsSession` handle the rest of
  the codebase threads around, with :data:`NULL_SESSION` as the
  zero-cost default.

Entry points: ``reproduce(..., obs=...)`` /
``ExplorerConfig(trace=True, metrics=True)`` in code, and
``pres reproduce --trace-out t.json --metrics-out m.json`` plus
``pres inspect t.json`` on the command line.  See
``docs/observability.md`` for the guided tour.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    load_chrome_trace,
    save_chrome_trace,
    validate_trace_event,
)
from repro.obs.inspect import (
    render_attempt_timeline,
    render_phases,
    render_totals,
    render_trace,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.session import NULL_SESSION, ObsSession, resolve_session
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SESSION",
    "NULL_SPAN",
    "NULL_TRACER",
    "ObsSession",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "load_chrome_trace",
    "render_attempt_timeline",
    "render_phases",
    "render_totals",
    "render_trace",
    "resolve_session",
    "save_chrome_trace",
    "validate_trace_event",
]
