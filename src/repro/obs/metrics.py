"""Metrics for the record/replay pipeline: counters, gauges, histograms.

Where the tracer (:mod:`repro.obs.tracer`) answers "where did the time
go", the metrics registry answers "what did the search do" — attempts by
outcome, cache hit ratio, constraint-set growth, divergence depth,
per-rung budget burn.  The registry snapshots to JSON
(:meth:`MetricsRegistry.snapshot`) and prints as an ASCII summary
(:meth:`MetricsRegistry.render`).

Determinism contract
--------------------

Counters and histograms are only ever updated at schedule-deterministic
points (the parallel engine's batch *fold*, never inside racing pool
workers), so for a fixed ``batch_size`` the counter and histogram
sections of a snapshot are **identical for every value of ``jobs``** —
the observability analogue of the engine's jobs-invariance contract,
pinned by ``tests/obs/test_metrics.py``.  Wall-clock and host-shape
figures (worker counts, elapsed time) belong in *gauges*, which carry no
such guarantee.

A disabled registry hands out shared no-op instruments, so hot paths can
keep their ``metrics.counter("attempts").inc()`` calls unconditional.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

Number = Union[int, float]

#: Histogram bucket upper bounds: powers of two up to ~1M, then overflow.
#: Fixed bounds keep snapshots comparable across runs and hosts.
BUCKET_BOUNDS = tuple(2 ** k for k in range(21))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); amounts must not be negative."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A last-write-wins value (wall time, pool size, overhead %)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = value

    def max(self, value: Number) -> None:
        """Keep the running maximum (peak frontier size, ...)."""
        if self.value is None or value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket distribution (power-of-two bounds).

    Tracks count/sum/min/max plus per-bucket counts, so snapshots are
    small, mergeable, and independent of observation order.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[str, int] = {}

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        label = "inf"
        for bound in BUCKET_BOUNDS:
            if value <= bound:
                label = f"le_{bound}"
                break
        self.buckets[label] = self.buckets.get(label, 0) + 1

    def to_record(self) -> Dict[str, Any]:
        """The snapshot shape for one histogram."""
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.total,
            "mean": round(mean, 6),
            "min": self.min,
            "max": self.max,
            "buckets": {k: self.buckets[k] for k in sorted(self.buckets)},
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = "<disabled>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        """No-op."""

    def set(self, value: Number) -> None:
        """No-op."""

    def max(self, value: Number) -> None:
        """No-op."""

    def observe(self, value: Number) -> None:
        """No-op."""


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, created on first use, snapshotable as JSON."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str):
        """The counter called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str):
        """The gauge called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str):
        """The histogram called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """The full registry as a JSON-ready dict, keys sorted.

        ``counters`` and ``histograms`` are deterministic for a fixed
        exploration schedule; ``gauges`` may carry host/wall figures.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_record()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        """The snapshot serialized (stable key order, trailing newline)."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """A compact ASCII summary for the CLI."""
        lines: List[str] = ["metrics:"]
        if not (self._counters or self._gauges or self._histograms):
            lines.append("  (none recorded)")
            return "\n".join(lines)
        width = max(
            (len(n) for n in (*self._counters, *self._gauges, *self._histograms)),
            default=0,
        )
        for name in sorted(self._counters):
            lines.append(f"  {name.ljust(width)}  {self._counters[name].value}")
        for name in sorted(self._gauges):
            lines.append(f"  {name.ljust(width)}  {self._gauges[name].value}")
        for name in sorted(self._histograms):
            h = self._histograms[name].to_record()
            lines.append(
                f"  {name.ljust(width)}  n={h['count']} mean={h['mean']:g} "
                f"min={h['min']} max={h['max']}"
            )
        return "\n".join(lines)


#: The shared disabled registry; the default everywhere metrics are off.
NULL_METRICS = MetricsRegistry(enabled=False)
