"""Production-run recording.

:func:`record` executes a program once under a seeded random scheduler
(standing in for the production OS scheduler) with a
:class:`SketchRecorder` observer attached.  The observer appends every
sketch-visible event to the log and charges the cost model to the
machine's recorded clock, so the returned :class:`RecordedRun` carries
both the sketch and the overhead figures.

A RecordedRun deliberately does *not* contain the schedule or the full
event list — only what PRES's production-side instrumentation could know:
the program identity and inputs, the machine configuration, the sketch
log, the observed failure and the cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.cost import DEFAULT_COST_MODEL, CostModel
from repro.core.epochs import EpochConfig, EpochTimeline, EpochTracker
from repro.core.sketches import SketchEntry, SketchKind, event_visible
from repro.core.sketchlog import SketchLog, entry_record
from repro.obs.session import NULL_SESSION, ObsSession
from repro.sim.events import Event
from repro.sim.failures import Failure, FailureKind
from repro.sim.machine import Machine, MachineConfig, Observer
from repro.sim.program import Program
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.sim.trace import Trace

#: An end-state oracle: inspects a finished trace and reports a failure the
#: machine could not see on its own (wrong output, corrupted file, ...).
Oracle = Callable[[Trace], Optional[Failure]]


class SketchRecorder(Observer):
    """Machine observer that builds the sketch log and charges its cost.

    With a ``journal`` attached, every entry is also written through the
    crash-consistent journal *the moment it is recorded*, so a recorder
    killed at event *k* leaves a salvageable on-disk prefix of every
    sketch entry before *k*.
    """

    def __init__(
        self,
        sketch: SketchKind,
        cost_model: CostModel,
        journal: Optional[Any] = None,
    ) -> None:
        self.sketch = sketch
        self.cost_model = cost_model
        self.log = SketchLog(sketch=sketch)
        self.journal = journal

    def on_event(self, machine: Machine, event: Event) -> None:
        if not event_visible(self.sketch, event):
            return
        machine.clock.charge_instrumentation(event.cpu, self.cost_model.intercept_cost)
        if self.cost_model.serializes(event.kind):
            # Ordering naturally-parallel events manufactures serialization.
            machine.clock.charge_log_append(event.cpu, self.cost_model.serial_log_cost)
        else:
            # Sync ops / syscalls already serialize; log on their coattails.
            machine.clock.charge_instrumentation(
                event.cpu, self.cost_model.piggyback_log_cost
            )
        entry = SketchEntry.from_event(event)
        self.log.append(entry)
        if self.journal is not None:
            self.journal.append(entry_record(entry))

    def on_finish(self, machine: Machine, trace: Trace) -> None:
        if self.journal is not None:
            self.journal.commit(
                {
                    "entries": len(self.log),
                    "failure": None
                    if trace.failure is None
                    else list(trace.failure.signature()),
                }
            )


@dataclass
class RecordingStats:
    """Cost accounting for one recorded run."""

    native_time: int
    recorded_time: int
    total_events: int
    logged_entries: int
    log_bytes: int

    @property
    def overhead(self) -> Optional[float]:
        """Fractional recording slowdown, or ``None`` when the native
        baseline is unusable (``native_time <= 0``).

        A failed baseline must not masquerade as "zero overhead" — E1
        would report a recorder as free when the truth is "unmeasured".
        """
        if self.native_time <= 0:
            return None
        return self.recorded_time / self.native_time - 1.0

    @property
    def overhead_percent(self) -> Optional[float]:
        overhead = self.overhead
        return None if overhead is None else overhead * 100.0

    def render_overhead(self) -> str:
        """Human form of :attr:`overhead_percent`: ``12.5%`` or ``n/a``."""
        percent = self.overhead_percent
        return "n/a" if percent is None else f"{percent:.1f}%"

    @property
    def bytes_per_kilo_events(self) -> float:
        if self.total_events <= 0:
            return 0.0
        return 1000.0 * self.log_bytes / self.total_events


@dataclass
class RecordedRun:
    """Everything the production side hands to the diagnosis side."""

    program: Program
    sketch: SketchKind
    log: SketchLog
    failure: Optional[Failure]
    config: MachineConfig
    seed: int
    stats: RecordingStats
    oracle: Optional[Oracle] = field(default=None, repr=False)
    #: the production run's captured output.  Recording it is free (the
    #: program already produced it); output-strict reproduction
    #: (ODR-style) matches against it.
    stdout: list = field(default_factory=list)
    #: epoch timeline when recorded with ``--epoch-steps`` (boundary
    #: snapshots for last-epoch replay); ``None`` for full-history runs.
    epochs: Optional["EpochTimeline"] = field(default=None, repr=False)

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def describe(self) -> str:
        """One-line summary: sketch size, overhead, observed failure."""
        status = self.failure.describe() if self.failure else "no failure"
        epochs = ""
        if self.epochs is not None:
            epochs = (
                f", {self.epochs.total_epochs} epochs"
                f" ({self.epochs.truncated_entries} entries truncated)"
            )
        return (
            f"recorded {self.program.describe()} with {self.sketch.value} sketch: "
            f"{len(self.log)} entries ({self.stats.log_bytes} bytes), "
            f"overhead {self.stats.render_overhead()}{epochs}, {status}"
        )


def apply_oracle(trace: Trace, oracle: Optional[Oracle]) -> Optional[Failure]:
    """The failure of a run: what the machine saw, else what the oracle sees.

    Machine-visible failures (assertions, crashes, deadlocks, hangs) win;
    the oracle only examines runs that completed, mirroring how a
    wrong-output bug is noticed only after the program finishes.
    """
    if trace.failure is not None:
        return trace.failure
    if oracle is not None:
        verdict = oracle(trace)
        if verdict is not None and verdict.kind is not FailureKind.WRONG_OUTPUT:
            raise ValueError(
                "end-state oracles must report WRONG_OUTPUT failures, got "
                f"{verdict.kind}"
            )
        return verdict
    return None


def record(
    program: Program,
    sketch: SketchKind = SketchKind.SYNC,
    seed: int = 0,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    oracle: Optional[Oracle] = None,
    scheduler: Optional[Scheduler] = None,
    journal_path: Optional[str] = None,
    kill_at_event: Optional[int] = None,
    obs: ObsSession = NULL_SESSION,
    epochs: Optional[EpochConfig] = None,
) -> RecordedRun:
    """Run ``program`` once in "production" and record a sketch.

    :param seed: scheduler seed — the production run's identity.  Two
        records with the same seed observe the same execution.
    :param oracle: optional end-state check for failures the machine
        cannot detect (stored on the RecordedRun for the replayer).
    :param scheduler: override the production scheduler (tests only).
    :param journal_path: also journal every sketch entry through the
        crash-consistent writer at this path, as it is recorded.
    :param kill_at_event: fault injection — raise
        :class:`~repro.errors.RecorderKilled` once this many events have
        executed, leaving only the journaled prefix behind.
    :param obs: observability session the recording phase reports into
        (a ``record`` span plus ``record_*`` counters).
    :param epochs: epoch-windowed recording policy — cut boundaries with
        snapshots and retain only the trailing window of sketch entries
        (see :mod:`repro.core.epochs`).
    """
    run, _ = record_with_trace(
        program,
        sketch=sketch,
        seed=seed,
        config=config,
        cost_model=cost_model,
        oracle=oracle,
        scheduler=scheduler,
        journal_path=journal_path,
        kill_at_event=kill_at_event,
        obs=obs,
        epochs=epochs,
    )
    return run


def record_with_trace(
    program: Program,
    sketch: SketchKind = SketchKind.SYNC,
    seed: int = 0,
    config: Optional[MachineConfig] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    oracle: Optional[Oracle] = None,
    scheduler: Optional[Scheduler] = None,
    journal_path: Optional[str] = None,
    kill_at_event: Optional[int] = None,
    obs: ObsSession = NULL_SESSION,
    epochs: Optional[EpochConfig] = None,
) -> tuple:
    """Like :func:`record` but also returns the full production trace.

    The trace is for tests and benchmarks that need ground truth; the
    replayer itself must never look at it.
    """
    machine_config = config or MachineConfig()
    journal = None
    if journal_path is not None:
        from repro.robust.journal import sketch_journal_writer

        journal = sketch_journal_writer(
            journal_path,
            sketch,
            {
                "program": program.name,
                "seed": seed,
                "ncpus": machine_config.ncpus,
            },
        )
    recorder = SketchRecorder(sketch, cost_model, journal=journal)
    observers: list = [recorder]
    tracker: Optional[EpochTracker] = None
    if epochs is not None and epochs.enabled:
        tracker = EpochTracker(epochs, recorder.log, tracer=obs.tracer)
        observers.append(tracker)
    if kill_at_event is not None:
        from repro.robust.inject import KillSwitch

        # After the recorder, so the fatal event is journaled before the
        # kill fires — the worst case for crash consistency.
        observers.append(KillSwitch(kill_at_event))
    machine = Machine(
        program,
        scheduler if scheduler is not None else RandomScheduler(seed),
        machine_config,
        observers=observers,
    )
    record_span = obs.tracer.span(
        "record", category="record",
        program=program.name, sketch=sketch.value, seed=seed,
    )
    with record_span:
        try:
            if tracker is not None:
                trace = machine.run(
                    on_snapshot=tracker.cut, snapshot_when=tracker.should_cut
                )
            else:
                trace = machine.run()
        finally:
            # On a kill, the journal stays footer-less (crash-shaped) but
            # its flushed prefix is already on disk; close the handle
            # either way.
            if journal is not None:
                journal.close()
        record_span.note(events=len(trace.events), entries=len(recorder.log))
    failure = apply_oracle(trace, oracle)
    timeline: Optional[EpochTimeline] = None
    log = recorder.log
    if tracker is not None:
        # Deterministic truncation: keep the trailing window of epochs;
        # the retained artifact is what an always-on recorder ships.
        timeline, log = tracker.finalize()
    clock = trace.clock
    stats = RecordingStats(
        native_time=clock.native_time,
        recorded_time=clock.recorded_time,
        total_events=len(trace.events),
        logged_entries=len(log),
        log_bytes=log.size_bytes(),
    )
    metrics = obs.metrics
    metrics.counter("record_events").inc(stats.total_events)
    metrics.counter("record_entries").inc(stats.logged_entries)
    metrics.counter("record_log_bytes").inc(stats.log_bytes)
    if stats.overhead_percent is not None:
        metrics.gauge("record_overhead_percent").set(stats.overhead_percent)
    if timeline is not None:
        metrics.counter("record.epochs").inc(timeline.total_epochs)
        metrics.counter("record.truncated_entries").inc(timeline.truncated_entries)
    run = RecordedRun(
        program=program,
        sketch=sketch,
        log=log,
        failure=failure,
        config=machine_config,
        seed=seed,
        stats=stats,
        oracle=oracle,
        stdout=list(trace.stdout),
        epochs=timeline,
    )
    return run, trace
