"""Recording cost model.

Maps "what the instrumentation does" to virtual time, so a single
simulated run yields both the native runtime and the recorded runtime (see
:mod:`repro.sim.vtime`).

The central asymmetry — the one PRES's whole overhead argument rests on —
is *which* log appends serialize:

* **Synchronization operations and system calls already serialize.**  A
  lock handoff moves a cache line between CPUs; a syscall enters the
  kernel.  Appending a log entry at that moment piggybacks on ordering
  that the program itself created, so it costs only CPU-local work
  (``piggyback_log_cost``).  This is why SYNC/SYS sketching stays cheap
  *and flat* as the CPU count grows.
* **Memory accesses, basic blocks and function events are naturally
  parallel.**  Recording their *global* order manufactures serialization
  that did not exist: every append wins an atomic increment on a shared
  counter and writes a shared buffer (``serial_log_cost``, modelled by
  :meth:`~repro.sim.vtime.VirtualClock.charge_log_append`).  The more CPUs,
  the more parallelism this destroys — which is why classical software
  deterministic replay (our RW mechanism) scales badly.

Every instrumented event also pays ``intercept_cost`` (the interposition
check itself) on its own CPU.  Units are the abstract cycles of
:attr:`repro.sim.ops.Op.cost` (an uninstrumented shared access costs 1).
Absolute percentages are not calibrated to any specific hardware; the
*shape* (ordering of mechanisms, scaling trend) is what EXPERIMENTS.md
validates against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.ops import SYNC_KINDS, OpKind

#: Event kinds whose log appends piggyback on existing serialization.
PIGGYBACK_KINDS = frozenset(SYNC_KINDS | {OpKind.SYSCALL})


@dataclass(frozen=True)
class CostModel:
    """Virtual-time prices for the recorder's work."""

    intercept_cost: int = 1
    piggyback_log_cost: int = 2
    serial_log_cost: int = 24
    entry_bytes: int = 6

    def serializes(self, kind: OpKind) -> bool:
        """Whether logging this event kind adds global serialization."""
        return kind not in PIGGYBACK_KINDS

    def scaled(self, factor: float) -> "CostModel":
        """A model with log costs scaled (for sensitivity benches)."""
        return CostModel(
            intercept_cost=max(1, round(self.intercept_cost * factor)),
            piggyback_log_cost=max(1, round(self.piggyback_log_cost * factor)),
            serial_log_cost=max(1, round(self.serial_log_cost * factor)),
            entry_bytes=self.entry_bytes,
        )


#: The model used by benchmarks unless a sweep overrides it.
DEFAULT_COST_MODEL = CostModel()
