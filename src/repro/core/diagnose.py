"""Root-cause diagnosis of a reproduced failure.

Once PRES has a deterministic reproduction, the developer still has to
find the defect.  This module packages what the analysis substrate can
say about the failing execution into one :class:`Diagnosis`:

* the failure itself and the threads involved;
* the happens-before races closest to the failure point (for concurrency
  bugs, one of these is almost always the root cause);
* inconsistently protected shared addresses (lockset evidence);
* for deadlocks, the wait-for cycle with each thread's last lock events;
* the tail of each involved thread's event stream.

The CLI exposes this as ``pres diagnose BUG``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.hb_race import HBAnalysis, RacePair
from repro.analysis.lockorder import lock_order_report
from repro.analysis.lockset import lockset_report
from repro.analysis.timeline import failure_window
from repro.sim.failures import Failure, FailureKind
from repro.sim.ops import OpKind
from repro.sim.trace import Trace


@dataclass
class Diagnosis:
    """Everything the toolbox can say about one failing execution."""

    failure: Failure
    suspect_races: List[RacePair] = field(default_factory=list)
    unprotected_addresses: List[object] = field(default_factory=list)
    involved_tids: Tuple[int, ...] = ()
    thread_tails: List[Tuple[int, List[str]]] = field(default_factory=list)
    deadlock_hops: List[str] = field(default_factory=list)
    potential_deadlocks: List[str] = field(default_factory=list)
    timeline: str = ""

    def render(self, max_races: int = 5) -> str:
        """Human-readable report (what ``pres diagnose`` prints)."""
        lines = [f"failure: {self.failure.describe()}"]
        if self.deadlock_hops:
            lines.append("wait-for cycle:")
            lines.extend(f"  {hop}" for hop in self.deadlock_hops)
        if self.suspect_races:
            lines.append(
                f"suspect races (closest to the failure, of "
                f"{len(self.suspect_races)} total):"
            )
            lines.extend(
                f"  {race.describe()}" for race in self.suspect_races[:max_races]
            )
        if self.unprotected_addresses:
            lines.append("inconsistently protected shared state:")
            lines.extend(f"  {addr!r}" for addr in self.unprotected_addresses[:8])
        if self.potential_deadlocks:
            lines.append("lock-order hazards (Goodlock):")
            lines.extend(f"  {hazard}" for hazard in self.potential_deadlocks[:4])
        for tid, tail in self.thread_tails:
            lines.append(f"T{tid} final operations:")
            lines.extend(f"  {entry}" for entry in tail)
        if self.timeline:
            lines.append("timeline around the failure:")
            lines.extend(f"  {row}" for row in self.timeline.splitlines())
        return "\n".join(lines)


def _involved_tids(trace: Trace, failure: Failure) -> Tuple[int, ...]:
    if failure.involved_tids:
        return failure.involved_tids
    if failure.tid is not None:
        return (failure.tid,)
    return ()


def _deadlock_hops(trace: Trace, failure: Failure) -> List[str]:
    hops = []
    for tid in failure.involved_tids:
        lock_events = [
            e
            for e in trace.events_of(tid)
            if e.kind in (OpKind.LOCK, OpKind.UNLOCK)
        ]
        held = []
        for event in lock_events:
            if event.kind is OpKind.LOCK:
                held.append(event.obj)
            else:
                if event.obj in held:
                    held.remove(event.obj)
        hops.append(f"T{tid} holds {held or 'nothing'} and cannot proceed")
    return hops


def diagnose(trace: Trace, failure: Optional[Failure] = None) -> Diagnosis:
    """Analyze a failing trace; ``failure`` defaults to the trace's own."""
    if failure is None:
        failure = trace.failure
    if failure is None:
        raise ValueError("cannot diagnose a trace that did not fail")

    analysis = HBAnalysis(trace)
    anchor = failure.gidx if failure.gidx is not None else len(trace.events)
    involved = _involved_tids(trace, failure)

    def relevance(race: RacePair) -> Tuple[int, int]:
        # races touching an involved thread first, then by proximity to
        # the failure point
        touches = int(
            race.first.tid in involved or race.second.tid in involved
        )
        return (-touches, abs(anchor - race.second.gidx))

    races = sorted(analysis.races, key=relevance)

    locksets = lockset_report(trace)
    unprotected = locksets.inconsistent_addresses()

    tails = []
    for tid in involved:
        events = trace.events_of(tid)
        tails.append((tid, [e.describe() for e in events[-4:]]))

    hops = (
        _deadlock_hops(trace, failure)
        if failure.kind is FailureKind.DEADLOCK
        else []
    )
    hazards = [
        p.describe() for p in lock_order_report(trace).potential_deadlocks
    ]

    return Diagnosis(
        failure=failure,
        suspect_races=races,
        unprotected_addresses=unprotected,
        involved_tids=involved,
        thread_tails=tails,
        deadlock_hops=hops,
        potential_deadlocks=hazards,
        timeline=failure_window(trace),
    )
