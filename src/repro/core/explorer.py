"""Exploration strategies over the unrecorded non-deterministic space.

:class:`FeedbackExplorer` is PRES proper: a best-first search whose
frontier is fed by :class:`~repro.core.feedback.FeedbackGenerator`.
:class:`RandomExplorer` is the ablation the paper's evaluation isolates —
the sketch is still enforced, but unsuccessful attempts teach it nothing;
it just re-rolls the unrecorded choices with a fresh seed.  With no sketch
at all, RandomExplorer degenerates to plain stress testing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.core.constraints import ConstraintSet, OrderConstraint
from repro.core.feedback import Candidate, FeedbackDB, FeedbackGenerator
from repro.core.sketches import SketchKind
from repro.sim.trace import Trace

#: Runs one attempt under (constraints, base_seed); returns the trace and
#: whether the recorded failure was reproduced.
AttemptRunner = Callable[[ConstraintSet, int], Tuple[Trace, bool]]

_EMPTY: ConstraintSet = frozenset()


@dataclass
class AttemptRecord:
    """Summary of one replay attempt."""

    index: int
    base_seed: int
    n_constraints: int
    outcome: str  # "matched" | "diverged" | "no_failure" | "other_failure"
    steps: int
    detail: str = ""


@dataclass
class ExplorationResult:
    """What an explorer found."""

    success: bool
    attempts: List[AttemptRecord] = field(default_factory=list)
    winning_trace: Optional[Trace] = None
    winning_constraints: ConstraintSet = _EMPTY
    winning_seed: int = 0
    duplicate_traces: int = 0
    #: attempts answered from the attempt cache instead of a replay.
    cache_hits: int = 0

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def total_steps(self) -> int:
        return sum(record.steps for record in self.attempts)


@dataclass
class ExplorerConfig:
    """Search budget and shape."""

    max_attempts: int = 200
    base_seed: int = 0
    seed_restarts: int = 16
    max_candidates_per_attempt: int = 24
    max_constraint_depth: int = 8
    #: replay workers.  1 = serial in-process; N > 1 dispatches attempt
    #: batches to a process pool (see :mod:`repro.core.parallel`).
    #: Exploration results are identical for every value of ``jobs``.
    jobs: int = 1
    #: frontier candidates speculatively dispatched per batch; 0 picks
    #: ``max(jobs, 2 * jobs)`` automatically.  ``batch_size=1`` makes the
    #: parallel engine's schedule exactly the serial explorer's.
    batch_size: int = 0


def _classify(trace: Trace, matched: bool) -> Tuple[str, str]:
    if matched:
        return "matched", trace.failure.describe() if trace.failure else ""
    if trace.diverged:
        return "diverged", trace.divergence or ""
    if trace.failure is not None:
        return "other_failure", trace.failure.describe()
    return "no_failure", ""


class FeedbackExplorer:
    """Best-first search steered by failed-attempt analysis."""

    def __init__(self, sketch: SketchKind, config: Optional[ExplorerConfig] = None):
        self.sketch = sketch
        self.config = config or ExplorerConfig()
        self.db = FeedbackDB()
        self.generator = FeedbackGenerator(
            sketch=sketch,
            db=self.db,
            max_candidates_per_attempt=self.config.max_candidates_per_attempt,
            max_constraint_depth=self.config.max_constraint_depth,
        )

    def explore(self, runner: AttemptRunner) -> ExplorationResult:
        result = ExplorationResult(success=False)
        config = self.config
        frontier: List[Tuple[Tuple[int, int], int, ConstraintSet, int]] = []
        counter = 0
        restarts_used = 0

        def push(candidate: Candidate, seed: int) -> None:
            nonlocal counter
            counter += 1
            heapq.heappush(
                frontier,
                (candidate.sort_key(), counter, candidate.constraints, seed),
            )

        push(Candidate(_EMPTY, 0, 0), config.base_seed)

        while result.attempt_count < config.max_attempts:
            if not frontier:
                restarts_used += 1
                if restarts_used > config.seed_restarts:
                    break
                # A restart re-rolls every unrecorded choice: same (empty)
                # constraint set, fresh base seed.
                push(Candidate(_EMPTY, 0, 0), config.base_seed + restarts_used)
                continue

            _, _, constraints, seed = heapq.heappop(frontier)
            if self.db.tried(constraints, seed):
                continue
            self.db.mark_tried(constraints, seed)

            trace, matched = runner(constraints, seed)
            outcome, detail = _classify(trace, matched)
            result.attempts.append(
                AttemptRecord(
                    index=result.attempt_count,
                    base_seed=seed,
                    n_constraints=len(constraints),
                    outcome=outcome,
                    steps=trace.steps,
                    detail=detail,
                )
            )
            if matched:
                result.success = True
                result.winning_trace = trace
                result.winning_constraints = constraints
                result.winning_seed = seed
                break

            # Feedback: mine the failed attempt, even a diverged prefix.
            if self.db.record_trace(trace):
                for candidate in self.generator.candidates(trace, constraints):
                    push(candidate, seed)

        result.duplicate_traces = self.db.duplicate_traces
        return result


class RandomExplorer:
    """No feedback: re-roll the unrecorded choices every attempt."""

    def __init__(self, sketch: SketchKind, config: Optional[ExplorerConfig] = None):
        self.sketch = sketch
        self.config = config or ExplorerConfig()

    def explore(self, runner: AttemptRunner) -> ExplorationResult:
        result = ExplorationResult(success=False)
        for index in range(self.config.max_attempts):
            seed = self.config.base_seed + index
            trace, matched = runner(_EMPTY, seed)
            outcome, detail = _classify(trace, matched)
            result.attempts.append(
                AttemptRecord(
                    index=index,
                    base_seed=seed,
                    n_constraints=0,
                    outcome=outcome,
                    steps=trace.steps,
                    detail=detail,
                )
            )
            if matched:
                result.success = True
                result.winning_trace = trace
                result.winning_seed = seed
                break
        return result
