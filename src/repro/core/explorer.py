"""Exploration strategies over the unrecorded non-deterministic space.

:class:`FeedbackExplorer` is PRES proper: a best-first search whose
frontier is fed by :class:`~repro.core.feedback.FeedbackGenerator`.
:class:`RandomExplorer` is the ablation the paper's evaluation isolates —
the sketch is still enforced, but unsuccessful attempts teach it nothing;
it just re-rolls the unrecorded choices with a fresh seed.  With no sketch
at all, RandomExplorer degenerates to plain stress testing.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, FrozenSet, List, Optional, Tuple

from repro.core.constraints import ConstraintSet, OrderConstraint
from repro.core.feedback import (
    TIER_MINED,
    TIER_PLAN,
    TIER_ROOT,
    TIER_STATIC,
    Candidate,
    FeedbackDB,
    FeedbackGenerator,
)
from repro.core.sketches import SketchKind
from repro.obs.session import ObsSession, resolve_session
from repro.sim.trace import Trace

#: Runs one attempt under (constraints, base_seed); returns the trace and
#: whether the recorded failure was reproduced.
AttemptRunner = Callable[[ConstraintSet, int], Tuple[Trace, bool]]

_EMPTY: ConstraintSet = frozenset()


@dataclass
class AttemptRecord:
    """Summary of one replay attempt."""

    index: int
    base_seed: int
    n_constraints: int
    outcome: str  # "matched" | "diverged" | "no_failure" | "other_failure"
    steps: int
    detail: str = ""


@dataclass
class ExplorationResult:
    """What an explorer found."""

    success: bool
    attempts: List[AttemptRecord] = field(default_factory=list)
    winning_trace: Optional[Trace] = None
    winning_constraints: ConstraintSet = _EMPTY
    winning_seed: int = 0
    duplicate_traces: int = 0
    #: attempts answered from the attempt cache instead of a replay.
    cache_hits: int = 0
    #: attempts dispatched with a schedule-prefix resume plan (see
    #: :mod:`repro.core.prefix`) — counted at batch assembly, so the
    #: figure is jobs-invariant.  Always 0 for the serial explorers.
    prefix_hits: int = 0
    #: True when the search was cut short by a KeyboardInterrupt: the
    #: fields above describe a *partial* exploration, not a verdict.
    interrupted: bool = False

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def total_steps(self) -> int:
        return sum(record.steps for record in self.attempts)


@dataclass
class ExplorerConfig:
    """Search budget and shape."""

    max_attempts: int = 200
    base_seed: int = 0
    seed_restarts: int = 16
    max_candidates_per_attempt: int = 24
    max_constraint_depth: int = 8
    #: replay workers.  1 = serial in-process; N > 1 dispatches attempt
    #: batches to a process pool (see :mod:`repro.core.parallel`).
    #: Exploration results are identical for every value of ``jobs``.
    jobs: int = 1
    #: frontier candidates speculatively dispatched per batch; 0 picks
    #: ``max(jobs, 2 * jobs)`` automatically.  ``batch_size=1`` makes the
    #: parallel engine's schedule exactly the serial explorer's.
    batch_size: int = 0
    #: collect spans for this exploration (see :mod:`repro.obs`) when no
    #: explicit :class:`~repro.obs.session.ObsSession` is passed in.
    trace: bool = False
    #: collect metrics (counters/gauges/histograms) likewise.  Counter
    #: and histogram values are identical for every ``jobs`` at a fixed
    #: ``batch_size`` — the metrics face of the determinism contract.
    metrics: bool = False
    #: constraint sets pre-seeded by the predictive sanitizer pass
    #: (:meth:`repro.sanitize.ReplayPlan.seeds_for`), explored in order
    #: right after the root empty attempt and before any mined feedback.
    plan_seeds: Tuple[ConstraintSet, ...] = ()
    #: constraint sets pre-seeded by the *static* analyzer
    #: (:meth:`repro.analysis.static_.StaticPlan.seeds_for`), explored
    #: after the dynamic plan seeds (dynamic evidence dominates static
    #: approximation), interleaved with mined feedback — one mined
    #: candidate, then one static candidate (see :class:`Frontier`).
    static_seeds: Tuple[ConstraintSet, ...] = ()


def plan_candidates(seeds: Tuple[ConstraintSet, ...]) -> List[Candidate]:
    """Wrap sanitizer plan seeds as :data:`~repro.core.feedback.TIER_PLAN`
    frontier candidates, preserving the plan's rank order."""
    return [
        Candidate(
            constraints=constraints,
            depth=len(constraints),
            anchor_gidx=0,
            tier=TIER_PLAN,
            rank=rank,
        )
        for rank, constraints in enumerate(seeds)
    ]


def static_candidates(seeds: Tuple[ConstraintSet, ...]) -> List[Candidate]:
    """Wrap static-analyzer seeds as
    :data:`~repro.core.feedback.TIER_STATIC` frontier candidates,
    preserving the static plan's rank order."""
    return [
        Candidate(
            constraints=constraints,
            depth=len(constraints),
            anchor_gidx=0,
            tier=TIER_STATIC,
            rank=rank,
        )
        for rank, constraints in enumerate(seeds)
    ]


class Frontier:
    """Best-first frontier with an interleaved static-candidate lane.

    Root, plan-seeded, and mined candidates live in a heap ordered by
    :meth:`~repro.core.feedback.Candidate.sort_key`.  Static-analyzer
    candidates (:data:`~repro.core.feedback.TIER_STATIC`) live in a
    separate FIFO lane in static-plan rank order.  Pops interleave the
    two lanes: the root and every dynamic plan seed drain first, and
    once the heap's best candidate is mined feedback, each mined pop is
    followed by one static pop — dynamic evidence (an ordering actually
    observed unordered in a failed attempt) dominates the static
    approximation, but a ranked structural prediction is worth one
    attempt before the mined tail of re-rolls.  When either lane runs
    dry the other drains in its own order.

    With no static seeds every pop is a plain heap pop, so the mined
    exploration schedule is byte-identical to an unseeded search.  The
    alternation is a pure function of the pop sequence, so the serial
    and parallel engines (which assemble batches by popping this same
    structure) produce identical schedules for a fixed ``batch_size``,
    independent of worker count.
    """

    def __init__(self) -> None:
        self._heap: List[
            Tuple[Tuple[int, int, int, int], int, ConstraintSet, int, Candidate]
        ] = []
        self._static: Deque[Tuple[ConstraintSet, int, Candidate]] = deque()
        self._counter = 0
        self._last_pop_mined = False

    def push(self, candidate: Candidate, seed: int) -> None:
        """Add a candidate, routed by tier (statics to the FIFO lane)."""
        if candidate.tier == TIER_STATIC:
            self._static.append((candidate.constraints, seed, candidate))
            return
        self._counter += 1
        heapq.heappush(
            self._heap,
            (
                candidate.sort_key(),
                self._counter,
                candidate.constraints,
                seed,
                candidate,
            ),
        )

    def __len__(self) -> int:
        return len(self._heap) + len(self._static)

    def pop(self) -> Tuple[ConstraintSet, int, Candidate]:
        """Remove and return the next ``(constraints, seed, candidate)``."""
        take_static = bool(self._static) and (
            not self._heap
            or (self._heap[0][0][0] >= TIER_MINED and self._last_pop_mined)
        )
        if take_static:
            self._last_pop_mined = False
            return self._static.popleft()
        key, _, constraints, seed, candidate = heapq.heappop(self._heap)
        self._last_pop_mined = key[0] >= TIER_MINED
        return constraints, seed, candidate


@dataclass(frozen=True)
class SeededSets:
    """The constraint sets a frontier was pre-seeded with, by origin.

    Returned by :func:`seed_plan` so the success path can attribute a
    win to the dynamic plan (``sanitize.plan_matched``) or the static
    analyzer (``sanitize.static.matched``).
    """

    plan: FrozenSet[ConstraintSet] = frozenset()
    static: FrozenSet[ConstraintSet] = frozenset()


EMPTY_SEEDS = SeededSets()


def seed_plan(push, config: "ExplorerConfig", metrics) -> SeededSets:
    """Push the config's plan and static seeds onto a frontier (both
    engines call this right after pushing the root empty candidate, so
    the counters are charged at the same schedule-deterministic point
    everywhere).

    Dynamic plan seeds go first; static seeds that duplicate a dynamic
    seed are dropped (the dynamic plan dominates).  The frontier routes
    the surviving statics to its interleave lane (see :class:`Frontier`).
    Returns the seeded constraint sets for the match attribution on
    success.
    """
    seeded = plan_candidates(config.plan_seeds)
    plan_sets = frozenset(c.constraints for c in seeded)
    statics = [
        c for c in static_candidates(config.static_seeds)
        if c.constraints not in plan_sets
    ]
    for candidate in seeded:
        push(candidate, config.base_seed)
    for candidate in statics:
        push(candidate, config.base_seed)
    if seeded:
        metrics.counter("sanitize.plan_seeded").inc(len(seeded))
    if statics:
        metrics.counter("sanitize.static.seeded").inc(len(statics))
    return SeededSets(
        plan=plan_sets,
        static=frozenset(c.constraints for c in statics),
    )


def observe_plan_match(
    metrics, plan_sets: SeededSets, winning: ConstraintSet
) -> None:
    """Charge ``sanitize.plan_matched`` (or ``sanitize.static.matched``)
    when the winning constraint set was one the sanitizer (or the static
    analyzer) pre-seeded, rather than mined feedback."""
    if not winning:
        return
    if winning in plan_sets.plan:
        metrics.counter("sanitize.plan_matched").inc()
    elif winning in plan_sets.static:
        metrics.counter("sanitize.static.matched").inc()


def observe_attempt_record(metrics, record: AttemptRecord) -> None:
    """Fold one attempt into a metrics registry — the single place both
    the serial explorers and the parallel engine charge attempt metrics,
    so the two code paths cannot drift apart.  Called only at
    schedule-deterministic fold points, which is what makes counter and
    histogram snapshots ``jobs``-invariant for a fixed ``batch_size``.
    """
    metrics.counter("attempts").inc()
    metrics.counter(f"attempts_{record.outcome}").inc()
    metrics.histogram("constraint_set_size").observe(record.n_constraints)
    metrics.histogram("attempt_steps").observe(record.steps)
    if record.outcome == "diverged":
        metrics.histogram("divergence_depth").observe(record.steps)


def _classify(trace: Trace, matched: bool) -> Tuple[str, str]:
    if matched:
        return "matched", trace.failure.describe() if trace.failure else ""
    if trace.diverged:
        return "diverged", trace.divergence or ""
    if trace.failure is not None:
        return "other_failure", trace.failure.describe()
    return "no_failure", ""


class FeedbackExplorer:
    """Best-first search steered by failed-attempt analysis."""

    def __init__(
        self,
        sketch: SketchKind,
        config: Optional[ExplorerConfig] = None,
        obs: Optional[ObsSession] = None,
    ):
        self.sketch = sketch
        self.config = config or ExplorerConfig()
        self.obs = resolve_session(self.config, obs)
        self.db = FeedbackDB()
        self.generator = FeedbackGenerator(
            sketch=sketch,
            db=self.db,
            max_candidates_per_attempt=self.config.max_candidates_per_attempt,
            max_constraint_depth=self.config.max_constraint_depth,
        )

    def explore(self, runner: AttemptRunner) -> ExplorationResult:
        """Run the search, calling ``runner`` once per replay attempt.

        A ``KeyboardInterrupt`` mid-search returns the partial result
        flagged ``interrupted`` instead of propagating — the same
        contract the parallel engine honors.
        """
        result = ExplorationResult(success=False)
        try:
            self._search(result, runner)
        except KeyboardInterrupt:
            result.interrupted = True
        result.duplicate_traces = self.db.duplicate_traces
        self.obs.metrics.counter("duplicate_traces").inc(
            result.duplicate_traces
        )
        return result

    def _search(self, result: ExplorationResult, runner: AttemptRunner) -> None:
        config = self.config
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        frontier = Frontier()
        restarts_used = 0
        push = frontier.push

        push(Candidate(_EMPTY, 0, 0, tier=TIER_ROOT), config.base_seed)
        plan_sets = seed_plan(push, config, metrics)

        while result.attempt_count < config.max_attempts:
            if not frontier:
                restarts_used += 1
                if restarts_used > config.seed_restarts:
                    break
                # A restart re-rolls every unrecorded choice: same (empty)
                # constraint set, fresh base seed.
                metrics.counter("seed_restarts").inc()
                push(
                    Candidate(_EMPTY, 0, 0, tier=TIER_ROOT),
                    config.base_seed + restarts_used,
                )
                continue

            constraints, seed, _ = frontier.pop()
            if self.db.tried(constraints, seed):
                continue
            self.db.mark_tried(constraints, seed)

            # Each serial attempt is its own batch of one, so the counter
            # stream matches the parallel engine at ``batch_size=1``.
            metrics.counter("batches").inc()
            span = tracer.span(
                "attempt", category="attempt",
                index=result.attempt_count, seed=seed,
                constraints=len(constraints),
            )
            with span:
                trace, matched = runner(constraints, seed)
                outcome, detail = _classify(trace, matched)
                span.note(outcome=outcome, steps=trace.steps)
            record = AttemptRecord(
                index=result.attempt_count,
                base_seed=seed,
                n_constraints=len(constraints),
                outcome=outcome,
                steps=trace.steps,
                detail=detail,
            )
            result.attempts.append(record)
            observe_attempt_record(metrics, record)
            if matched:
                result.success = True
                result.winning_trace = trace
                result.winning_constraints = constraints
                result.winning_seed = seed
                observe_plan_match(metrics, plan_sets, constraints)
                break

            # Feedback: mine the failed attempt, even a diverged prefix.
            if self.db.record_trace(trace):
                mined = 0
                for candidate in self.generator.candidates(trace, constraints):
                    push(candidate, seed)
                    mined += 1
                metrics.counter("candidates_mined").inc(mined)
            metrics.gauge("frontier_peak").max(len(frontier))


class RandomExplorer:
    """No feedback: re-roll the unrecorded choices every attempt."""

    def __init__(
        self,
        sketch: SketchKind,
        config: Optional[ExplorerConfig] = None,
        obs: Optional[ObsSession] = None,
    ):
        self.sketch = sketch
        self.config = config or ExplorerConfig()
        self.obs = resolve_session(self.config, obs)

    def explore(self, runner: AttemptRunner) -> ExplorationResult:
        """Run the predetermined seed sequence until a match or the cap.

        Like the other explorers, a ``KeyboardInterrupt`` returns the
        partial result flagged ``interrupted``.
        """
        result = ExplorationResult(success=False)
        try:
            self._search(result, runner)
        except KeyboardInterrupt:
            result.interrupted = True
        return result

    def _search(self, result: ExplorationResult, runner: AttemptRunner) -> None:
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        for index in range(self.config.max_attempts):
            seed = self.config.base_seed + index
            metrics.counter("batches").inc()
            span = tracer.span(
                "attempt", category="attempt", index=index, seed=seed,
                constraints=0,
            )
            with span:
                trace, matched = runner(_EMPTY, seed)
                outcome, detail = _classify(trace, matched)
                span.note(outcome=outcome, steps=trace.steps)
            record = AttemptRecord(
                index=index,
                base_seed=seed,
                n_constraints=0,
                outcome=outcome,
                steps=trace.steps,
                detail=detail,
            )
            result.attempts.append(record)
            observe_attempt_record(metrics, record)
            if matched:
                result.success = True
                result.winning_trace = trace
                result.winning_seed = seed
                break
