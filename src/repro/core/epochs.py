"""Rolling-epoch recording and last-epoch in-situ replay.

PRES as published keeps the whole sketch log, which is only affordable
when runs are short.  Production recorders must be *always-on*: the
server workloads (apache, mysql, cherokee) run far longer than the bug
window, so the recorder here segments the run into **epochs** — every
``--epoch-steps`` scheduler steps, or wherever the application yields an
explicit :meth:`~repro.sim.program.ThreadContext.epoch_barrier` — and
captures a :meth:`~repro.sim.machine.Machine.capture_state` snapshot at
each boundary, exactly the snapshot machinery the prefix-memoization
ladder (:mod:`repro.core.prefix`) already relies on.

Only the trailing ``--epoch-window`` epochs of sketch entries (and
boundary snapshots) are retained; everything older is dropped with
**deterministic truncation** — the cut falls on a boundary, boundaries
are a pure function of the schedule, and the schedule is a pure function
of the recording seed, so two recordings of the same run truncate
identically.  On failure, reproduction restores the newest healthy
boundary snapshot and searches only the epoch-local suffix instead of
re-simulating from step 0 (iReplayer-style last-epoch replay), walking
older boundaries — and finally full history, when nothing was truncated
— only if the suffix search comes up empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.sketchlog import SketchLog
from repro.errors import SimUsageError
from repro.sim.events import Event
from repro.sim.machine import Machine, Observer
from repro.sim.ops import OpKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import Tracer

#: syscall name of the explicit boundary marker op.
BARRIER_SYSCALL = "epoch_barrier"


@dataclass(frozen=True)
class EpochConfig:
    """Recorder-side epoch policy.

    :param steps: cut a boundary every this many scheduler steps
        (0 disables epoch recording entirely).
    :param window: retain only the trailing this-many epochs of sketch
        entries and snapshots (0 keeps everything — boundaries are still
        cut, so replay can start from the newest one).
    """

    steps: int = 0
    window: int = 0

    @property
    def enabled(self) -> bool:
        return self.steps > 0

    def validate(self) -> "EpochConfig":
        if self.steps < 0:
            raise SimUsageError(f"--epoch-steps must be >= 0, got {self.steps}")
        if self.window < 0:
            raise SimUsageError(f"--epoch-window must be >= 0, got {self.window}")
        return self


@dataclass
class EpochBoundary:
    """One recorded epoch boundary (it *opens* epoch ``epoch``)."""

    #: index of the epoch this boundary opens (boundary i opens epoch i;
    #: epoch 0 opens implicitly at step 0 with no boundary record).
    epoch: int
    #: scheduler steps executed when the boundary was cut.
    step: int
    #: sketch entries recorded before the boundary (absolute index).
    entry_index: int
    #: serialized :meth:`Machine.capture_state` blob; ``None`` once the
    #: rolling window dropped it (or if capture was disabled).
    snapshot: Optional[Dict[str, Any]] = field(default=None, repr=False)
    #: whether the barrier was an explicit ``ctx.epoch_barrier()`` rather
    #: than the every-N-steps rule.
    explicit: bool = False


@dataclass
class EpochTimeline:
    """Everything the diagnosis side needs to replay epoch-locally.

    Travels on :class:`~repro.core.recorder.RecordedRun`; boundaries are
    ordered oldest-first and only the retained window keeps snapshots.
    """

    steps: int
    window: int
    #: retained boundaries, oldest first.
    boundaries: List[EpochBoundary] = field(default_factory=list)
    #: total epochs the run produced (retained + truncated).
    total_epochs: int = 1
    #: whole epochs dropped off the front by the window.
    truncated_epochs: int = 0
    #: sketch entries dropped off the front by the window.
    truncated_entries: int = 0

    @property
    def retained_epochs(self) -> int:
        return self.total_epochs - self.truncated_epochs

    def replay_bases(self) -> List[EpochBoundary]:
        """Boundaries usable as replay bases, newest first."""
        return [b for b in reversed(self.boundaries) if b.snapshot is not None]

    def describe(self) -> str:
        return (
            f"{self.total_epochs} epochs (steps={self.steps}, "
            f"window={self.window or 'all'}): retained {self.retained_epochs}, "
            f"truncated {self.truncated_epochs} epochs / "
            f"{self.truncated_entries} entries"
        )


@dataclass(frozen=True)
class EpochResumeBase:
    """A picklable replay base: restore the snapshot, search the suffix.

    Lives on :class:`~repro.core.parallel.AttemptContext` so pool workers
    restore the boundary state instead of re-simulating the prefix.
    """

    #: serialized machine snapshot (``capture_state(serialize=True)``).
    state: Dict[str, Any]
    #: scheduler steps already executed inside the snapshot.
    step: int
    #: epoch index the base opens.
    epoch: int

    def restore_into(self, machine: Machine) -> None:
        machine.restore_state(self.state)


def base_tag(program_name: str, seed: int, boundary: EpochBoundary) -> str:
    """Cache-key tag identifying the snapshot an epoch-suffix log replays
    from (folded into :meth:`SketchLog.fingerprint`)."""
    return f"{program_name}:{seed}:{boundary.epoch}:{boundary.step}"


def suffix_log(
    log: SketchLog,
    timeline: EpochTimeline,
    boundary: EpochBoundary,
    *,
    program_name: str,
    seed: int,
) -> SketchLog:
    """The epoch-local suffix of ``log`` from ``boundary`` onward.

    The returned log is a replay artifact, not a serialization one: it is
    single-epoch, and its fingerprint carries the snapshot identity so
    attempt-cache and store entries can never collide with a full-history
    log that happens to contain the same entries.
    """
    rel = boundary.entry_index - timeline.truncated_entries
    if rel < 0 or rel > len(log.entries):
        raise SimUsageError(
            f"boundary entry index {boundary.entry_index} outside the "
            f"retained log ({timeline.truncated_entries}..)"
        )
    derived = SketchLog(sketch=log.sketch, entries=list(log.entries[rel:]))
    derived.base_tag = base_tag(program_name, seed, boundary)
    return derived


class EpochTracker(Observer):
    """Recorder-side driver: watches for barriers, cuts boundaries.

    Attached as a machine observer *and* wired into
    :meth:`Machine.run`'s ``snapshot_when``/``on_snapshot`` hooks: the
    observer half latches explicit ``epoch_barrier`` markers mid-step,
    and the snapshot half fires at the next top-of-loop — the only point
    where machine state is clean enough to capture.
    """

    def __init__(
        self,
        config: EpochConfig,
        log: SketchLog,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.config = config.validate()
        self.log = log
        self.tracer = tracer
        self.boundaries: List[EpochBoundary] = []
        self._pending_barrier = False
        self._last_cut_step = 0
        self._epoch_span: Any = None

    # -- observer half ----------------------------------------------------

    def on_start(self, machine: Machine) -> None:
        self._epoch_span = self._open_span(0, 0)

    def on_event(self, machine: Machine, event: Event) -> None:
        if event.kind is OpKind.SYSCALL and event.name == BARRIER_SYSCALL:
            self._pending_barrier = True

    def on_finish(self, machine: Machine, trace: Any) -> None:
        self._close_span(len(machine.schedule), len(self.log))

    # -- snapshot half ----------------------------------------------------

    def should_cut(self, machine: Machine) -> bool:
        """``snapshot_when`` predicate: boundary due at this step?"""
        if self._pending_barrier:
            return True
        return (
            self.config.steps > 0
            and len(machine.schedule) - self._last_cut_step >= self.config.steps
        )

    def cut(self, machine: Machine) -> None:
        """``on_snapshot`` callback: capture state, open the next epoch."""
        step = len(machine.schedule)
        explicit = self._pending_barrier
        self._pending_barrier = False
        self._last_cut_step = step
        boundary = EpochBoundary(
            epoch=len(self.boundaries) + 1,
            step=step,
            entry_index=len(self.log),
            snapshot=machine.capture_state(serialize=True),
            explicit=explicit,
        )
        self.boundaries.append(boundary)
        # Rolling retention: drop snapshots that fell out of the window
        # *during* the run, so an always-on recorder's memory stays
        # bounded by K snapshots regardless of run length.
        if self.config.window > 0:
            for old in self.boundaries[: -self.config.window]:
                old.snapshot = None
        self._close_span(step, boundary.entry_index)
        self._epoch_span = self._open_span(boundary.epoch, step)

    # -- epoch spans ------------------------------------------------------

    def _open_span(self, epoch: int, step: int) -> Any:
        if self.tracer is None:
            return None
        span = self.tracer.span(
            f"epoch {epoch}", category="record", epoch=epoch, start_step=step
        )
        span.__enter__()
        return span

    def _close_span(self, step: int, entries: int) -> None:
        span, self._epoch_span = self._epoch_span, None
        if span is None:
            return
        span.note(end_step=step, entries=entries)
        span.__exit__(None, None, None)

    # -- finalization -----------------------------------------------------

    def finalize(self) -> "tuple[EpochTimeline, SketchLog]":
        """Apply the retention window; returns (timeline, windowed log).

        Deterministic truncation: the cut falls on the boundary opening
        the oldest retained epoch, and boundaries are a pure function of
        the schedule.
        """
        total = len(self.boundaries) + 1
        window = self.config.window
        drop = max(0, total - window) if window > 0 else 0
        kept = self.boundaries[drop - 1 :] if drop > 0 else self.boundaries
        cut = kept[0].entry_index if drop > 0 else 0
        starts = [0] + [b.entry_index - cut for b in kept[1 if drop else 0 :]]
        # Boundaries cut back-to-back (an explicit barrier landing on the
        # periodic step) can coincide; epoch starts must stay strictly
        # increasing for the codec.
        starts = sorted(set(starts))
        windowed = SketchLog(
            sketch=self.log.sketch,
            entries=list(self.log.entries[cut:]),
            epoch_starts=starts if (len(starts) > 1 or drop) else [],
            truncated_entries=cut,
            truncated_epochs=drop,
        )
        timeline = EpochTimeline(
            steps=self.config.steps,
            window=window,
            boundaries=list(kept),
            total_epochs=total,
            truncated_epochs=drop,
            truncated_entries=cut,
        )
        return timeline, windowed
