"""Feedback generation from unsuccessful replay attempts.

The abstract's verdict — "PRES's feedback generation from unsuccessful
replays is critical in bug reproduction" — rests on this module.  A failed
attempt is not thrown away: its trace is mined for the scheduling
decisions the sketch left open, and each becomes a *flip candidate* for
the next attempt.

Candidate derivation:

1. Run the happens-before race detector over the attempt's trace.  Each
   race pair (a, b) executed a-then-b; the flip candidate enforces b
   before a in the next attempt.
2. If both sides held a common mutex, the accesses themselves cannot be
   reordered (blocking the lock holder would wedge the attempt); the flip
   is *lifted* to the corresponding lock acquisitions.  Under a SYNC-or-
   richer sketch such a flip would contradict the recorded lock order, so
   it is dropped instead — correctly, because the sketch already pinned
   that decision to its production-run outcome.
3. With no sketch at all, lock-acquisition order is itself unrecorded
   non-determinism, so adjacent acquisitions of the same mutex by
   different threads are offered as candidates too (this is what lets a
   sketchless replayer find lock-inversion deadlocks).

Candidates are ranked: fewest constraints first (stay close to schedules
already known to follow the sketch), then latest-in-trace first (races
near where the attempt ended are likelier to be the one that matters).
The :class:`FeedbackDB` prunes constraint sets already tried and caps the
fan-out per attempt.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.hb_race import HBAnalysis, RacePair
from repro.core.constraints import (
    ConstraintSet,
    EventRef,
    OrderConstraint,
    RefIndex,
)
from repro.core.sketches import SketchKind
from repro.sim.events import Event
from repro.sim.ops import OpKind
from repro.sim.trace import Trace


#: Frontier tiers.  The root (empty) attempt always runs first — it is
#: the baseline's attempt 1, so pre-seeding a plan can never make a
#: one-attempt bug slower.  Plan candidates (from the predictive
#: sanitizer pass, see :mod:`repro.sanitize`) run next, in plan rank
#: order — dynamic evidence dominates static approximation.  Static
#: candidates (from the sketchless analyzer, see
#: :mod:`repro.analysis.static_`) do *not* form a strict tier of their
#: own: the frontier interleaves them with the mined tier, alternating
#: one mined candidate (an ordering actually observed unordered in a
#: failed attempt) with one static candidate in static-plan rank order
#: (see :class:`repro.core.explorer.Frontier`).  Candidates mined from
#: failed attempts otherwise keep their best-first heap order.
TIER_ROOT = 0
TIER_PLAN = 1
TIER_STATIC = 2
TIER_MINED = 3


@dataclass(frozen=True)
class Candidate:
    """A constraint set to try, with its ranking key."""

    constraints: ConstraintSet
    depth: int  # number of constraints
    anchor_gidx: int  # trace position of the flipped race (for ranking)
    #: 0 for races involving a plain read (check-act shaped; the classic
    #: atomicity/order-violation ingredient), 1 for write/atomic-only races.
    shape: int = 0
    #: frontier tier (see :data:`TIER_ROOT` / :data:`TIER_PLAN` /
    #: :data:`TIER_STATIC` / :data:`TIER_MINED`); root and plan tiers
    #: are explored strictly first, then statics interleave with mined.
    tier: int = TIER_MINED
    #: rank within :data:`TIER_PLAN` / :data:`TIER_STATIC` (the
    #: analyzer's candidate order); unused by the other tiers.
    rank: int = 0
    #: the single constraint this candidate adds to the attempt it was
    #: mined from (None for root/plan candidates).  ``constraints -
    #: {flip}`` with the same seed names the parent attempt — the handle
    #: prefix-resume uses to find a shared simulator snapshot.
    flip: Optional[OrderConstraint] = None
    #: deepest parent-schedule step provably shared with this candidate:
    #: the flip's gate cannot block anything before the previous
    #: same-thread event of its ``after`` action's first possible match,
    #: so picks (and RNG draws) up to here are identical.  0 = no resume.
    safe_prefix: int = 0
    #: the parent attempt's total step count (bounds snapshot planning).
    parent_steps: int = 0

    def sort_key(self) -> Tuple[int, int, int, int]:
        """Heap key: (tier, major, shape, -anchor).

        The major key is the plan rank inside :data:`TIER_PLAN` and
        :data:`TIER_STATIC`, and the constraint-set depth inside
        :data:`TIER_MINED` (fewest constraints first — stay close to
        schedules already known to follow the sketch), so mined
        exploration order is unchanged when no plan is seeded.
        """
        major = (
            self.rank if self.tier in (TIER_PLAN, TIER_STATIC) else self.depth
        )
        return (self.tier, major, self.shape, -self.anchor_gidx)


def trace_fingerprint(trace: Trace) -> str:
    """Stable digest of *what* a trace executed (signatures, in order).

    ``hashlib`` rather than ``hash()`` so fingerprints computed in pool
    worker processes are comparable with the parent's regardless of each
    interpreter's string-hash randomization.  The digest is memoized on
    the trace — dedup, caching, and candidate mining all fingerprint the
    same trace, and events are immutable once emitted.
    """
    cached = getattr(trace, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha1()
    for event in trace.events:
        digest.update(repr(event.signature()).encode("utf-8"))
    fingerprint = digest.hexdigest()
    trace._fingerprint = fingerprint
    return fingerprint


class FeedbackDB:
    """What has been tried; prunes duplicate and inverse schedules."""

    def __init__(self) -> None:
        self._tried: Set[Tuple[ConstraintSet, int]] = set()
        self._trace_fingerprints: Set[str] = set()
        self.duplicate_traces = 0

    def mark_tried(self, constraints: ConstraintSet, seed: int) -> None:
        self._tried.add((constraints, seed))

    def tried(self, constraints: ConstraintSet, seed: int) -> bool:
        return (constraints, seed) in self._tried

    def record_trace(self, trace: Trace) -> bool:
        """Remember a trace fingerprint; True if this execution is new."""
        return self.record_fingerprint(trace_fingerprint(trace))

    def record_fingerprint(self, fingerprint: str) -> bool:
        """Remember a precomputed trace fingerprint; True if new.

        The parallel engine computes fingerprints inside pool workers (the
        trace itself never crosses the process boundary), so the dedup set
        accepts the digest directly.
        """
        if fingerprint in self._trace_fingerprints:
            self.duplicate_traces += 1
            return False
        self._trace_fingerprints.add(fingerprint)
        return True


class AttemptCache:
    """Memoized replay outcomes, keyed by what determines an attempt.

    A replay attempt is a pure function of (sketch log, constraint set,
    base seed, base policy, output strictness); re-running one that has
    already executed cannot produce a new interleaving.  The cache lets
    the exploration engine skip the replay entirely and fold the memoized
    outcome back in — most valuable when the same recorded run is
    explored repeatedly (degradation-ladder rungs that rewalk an empty
    frontier, serial-vs-parallel comparisons, benchmark reruns).

    Keys are built by the caller via :meth:`key_for`; values are opaque
    to the cache (the engine stores its ``AttemptOutcome`` records).

    :param max_entries: optional bound on memoized outcomes.  A long
        degradation-ladder run over a large frontier would otherwise
        grow the cache without limit; with a bound, the least recently
        *used* entry (ties broken by recorded order — dict insertion
        order, which is schedule-deterministic) is evicted and counted
        in :attr:`evictions`.  Eviction can only turn a would-be hit
        into a live replay, and attempts are pure, so exploration
        results are identical under any bound (pinned by
        ``tests/core/test_feedback.py``).
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._outcomes: Dict[Tuple, object] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: get/put are atomic under this (reentrant) lock, so one cache
        #: may be shared by concurrent sessions — the reproduction
        #: service runs a thread per job over per-tenant caches.  Within
        #: one session the engine is single-threaded and the lock is
        #: uncontended.
        self._lock = threading.RLock()

    @staticmethod
    def key_for(
        log_token: Tuple,
        constraints: ConstraintSet,
        seed: int,
        base_policy: str,
        match_output: bool,
    ) -> Tuple:
        """The cache key for one attempt: everything that determines it."""
        return (log_token, constraints, seed, base_policy, match_output)

    def get(self, key: Tuple) -> Optional[object]:
        """The memoized outcome for ``key``, counting the hit or miss."""
        with self._lock:
            outcome = self._outcomes.get(key)
            if outcome is not None:
                self.hits += 1
                if self.max_entries is not None:
                    # LRU bookkeeping: a hit refreshes the entry's
                    # position in the (insertion-ordered) dict.
                    del self._outcomes[key]
                    self._outcomes[key] = outcome
            else:
                self.misses += 1
            return outcome

    def put(self, key: Tuple, outcome: object) -> None:
        """Memoize one attempt outcome under its :meth:`key_for` key."""
        with self._lock:
            if self.max_entries is not None and key in self._outcomes:
                del self._outcomes[key]  # re-put refreshes recency
            self._outcomes[key] = outcome
            if self.max_entries is not None:
                while len(self._outcomes) > self.max_entries:
                    oldest = next(iter(self._outcomes))
                    del self._outcomes[oldest]
                    self.evictions += 1

    def __len__(self) -> int:
        return len(self._outcomes)


def _inverse(constraint: OrderConstraint) -> OrderConstraint:
    return OrderConstraint(before=constraint.after, after=constraint.before)


def _flip_for_race(
    race: RacePair,
    refs: RefIndex,
    sketch: SketchKind,
) -> Optional[OrderConstraint]:
    """The constraint that reverses this race on the next attempt."""
    common = race.common_mutexes()
    if common:
        if sketch.includes(SketchKind.SYNC):
            # Lock order is already pinned by the sketch; this race's
            # outcome was recorded, not open.
            return None
        (m_first, m_second) = common[0]
        name_first, occ_first = m_first
        name_second, occ_second = m_second
        return OrderConstraint(
            before=refs.lock_ref(race.second.tid, name_second, occ_second),
            after=refs.lock_ref(race.first.tid, name_first, occ_first),
        )
    before = refs.ref_of(race.second)
    after = refs.ref_of(race.first)
    if before is None or after is None:
        return None
    return OrderConstraint(before=before, after=after)


class _PrefixIndex:
    """Per-trace tables for computing a flip's safe resume prefix.

    ``safe_prefix(flip)`` is the first schedule step at which the flip's
    gate could possibly block something.  The gate only ever blocks the
    thread named by ``flip.after``, and only from the moment that
    thread's pending op first satisfies ``pending_matches`` — for a mem
    ref that is the named access itself (memory ops never fail, so the
    occurrence-th access is the first match); for a lock ref it may be
    an earlier *failed* TRYLOCK of the same mutex at the same prior-
    acquisition count.  Blocking a pending op can reshape the schedule
    from the pick right after the thread's previous event, so the safe
    prefix ends there.
    """

    def __init__(self, trace: Trace, refs: RefIndex) -> None:
        self._refs = refs
        self._prev_of: Dict[int, int] = {}
        self._lock_attempts: Dict[Tuple[int, object], List[Tuple[int, int]]] = {}
        last_by_tid: Dict[int, int] = {}
        acquired: Dict[Tuple[int, object], int] = {}
        lock_kinds = (OpKind.LOCK, OpKind.TRYLOCK, OpKind.RDLOCK, OpKind.WRLOCK)
        for event in trace.events:
            self._prev_of[event.gidx] = last_by_tid.get(event.tid, -1)
            last_by_tid[event.tid] = event.gidx
            if event.kind in lock_kinds:
                key = (event.tid, event.obj)
                self._lock_attempts.setdefault(key, []).append(
                    (event.gidx, acquired.get(key, 0))
                )
                if event.kind is not OpKind.TRYLOCK or event.value:
                    acquired[key] = acquired.get(key, 0) + 1

    def safe_prefix(self, flip: OrderConstraint) -> int:
        after = flip.after
        if after.family == "mem":
            gidx = self._refs.gidx_of(after)
        else:
            gidx = None
            for g, prior in self._lock_attempts.get((after.tid, after.key), ()):
                if prior == after.occurrence - 1:
                    gidx = g
                    break
        if gidx is None:
            return 0
        return self._prev_of.get(gidx, -1) + 1


def _lock_order_flips(trace: Trace, refs: RefIndex) -> List[Tuple[OrderConstraint, int]]:
    """Adjacent same-mutex acquisitions by different threads, flipped."""
    flips: List[Tuple[OrderConstraint, int]] = []
    last_acquire: Dict[str, Event] = {}
    for event in trace.events:
        acquired = event.kind in (OpKind.LOCK, OpKind.WRLOCK) or (
            event.kind is OpKind.TRYLOCK and event.value
        )
        if not acquired:
            continue
        mutex = event.obj
        prev = last_acquire.get(mutex)
        if prev is not None and prev.tid != event.tid:
            before = refs.ref_of(event)
            after = refs.ref_of(prev)
            if before is not None and after is not None:
                flips.append(
                    (OrderConstraint(before=before, after=after), event.gidx)
                )
        last_acquire[mutex] = event
    return flips


@dataclass
class FeedbackGenerator:
    """Turns one failed attempt into ranked next-attempt candidates."""

    sketch: SketchKind
    db: FeedbackDB = field(default_factory=FeedbackDB)
    max_candidates_per_attempt: int = 24
    max_constraint_depth: int = 8

    def candidates(
        self,
        attempt_trace: Trace,
        current: ConstraintSet,
    ) -> List[Candidate]:
        """Ranked, unseen constraint sets derived from one attempt."""
        if len(current) >= self.max_constraint_depth:
            return []

        use_lock_edges = self.sketch.includes(SketchKind.SYNC)
        analysis = HBAnalysis(attempt_trace, use_lock_edges=use_lock_edges)
        refs = RefIndex(attempt_trace.events)

        raw: List[Tuple[OrderConstraint, int, int]] = []
        for race in analysis.races:
            flip = _flip_for_race(race, refs, self.sketch)
            if flip is not None:
                involves_read = (
                    race.first.kind is OpKind.READ
                    or race.second.kind is OpKind.READ
                )
                raw.append((flip, race.second.gidx, 0 if involves_read else 1))
        if self.sketch is SketchKind.NONE:
            raw.extend(
                (flip, anchor, 0)
                for flip, anchor in _lock_order_flips(attempt_trace, refs)
            )

        current_inverses = {_inverse(c) for c in current}
        seen_sets: Set[ConstraintSet] = set()
        out: List[Candidate] = []
        prefixes = _PrefixIndex(attempt_trace, refs)
        # Check-act-shaped races first, then later-in-trace first, so the
        # per-attempt cap keeps the likeliest flips.
        for flip, anchor, shape in sorted(raw, key=lambda t: (t[2], -t[1])):
            if flip in current or _inverse(flip) in current:
                continue
            if flip in current_inverses:
                continue
            candidate_set: ConstraintSet = frozenset(current | {flip})
            if candidate_set in seen_sets:
                continue
            seen_sets.add(candidate_set)
            out.append(
                Candidate(
                    constraints=candidate_set,
                    depth=len(candidate_set),
                    anchor_gidx=anchor,
                    shape=shape,
                    flip=flip,
                    safe_prefix=prefixes.safe_prefix(flip),
                    parent_steps=attempt_trace.steps,
                )
            )
            if len(out) >= self.max_candidates_per_attempt:
                break
        return out
