"""Execution sketching mechanisms.

A *sketch* is a global, totally ordered log of a subset of a run's events.
PRES's five mechanisms form a spectrum from "record almost nothing" to
"record the order of every shared access" (which is classical software
deterministic replay, the overhead baseline the paper improves on):

========  ==========================================================
SYNC      synchronization operations (locks, condvars, semaphores,
          barriers, thread spawn/join)
SYS       SYNC + system calls
FUNC      SYS + function entries/exits
BB        FUNC + basic-block markers
RW        BB + every shared-memory access — full order, deterministic
          replay on the first attempt
========  ==========================================================

plus the degenerate ``NONE`` (record only the inputs; replay is stress
testing).  Mechanisms are cumulative by construction, so more recording
never reproduces a bug in *more* attempts.

Each sketch entry remembers (thread, kind, object key): enough to enforce
"the i-th sketch-visible event must be this thread doing this thing", and
nothing more — in particular no values, which is what keeps the logs small.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.sim.events import Event
from repro.sim.ops import MEMORY_KINDS, SYNC_KINDS, Op, OpKind


class SketchKind(enum.Enum):
    """The recording mechanisms, cheapest first."""

    NONE = "none"
    SYNC = "sync"
    SYS = "sys"
    FUNC = "func"
    BB = "bb"
    RW = "rw"

    @property
    def level(self) -> int:
        """Information level; higher records strictly more."""
        return SKETCH_ORDER.index(self)

    def includes(self, other: "SketchKind") -> bool:
        return self.level >= other.level


#: Mechanisms ordered by information content.
SKETCH_ORDER: Tuple[SketchKind, ...] = (
    SketchKind.NONE,
    SketchKind.SYNC,
    SketchKind.SYS,
    SketchKind.FUNC,
    SketchKind.BB,
    SketchKind.RW,
)

_VISIBLE_BY_KIND = {
    SketchKind.NONE: frozenset(),
    SketchKind.SYNC: SYNC_KINDS,
    SketchKind.SYS: SYNC_KINDS | {OpKind.SYSCALL},
    SketchKind.FUNC: SYNC_KINDS
    | {OpKind.SYSCALL, OpKind.FUNC_ENTER, OpKind.FUNC_EXIT},
    SketchKind.BB: SYNC_KINDS
    | {OpKind.SYSCALL, OpKind.FUNC_ENTER, OpKind.FUNC_EXIT, OpKind.BASIC_BLOCK},
    SketchKind.RW: SYNC_KINDS
    | {OpKind.SYSCALL, OpKind.FUNC_ENTER, OpKind.FUNC_EXIT, OpKind.BASIC_BLOCK}
    | MEMORY_KINDS,
}


def visible_kinds(sketch: SketchKind) -> frozenset:
    """Op kinds this mechanism records."""
    return _VISIBLE_BY_KIND[sketch]


def op_visible(sketch: SketchKind, op: Op) -> bool:
    """Whether an op about to execute would be recorded by this sketch."""
    return op.kind in _VISIBLE_BY_KIND[sketch]


def event_visible(sketch: SketchKind, event: Event) -> bool:
    """Whether an executed event is recorded by this sketch."""
    return event.kind in _VISIBLE_BY_KIND[sketch]


def op_key(kind: OpKind, op_or_event: Any) -> Any:
    """The object key stored in a sketch entry.

    Chosen so that the key is a pure function of the thread's control flow
    (never of racy data values): sync object names, syscall name plus its
    channel/file argument, function names, basic-block labels, addresses.
    """
    if kind in SYNC_KINDS:
        return op_or_event.obj
    if kind is OpKind.SYSCALL:
        args = op_or_event.args
        first = args[0] if args else None
        if isinstance(first, (str, int)):
            return (op_or_event.name, first)
        return (op_or_event.name, None)
    if kind in (OpKind.FUNC_ENTER, OpKind.FUNC_EXIT):
        return op_or_event.name
    if kind is OpKind.BASIC_BLOCK:
        return op_or_event.label
    if kind in MEMORY_KINDS:
        return op_or_event.addr
    return None


@dataclass(frozen=True)
class SketchEntry:
    """One recorded sketch point: thread ``tid`` performed ``kind`` on ``key``."""

    tid: int
    kind: OpKind
    key: Any

    @classmethod
    def from_event(cls, event: Event) -> "SketchEntry":
        return cls(tid=event.tid, kind=event.kind, key=op_key(event.kind, event))

    def matches_op(self, tid: int, op: Op) -> bool:
        """Whether a pending op is this entry."""
        return (
            tid == self.tid
            and op.kind is self.kind
            and op_key(op.kind, op) == self.key
        )

    def describe(self) -> str:
        return f"T{self.tid} {self.kind.value} {self.key!r}"


def entry_for_op(tid: int, op: Op) -> SketchEntry:
    """The entry this pending op would record when it executes."""
    return SketchEntry(tid=tid, kind=op.kind, key=op_key(op.kind, op))


def parse_sketch_kind(name: str) -> SketchKind:
    """Parse a user-supplied mechanism name ('sync', 'rw', ...)."""
    try:
        return SketchKind(name.lower())
    except ValueError:
        valid = ", ".join(k.value for k in SKETCH_ORDER)
        raise ValueError(f"unknown sketch kind {name!r}; expected one of {valid}") from None
