"""Parallel replay-attempt exploration.

The paper's pitch is that PRES trades a cheap sketch for *more replay
attempts* — which makes attempt throughput, not single-replay latency,
the number that matters at diagnosis time.  Every attempt is a pure
function of ``(sketch log, constraint set, base seed)``, so attempts are
embarrassingly parallel: :class:`ParallelExplorer` dispatches *batches*
of frontier candidates to a ``ProcessPoolExecutor`` of replay workers,
each of which reconstructs the machine + PIR scheduler from a pickled
:class:`~repro.core.recorder.RecordedRun` and sends back a compact
:class:`AttemptOutcome` (never the full trace).

Deterministic merge semantics
-----------------------------

Parallelism must not change *what* is explored, or the published attempt
counts would depend on core count.  The engine guarantees that by being
batch-synchronous:

1. A batch of up to ``batch_size`` candidates is popped from the frontier
   in canonical best-first order (the same heap order the serial
   :class:`~repro.core.explorer.FeedbackExplorer` uses).
2. The batch is evaluated — concurrently or not; each attempt is pure, so
   worker scheduling cannot affect any outcome.
3. Outcomes are folded back **in pop order**: records are appended, the
   first matched outcome (in pop order, not completion order) wins, and
   mined candidates re-enter the frontier in that same order.

Consequently the exploration schedule depends only on ``batch_size``,
never on ``jobs``: ``jobs=1`` and ``jobs=64`` report the same winning
schedule and the same attempt count.  With ``batch_size=1`` the engine
degenerates to exactly the serial explorer's schedule (property-tested in
``tests/core/test_parallel.py``).

Early cancellation: once a batch's canonical-first match is known, every
later future in the batch is cancelled and no further batches are
dispatched — their results could never be reported anyway.

The attempt cache (:class:`~repro.core.feedback.AttemptCache`) sits in
front of dispatch: a (constraints, seed) pair whose outcome is already
memoized cannot produce a new interleaving, so it is folded straight from
the cache without burning a worker.

Fault tolerance is delegated to a :class:`~repro.robust.supervise.Supervisor`,
which owns the pool: attempt deadlines, retry/backoff on worker death,
pool rebuilds, serial fallback, and (optional) chaos injection all live
there.  Attempts are pure, so supervision can only change *where* an
outcome is computed — the exploration schedule and the final report stay
byte-identical under injected faults (see ``docs/resilience.md``).  A
``KeyboardInterrupt`` mid-exploration shuts the pool down cleanly
(workers joined, no zombies) and returns the partial result with
``interrupted=True`` instead of propagating a traceback.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import shm
from repro.core.constraints import ConstraintSet, canonical_order
from repro.core.epochs import EpochResumeBase
from repro.core.explorer import (
    EMPTY_SEEDS,
    AttemptRecord,
    ExplorationResult,
    ExplorerConfig,
    Frontier,
    SeededSets,
    _classify,
    observe_attempt_record,
    observe_plan_match,
    seed_plan,
)
from repro.core.feedback import (
    TIER_ROOT,
    AttemptCache,
    Candidate,
    FeedbackDB,
    FeedbackGenerator,
    trace_fingerprint,
)
from repro.core.pir import PIRScheduler
from repro.core.prefix import (
    PrefixTree,
    ResumePlan,
    capture_hooks,
    resume_depth,
    resume_machine,
)
from repro.core.recorder import RecordedRun, apply_oracle
from repro.obs.session import ObsSession, resolve_session
from repro.obs.tracer import NULL_TRACER, PARENT_TRACK, SpanRecord, Tracer
from repro.robust.inject import ChaosInjector, ChaosSpec, parse_chaos
from repro.robust.supervise import Supervisor, SuperviseConfig
from repro.sim.machine import Machine
from repro.sim.trace import Trace

_EMPTY: ConstraintSet = frozenset()


@dataclass
class AttemptContext:
    """Everything a replay worker needs to run attempts for one session.

    Pickled once per pool (via the worker initializer), not per task —
    tasks themselves are just ``(constraints, seed)`` pairs.
    """

    recorded: RecordedRun
    base_policy: str = "random"
    match_output: bool = False
    max_candidates_per_attempt: int = 24
    max_constraint_depth: int = 8
    #: canonical-order memo so each distinct constraint set is sorted
    #: once per session, not once per replay.
    sorted_cache: Dict[ConstraintSet, Tuple] = field(default_factory=dict)
    #: bound on the memo above — a long ladder walk over a large
    #: frontier sees an unbounded stream of distinct constraint sets, so
    #: without a cap the memo is a slow leak.  Eviction is oldest-first
    #: (dict insertion order, schedule-deterministic) and can only cost
    #: a re-sort, never change its result.  ``0`` disables the bound.
    sorted_cache_limit: int = 4096
    #: record per-attempt spans inside :func:`evaluate_attempt` (in the
    #: worker process, when pooled) and ship them on the outcome.
    trace_attempts: bool = False
    #: the parent tracer's monotonic-clock epoch, so worker spans land on
    #: the parent timeline directly (see :mod:`repro.obs.tracer`).
    trace_epoch: float = 0.0
    #: epoch replay base: restore this boundary snapshot instead of
    #: re-simulating from step 0 (``recorded.log`` is then the
    #: epoch-local suffix).  Serialized snapshots pickle with the rest
    #: of the context, so pool workers restore it like the parent does.
    epoch_base: Optional[EpochResumeBase] = None

    def ordered(self, constraints: ConstraintSet) -> Tuple:
        """The canonical ordering of ``constraints``, memoized per session."""
        cached = self.sorted_cache.get(constraints)
        if cached is None:
            cached = canonical_order(constraints)
            if (
                self.sorted_cache_limit > 0
                and len(self.sorted_cache) >= self.sorted_cache_limit
            ):
                del self.sorted_cache[next(iter(self.sorted_cache))]
            self.sorted_cache[constraints] = cached
        return cached

    def attempt_tracer(self) -> Tracer:
        """A tracer for one attempt evaluation (null when tracing is off)."""
        if not self.trace_attempts:
            return NULL_TRACER
        return Tracer(enabled=True, epoch=self.trace_epoch)


@dataclass(frozen=True)
class AttemptOutcome:
    """What one replay attempt produced, compact enough to pickle back.

    The full trace stays in the worker; the parent only needs the
    classification, a stable execution fingerprint for dedup, the mined
    next-attempt candidates, and (for matches) the winning schedule.
    """

    constraints: ConstraintSet
    seed: int
    outcome: str
    detail: str
    steps: int
    matched: bool
    fingerprint: str
    candidates: Tuple[Candidate, ...] = ()
    schedule: Optional[Tuple[int, ...]] = None
    #: spans recorded while evaluating this attempt (tracing only);
    #: stamped with the recording pid so the parent can assign worker
    #: lanes deterministically at fold time.  Stripped before caching.
    spans: Tuple[SpanRecord, ...] = ()


def run_attempt(
    ctx: AttemptContext,
    constraints: ConstraintSet,
    seed: int,
    resume: Optional[ResumePlan] = None,
    tree: Optional[PrefixTree] = None,
) -> Tuple[Trace, bool]:
    """One replay attempt; the single source of attempt semantics.

    Shared by the serial :class:`~repro.core.reproducer.Reproducer`, the
    in-process fast path, and pool workers, so all three cannot drift.

    ``resume``/``tree`` opt into prefix memoization: the machine starts
    from a snapshot of the parent attempt inside the candidate's safe
    prefix instead of step 0, and the live run captures its own
    snapshots as it passes each ladder depth so future siblings can
    resume from *this* attempt.  Capturing is observation-only and
    resume failures of any kind fall back to a cold run — attempts are
    pure, so the trace is identical either way (property-tested in
    ``tests/core/test_prefix.py``).
    """
    recorded = ctx.recorded
    machine = None
    scheduler: Optional[PIRScheduler] = None
    if resume is not None and tree is not None:
        resumed = resume_machine(ctx, constraints, seed, resume, tree)
        if resumed is not None:
            machine, scheduler = resumed
    if machine is None:
        scheduler = PIRScheduler(
            recorded.log,
            ctx.ordered(constraints),
            base_seed=seed,
            base_policy=ctx.base_policy,
        )
        machine = Machine(recorded.program, scheduler, recorded.config)
        if ctx.epoch_base is not None:
            # Last-epoch in-situ replay: restore the boundary snapshot
            # and search only the epoch-local suffix.  The restored
            # machine already holds the production prefix events, so the
            # scheduler primes its gate from them while its cursor walks
            # the suffix log from 0.
            ctx.epoch_base.restore_into(machine)
            scheduler.prime_restored(machine)
    if tree is not None:
        depths, on_snapshot = capture_hooks(constraints, seed, scheduler, tree)
        if machine.schedule:
            # resumed: rungs at or below the resume point were aliased
            # from the parent by resume_machine; only capture deeper ones
            start = len(machine.schedule)
            depths = tuple(d for d in depths if d > start)
        trace = machine.run(snapshot_depths=depths, on_snapshot=on_snapshot)
    else:
        trace = machine.run()
    failure = apply_oracle(trace, recorded.oracle)
    if failure is not None and trace.failure is None:
        trace.failure = failure
    matched = (
        not trace.diverged
        and failure is not None
        and recorded.failure.matches(failure)
    )
    if matched and ctx.match_output:
        matched = trace.stdout == recorded.stdout
    return trace, matched


def evaluate_attempt(
    ctx: AttemptContext,
    constraints: ConstraintSet,
    seed: int,
    mine: bool = True,
    resume: Optional[ResumePlan] = None,
    tree: Optional[PrefixTree] = None,
) -> AttemptOutcome:
    """Run one attempt and summarize it as a picklable outcome.

    Candidate mining happens here, in the worker, so the (potentially
    large) trace never crosses the process boundary.  A matched attempt
    skips mining — the search stops at it anyway — and carries the
    winning schedule instead.
    """
    tracer = ctx.attempt_tracer()
    attempt_span = tracer.span(
        "attempt", category="attempt", seed=seed, constraints=len(constraints)
    )
    with attempt_span:
        with tracer.span("replay", category="replay"):
            trace, matched = run_attempt(
                ctx, constraints, seed, resume=resume, tree=tree
            )
        outcome, detail = _classify(trace, matched)
        candidates: Tuple[Candidate, ...] = ()
        schedule: Optional[Tuple[int, ...]] = None
        if matched:
            schedule = tuple(trace.schedule)
        elif mine:
            with tracer.span("mine", category="feedback"):
                generator = FeedbackGenerator(
                    sketch=ctx.recorded.sketch,
                    max_candidates_per_attempt=ctx.max_candidates_per_attempt,
                    max_constraint_depth=ctx.max_constraint_depth,
                )
                candidates = tuple(generator.candidates(trace, constraints))
        attempt_span.note(
            outcome=outcome, steps=trace.steps, candidates=len(candidates)
        )
    return AttemptOutcome(
        constraints=constraints,
        seed=seed,
        outcome=outcome,
        detail=detail,
        steps=trace.steps,
        matched=matched,
        fingerprint=trace_fingerprint(trace),
        candidates=candidates,
        schedule=schedule,
        spans=tuple(tracer.spans),
    )


# -- pool worker plumbing -----------------------------------------------------

#: Per-worker-process session cache, keyed by segment token: each entry
#: holds one session's AttemptContext (attached once from the shared
#: segment, unpickled once) and this worker's prefix-snapshot tree for
#: that session.  A *leased* pool serves many sessions over its
#: lifetime, so workers keep the most recent few warm instead of one.
_WORKER_SESSIONS: "OrderedDict[shm.SegmentToken, Dict[str, Any]]" = OrderedDict()

#: sessions a worker keeps warm before evicting the least recently used
#: one.  Eviction only costs a re-attach + re-unpickle (and cold prefix
#: snapshots); attempts are pure, so outcomes are unaffected.
_WORKER_SESSION_LIMIT = 4


def _worker_session(token: shm.SegmentToken) -> Dict[str, Any]:
    session = _WORKER_SESSIONS.get(token)
    if session is None:
        session = {
            "ctx": pickle.loads(shm.attach(token)),
            "tree": PrefixTree(),
        }
        while len(_WORKER_SESSIONS) >= _WORKER_SESSION_LIMIT:
            _WORKER_SESSIONS.popitem(last=False)
        _WORKER_SESSIONS[token] = session
    else:
        _WORKER_SESSIONS.move_to_end(token)
    return session


def _worker_init(token: shm.SegmentToken) -> None:
    """Pre-warm a session-owned pool's workers at fork time."""
    _worker_session(token)


def _worker_run(
    task: Tuple[shm.SegmentToken, ConstraintSet, int, bool, Optional[ResumePlan]]
) -> AttemptOutcome:
    token, constraints, seed, mine, resume = task
    session = _worker_session(token)
    return evaluate_attempt(
        session["ctx"],
        constraints,
        seed,
        mine=mine,
        resume=resume,
        tree=session["tree"],
    )


# -- pool lending -------------------------------------------------------------


class PoolLease:
    """An externally owned replay-worker pool shared across sessions.

    A long-lived host (the reproduction service) keeps one warm
    ``ProcessPoolExecutor`` and lends it to every
    :class:`ParallelExplorer` it runs: sessions dispatch tasks carrying
    their own segment token (workers keep a small per-session cache, see
    :data:`_WORKER_SESSIONS`), a session ending detaches without tearing
    the pool down, and only a broken-pool verdict — or :meth:`close` —
    recycles the executor.  Thread-safe: concurrent sessions may acquire
    and invalidate from different threads.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = max(1, jobs)
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        #: executors built over this lease's lifetime (diagnostics).
        self.builds = 0

    def acquire(self) -> ProcessPoolExecutor:
        """The shared executor, built lazily on first use."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool lease is closed")
            if self._pool is None:
                import multiprocessing

                mp_context = None
                if "fork" in multiprocessing.get_all_start_methods():
                    mp_context = multiprocessing.get_context("fork")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=mp_context
                )
                self.builds += 1
            return self._pool

    def invalidate(self, pool: ProcessPoolExecutor) -> None:
        """Discard a broken executor so the next acquire rebuilds.

        Keyed on identity: if another session already replaced the
        executor, only the stale one is shut down.
        """
        with self._lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self, wait: bool = True) -> None:
        """Shut the shared executor down for good (host shutdown path)."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)


class _LeasedPool:
    """A session's borrowed view of a :class:`PoolLease` executor.

    Looks enough like a ``ProcessPoolExecutor`` for the supervisor:
    ``submit`` delegates; ``shutdown`` — the session-detach path — is a
    no-op because the lease owns the executor's lifecycle; a
    broken-pool verdict goes through :meth:`discard_broken`, which
    invalidates the shared executor for every session.
    """

    def __init__(self, lease: PoolLease, pool: ProcessPoolExecutor) -> None:
        self._lease = lease
        self._pool = pool

    def submit(self, fn, *args, **kwargs):
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = False, cancel_futures: bool = False) -> None:
        """Detach from the lease; the shared executor keeps running."""

    def discard_broken(self) -> None:
        self._lease.invalidate(self._pool)


class ParallelExplorer:
    """Batch-deterministic exploration over a pool of replay workers.

    Drop-in peer of :class:`~repro.core.explorer.FeedbackExplorer` /
    :class:`~repro.core.explorer.RandomExplorer` that owns its attempt
    execution (the serial explorers are handed a runner callable; this
    one must ship work to other processes, so it holds the
    :class:`AttemptContext` itself).

    :param use_feedback: with False, explores the predetermined seed
        sequence of :class:`RandomExplorer` (the E5 ablation arm), still
        batched and cached.
    :param cache: optional shared :class:`AttemptCache`; hits are folded
        without dispatching a replay.
    :param supervise: retry/deadline/rebuild policy for the worker pool
        (:class:`~repro.robust.supervise.SuperviseConfig`); the default
        tolerates a couple of worker deaths per attempt and a couple of
        pool rebuilds per session.
    :param chaos: optional fault injection — a ``--chaos``-style spec
        string, a :class:`~repro.robust.inject.ChaosSpec`, or a built
        :class:`~repro.robust.inject.ChaosInjector`.
    :param pool: optional :class:`PoolLease` — a shared, externally
        owned worker pool to borrow instead of building (and tearing
        down) a private one.  Results are identical either way; the
        lease only changes where attempts are computed.
    """

    def __init__(
        self,
        recorded: RecordedRun,
        config: Optional[ExplorerConfig] = None,
        base_policy: str = "random",
        match_output: bool = False,
        use_feedback: bool = True,
        cache: Optional[AttemptCache] = None,
        obs: Optional[ObsSession] = None,
        supervise: Optional[SuperviseConfig] = None,
        chaos=None,
        pool: Optional[PoolLease] = None,
        epoch_base: Optional[EpochResumeBase] = None,
    ) -> None:
        self.config = config or ExplorerConfig()
        self.obs = resolve_session(self.config, obs)
        self.context = AttemptContext(
            recorded=recorded,
            base_policy=base_policy,
            match_output=match_output,
            max_candidates_per_attempt=self.config.max_candidates_per_attempt,
            max_constraint_depth=self.config.max_constraint_depth,
            trace_attempts=self.obs.tracer.enabled,
            trace_epoch=self.obs.tracer.epoch,
            epoch_base=epoch_base,
        )
        self.use_feedback = use_feedback
        self.cache = cache
        self.supervise = supervise or SuperviseConfig()
        if isinstance(chaos, str):
            chaos = parse_chaos(chaos)
        if isinstance(chaos, ChaosSpec):
            chaos = ChaosInjector(chaos) if chaos.active else None
        self.chaos: Optional[ChaosInjector] = chaos
        #: partial result captured so a KeyboardInterrupt can report it.
        self._partial: Optional[ExplorationResult] = None
        bind = getattr(cache, "bind_metrics", None)
        if bind is not None:
            # A persistent cache tier charges its store.* counters into
            # this session's registry (at get/put time, so they stay as
            # jobs-invariant as every other counter).
            bind(self.obs.metrics)
        self.db = FeedbackDB()
        #: why the process pool could not be used, if it could not.
        self.pool_disabled_reason: Optional[str] = None
        #: shared pool lease, when the host lends one (see :class:`PoolLease`).
        self.lease = pool
        #: this session's published segment token; set by :meth:`_make_pool`
        #: before any dispatch can happen (the supervisor builds the pool
        #: before submitting its first task).
        self._session_token: Optional[shm.SegmentToken] = None
        self._log_token = (
            recorded.sketch.value,
            len(recorded.log),
            recorded.log.fingerprint(),
        )
        # Worker lanes are assigned by first appearance *at fold time*,
        # which happens in pop order — so lane numbering is deterministic
        # even though OS pids are not.
        self._parent_pid = os.getpid()
        self._lanes: Dict[int, int] = {}
        #: constraint sets seeded from the sanitizer plan and the static
        #: analyzer (feedback mode only), for the match attribution at
        #: fold time.
        self._plan_sets: SeededSets = EMPTY_SEEDS
        #: prefix snapshots for attempts evaluated in this process (the
        #: inline path and supervisor fallbacks); pool workers hold their
        #: own trees (see :func:`_worker_init`).
        self._prefix_tree = PrefixTree()
        #: resume plans issued at batch assembly — the logical, jobs-
        #: invariant count the report and metrics publish (which worker
        #: physically held the snapshot is invisible by design).
        self._prefix_hits = 0
        #: folded attempt-cost totals driving auto batch sizing; updated
        #: only at fold points, so they are jobs-invariant too.
        self._folded_attempts = 0
        self._folded_steps = 0

    # -- public API -----------------------------------------------------

    @property
    def batch_size(self) -> int:
        """Frontier candidates dispatched per batch.

        The exploration schedule — and therefore every counter and
        histogram the engine charges — depends only on this value, never
        on ``jobs``.
        """
        configured = self.config.batch_size
        if configured > 0:
            return configured
        # Auto: serial stays exactly serial (batch of 1 == the serial
        # explorer's schedule); pools speculate two batches per worker —
        # doubled when folded attempts measure as cheap, where dispatch
        # latency dominates and deeper speculation amortizes it.  The
        # tuning signal is virtual steps folded so far (never wall
        # clock), so the batch sequence is a deterministic function of
        # the exploration itself.
        if self.config.jobs <= 1:
            return 1
        base = 2 * self.config.jobs
        if (
            self._folded_attempts >= 8
            and self._folded_steps <= 200 * self._folded_attempts
        ):
            base *= 2
        return base

    def explore(self) -> ExplorationResult:
        """Run the batched search; identical results for any ``jobs``.

        Worker faults (and injected chaos) are absorbed by the
        supervisor; a ``KeyboardInterrupt`` shuts the pool down with its
        workers joined and returns the partial result, flagged
        ``interrupted``, instead of propagating.
        """
        self.obs.metrics.gauge("jobs").set(self.config.jobs)
        self.obs.metrics.gauge("batch_size").set(self.batch_size)
        self._charge_resumed()
        with self.obs.tracer.span(
            "explore", category="engine",
            jobs=self.config.jobs, batch_size=self.batch_size,
            feedback=self.use_feedback,
        ):
            supervisor = self._make_supervisor()
            try:
                if self.use_feedback:
                    result = self._explore_feedback(supervisor)
                else:
                    result = self._explore_random(supervisor)
            except KeyboardInterrupt:
                supervisor.shutdown(wait=True)
                result = self._partial or ExplorationResult(success=False)
                result.interrupted = True
                result.duplicate_traces = self.db.duplicate_traces
                if self.cache is not None:
                    result.cache_hits = self.cache.hits
                self.obs.metrics.counter("supervise.interrupted").inc()
                self.obs.tracer.instant("interrupted", category="supervise")
            finally:
                supervisor.shutdown(wait=False)
        self.obs.metrics.counter("duplicate_traces").inc(result.duplicate_traces)
        result.prefix_hits = self._prefix_hits
        return result

    # -- supervision ----------------------------------------------------

    def _make_supervisor(self) -> Supervisor:
        """The fault-absorbing executor for this session's batches.

        The supervisor is handed callables instead of this object, so it
        stays decoupled from the engine (and unit-testable with stub
        pools): ``dispatch`` ships one task to a pool worker, ``inline``
        is the deterministic in-process escape hatch.
        """
        return Supervisor(
            self.supervise,
            obs=self.obs,
            pool_factory=self._make_pool,
            dispatch=lambda pool, constraints, seed, mine, resume=None: (
                pool.submit(
                    _worker_run,
                    (self._session_token, constraints, seed, mine, resume),
                )
            ),
            inline=lambda constraints, seed, mine, resume=None: (
                evaluate_attempt(
                    self.context, constraints, seed, mine=mine,
                    resume=resume, tree=self._prefix_tree,
                )
            ),
            max_attempts=self.config.max_attempts,
            chaos=self.chaos,
            # Chaos verdicts key on attempt *content* in canonical
            # constraint order — never dispatch order or pids — so
            # injection is jobs-invariant.
            chaos_material=lambda constraints, seed: (
                f"{seed}|{self.context.ordered(constraints)!r}"
            ),
            store_root=self._store_root(),
        )

    def _store_root(self) -> Optional[str]:
        """The attempt-store root behind the cache stack, if any.

        Walks at most one ``inner`` link (a run journal layered on a
        persistent tier) — the target of chaos shard corruption.
        """
        root = getattr(getattr(self.cache, "store", None), "root", None)
        if root is None:
            inner = getattr(self.cache, "inner", None)
            root = getattr(getattr(inner, "store", None), "root", None)
        return root

    def _charge_resumed(self) -> None:
        """Surface resumed-run preloads in the supervise metric family."""
        take = getattr(self.cache, "take_resumed", None)
        if take is None:
            return
        resumed = take()
        if resumed:
            self.obs.metrics.counter("supervise.resumed_attempts").inc(resumed)
            self.obs.tracer.instant(
                "resumed", category="supervise", attempts=resumed
            )

    # -- pool management ------------------------------------------------

    def _make_pool(self):
        if self.config.jobs <= 1 and self.lease is None:
            return None
        started = time.perf_counter()
        try:
            payload = pickle.dumps(self.context)
        except Exception as exc:  # unpicklable program/oracle: run inline
            self.pool_disabled_reason = (
                f"session is not picklable ({exc}); running attempts in-process"
            )
            self.obs.tracer.instant(
                "pool-disabled", category="engine",
                reason=self.pool_disabled_reason,
            )
            return None
        try:
            import multiprocessing

            # Publish the session snapshot once; workers attach to the
            # segment by name and unpickle on first use, so the context
            # bytes cross the executor pipe zero times.  The publish
            # registry dedups by content, so a supervisor rebuilding
            # this pool (or another arm over the same recording)
            # republishes nothing.
            token = shm.publish(payload)
            self._session_token = token
            if self.lease is not None:
                # Borrowed pool: workers attach lazily per session (the
                # lease's workers may predate this session), and the
                # session must not tear the executor down on its way out.
                pool = _LeasedPool(self.lease, self.lease.acquire())
                self.obs.metrics.gauge("parallel.warm_init_s").set(
                    round(time.perf_counter() - started, 6)
                )
                return pool
            mp_context = None
            if "fork" in multiprocessing.get_all_start_methods():
                # fork keeps worker hash seeds identical to the parent's
                # and skips re-importing the world per worker.
                mp_context = multiprocessing.get_context("fork")
            pool = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                mp_context=mp_context,
                initializer=_worker_init,
                initargs=(token,),
            )
            # Gauge, not counter: wall-clock warm-up cost is environment
            # data, exempt from the jobs-invariance contract.
            self.obs.metrics.gauge("parallel.warm_init_s").set(
                round(time.perf_counter() - started, 6)
            )
            return pool
        except Exception as exc:  # no fork/spawn support in this env
            self.pool_disabled_reason = (
                f"process pool unavailable ({exc}); running attempts in-process"
            )
            self.obs.tracer.instant(
                "pool-disabled", category="engine",
                reason=self.pool_disabled_reason,
            )
            return None

    # -- batch evaluation ------------------------------------------------

    def _evaluate_batch(
        self,
        supervisor: Supervisor,
        tasks: Sequence[
            Tuple[ConstraintSet, int, Optional[AttemptOutcome], Optional[ResumePlan]]
        ],
    ) -> List[AttemptOutcome]:
        """Evaluate one batch, returning outcomes in canonical pop order.

        Stops at the first matched outcome *in pop order*: later entries
        are cancelled (pool) or never run (inline), so the result list is
        identical however many workers raced on it.  Execution — pooled
        with retries, or in-process — is the supervisor's business.
        """
        return supervisor.evaluate_batch(tasks, self.use_feedback)

    def _cache_key(self, constraints: ConstraintSet, seed: int) -> Tuple:
        return AttemptCache.key_for(
            self._log_token,
            constraints,
            seed,
            self.context.base_policy,
            self.context.match_output,
        )

    def _cached(self, constraints: ConstraintSet, seed: int) -> Optional[AttemptOutcome]:
        if self.cache is None:
            return None
        # Lookups happen during batch assembly, in pop order, so these
        # counters are as schedule-deterministic as the search itself.
        outcome = self.cache.get(self._cache_key(constraints, seed))
        if outcome is not None:
            self.obs.metrics.counter("cache_hits").inc()
            self.obs.tracer.instant(
                "cache-hit", category="cache",
                seed=seed, constraints=len(constraints),
            )
        else:
            self.obs.metrics.counter("cache_misses").inc()
        return outcome

    def _remember(self, outcome: AttemptOutcome) -> None:
        if self.cache is not None:
            # Spans describe *this* run's wall clock; a future session
            # folding the cached outcome must not inherit them.
            self.cache.put(
                self._cache_key(outcome.constraints, outcome.seed),
                replace(outcome, spans=()),
            )

    def _resume_plan(self, candidate: Candidate) -> Optional[ResumePlan]:
        """A prefix-resume plan for one popped candidate, if one exists.

        Called during batch assembly, in pop order, on live (uncached)
        attempts only — the hit count is therefore a logical property of
        the exploration schedule, identical for every ``jobs`` value and
        for warm vs. cold pools, regardless of which process ends up
        holding (or rebuilding) the snapshot.
        """
        if candidate.flip is None:
            return None
        depth = resume_depth(candidate.parent_steps, candidate.safe_prefix)
        if depth <= 0:
            return None
        self._prefix_hits += 1
        self.obs.metrics.counter("parallel.prefix_hits").inc()
        self.obs.metrics.histogram("parallel.prefix_depth").observe(depth)
        return ResumePlan(
            flip=candidate.flip,
            depth=depth,
            parent_steps=candidate.parent_steps,
        )

    def _lane_for(self, pid: int) -> int:
        """The timeline lane for spans recorded by ``pid``.

        Parent-process spans stay on :data:`~repro.obs.tracer.PARENT_TRACK`;
        worker pids get 1-based lanes in first-appearance-at-fold order.
        """
        if pid == self._parent_pid:
            return PARENT_TRACK
        lane = self._lanes.get(pid)
        if lane is None:
            lane = len(self._lanes) + 1
            self._lanes[pid] = lane
        return lane

    # -- feedback-driven search ------------------------------------------

    def _explore_feedback(self, supervisor: Supervisor) -> ExplorationResult:
        result = ExplorationResult(success=False)
        self._partial = result
        config = self.config
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        frontier = Frontier()
        restarts_used = 0
        push = frontier.push

        push(Candidate(_EMPTY, 0, 0, tier=TIER_ROOT), config.base_seed)
        self._plan_sets = seed_plan(push, config, metrics)

        while result.attempt_count < config.max_attempts:
            # Assemble the next batch in canonical best-first order.
            batch: List[
                Tuple[ConstraintSet, int, Optional[AttemptOutcome], Optional[ResumePlan]]
            ] = []
            budget_left = config.max_attempts - result.attempt_count
            want = min(self.batch_size, budget_left)
            while len(batch) < want and frontier:
                constraints, seed, candidate = frontier.pop()
                if self.db.tried(constraints, seed):
                    continue
                self.db.mark_tried(constraints, seed)
                cached = self._cached(constraints, seed)
                resume = None if cached is not None else self._resume_plan(candidate)
                batch.append((constraints, seed, cached, resume))
            if not batch:
                restarts_used += 1
                if restarts_used > config.seed_restarts:
                    break
                metrics.counter("seed_restarts").inc()
                push(
                    Candidate(_EMPTY, 0, 0, tier=TIER_ROOT),
                    config.base_seed + restarts_used,
                )
                continue

            metrics.counter("batches").inc()
            with tracer.span(
                "batch", category="explore", size=len(batch),
                first_attempt=result.attempt_count,
            ):
                outcomes = self._evaluate_batch(supervisor, batch)
            for outcome in outcomes:
                if result.attempt_count >= config.max_attempts:
                    break  # speculative overshoot: discard deterministically
                if self._fold(result, outcome, push):
                    return result
            metrics.gauge("frontier_peak").max(len(frontier))
        result.duplicate_traces = self.db.duplicate_traces
        return result

    def _fold(self, result: ExplorationResult, outcome: AttemptOutcome, push) -> bool:
        """Merge one outcome into the running result; True when done."""
        record = AttemptRecord(
            index=result.attempt_count,
            base_seed=outcome.seed,
            n_constraints=len(outcome.constraints),
            outcome=outcome.outcome,
            steps=outcome.steps,
            detail=outcome.detail,
        )
        result.attempts.append(record)
        observe_attempt_record(self.obs.metrics, record)
        self._folded_attempts += 1
        self._folded_steps += outcome.steps
        if outcome.spans:
            # All spans of one outcome were recorded by one process.
            self.obs.tracer.absorb(
                outcome.spans, self._lane_for(outcome.spans[0].pid)
            )
        self._remember(outcome)
        if outcome.matched:
            result.success = True
            result.winning_constraints = outcome.constraints
            result.winning_seed = outcome.seed
            observe_plan_match(
                self.obs.metrics, self._plan_sets, outcome.constraints
            )
            # Attempts are pure, so re-running the winner in-process
            # reconstructs the full winning trace the workers did not ship.
            with self.obs.tracer.span(
                "rematerialize-winner", category="replay", seed=outcome.seed
            ):
                trace, matched = run_attempt(
                    self.context, outcome.constraints, outcome.seed
                )
            assert matched, "winning attempt must re-match deterministically"
            result.winning_trace = trace
            result.duplicate_traces = self.db.duplicate_traces
            if self.cache is not None:
                result.cache_hits = self.cache.hits
            return True
        if self.db.record_fingerprint(outcome.fingerprint):
            self.obs.metrics.counter("candidates_mined").inc(
                len(outcome.candidates)
            )
            for candidate in outcome.candidates:
                push(candidate, outcome.seed)
        if self.cache is not None:
            result.cache_hits = self.cache.hits
        return False

    # -- feedback-free (ablation) search ----------------------------------

    def _explore_random(self, supervisor: Supervisor) -> ExplorationResult:
        result = ExplorationResult(success=False)
        self._partial = result
        config = self.config
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        next_index = 0
        while next_index < config.max_attempts:
            size = min(self.batch_size, config.max_attempts - next_index)
            batch = []
            for offset in range(size):
                seed = config.base_seed + next_index + offset
                batch.append((_EMPTY, seed, self._cached(_EMPTY, seed), None))
            next_index += size
            metrics.counter("batches").inc()
            with tracer.span(
                "batch", category="explore", size=len(batch),
                first_attempt=result.attempt_count,
            ):
                outcomes = self._evaluate_batch(supervisor, batch)
            for outcome in outcomes:
                if self._fold(result, outcome, lambda *_: None):
                    return result
        return result
