"""Shared read-only session segments for warm replay workers.

The parallel engine serializes its :class:`~repro.core.parallel.
AttemptContext` (program, sketch log, matching policy) exactly once per
session and publishes the bytes as an immutable segment.  Workers attach
by name in their initializer and unpickle once; after that a task is
just ``(constraints, seed, ...)`` — no per-batch pickling of the
program or log ever crosses the pipe again.

``multiprocessing.shared_memory`` backs the segment where available so
fork-spawned workers map the payload instead of copying it through the
executor's argument pipe.  Where it is not (or creation fails — e.g.
``/dev/shm`` is unwritable), the token simply carries the raw bytes:
same semantics, one extra copy.  Segments are deduplicated process-wide
by content digest, so a supervisor rebuilding its pool after a worker
death — or a benchmark running several arms over one recording —
republishes nothing.
"""

from __future__ import annotations

import atexit
import hashlib
from typing import Dict, Tuple

#: ("shm", name, size) or ("bytes", payload) — picklable, pipe-friendly.
SegmentToken = Tuple


class SessionSegment:
    """One published payload; owns the backing shared-memory block."""

    def __init__(self, payload: bytes) -> None:
        self.size = len(payload)
        self.digest = hashlib.sha1(payload).hexdigest()
        self._shm = None
        self.token: SegmentToken = ("bytes", payload)
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=max(1, self.size))
            shm.buf[: self.size] = payload
            self._shm = shm
            self.token = ("shm", shm.name, self.size)
        except Exception:
            self._shm = None  # bytes fallback already in place

    def close(self) -> None:
        """Release and unlink the backing block (publisher-side only)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass


#: Everything this process has published, by content digest.
_PUBLISHED: Dict[str, SessionSegment] = {}


def publish(payload: bytes) -> SegmentToken:
    """Publish (or reuse) a segment for ``payload``; returns its token."""
    digest = hashlib.sha1(payload).hexdigest()
    segment = _PUBLISHED.get(digest)
    if segment is None:
        segment = SessionSegment(payload)
        _PUBLISHED[digest] = segment
    return segment.token


def attach(token: SegmentToken) -> bytes:
    """Materialize a token's payload (worker-side)."""
    if token[0] == "bytes":
        return token[1]
    _, name, size = token
    shm = _attach_untracked(name)
    try:
        return bytes(shm.buf[:size])
    finally:
        shm.close()


def _attach_untracked(name: str):
    """Attach to a segment without claiming ownership of it.

    Plain attachment registers the segment with the resource tracker
    (bpo-39959); workers share the publisher's tracker process, so a
    worker's claim would collide with the publisher's and the segment
    would be unlinked (or double-unregistered) behind its back.
    Ownership stays with the publisher: suppress the attach-side
    registration — natively where ``track=False`` exists (3.13+), by
    masking ``resource_tracker.register`` during the attach elsewhere.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def release(token: SegmentToken) -> None:
    """Unlink one published segment early (otherwise atexit handles it)."""
    if token[0] != "shm":
        return
    for digest, segment in list(_PUBLISHED.items()):
        if segment.token == token:
            segment.close()
            del _PUBLISHED[digest]


def _release_all() -> None:
    for segment in _PUBLISHED.values():
        segment.close()
    _PUBLISHED.clear()


atexit.register(_release_all)
