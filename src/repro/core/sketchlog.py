"""Sketch logs: the on-disk artifact of a production run.

A :class:`SketchLog` is the ordered list of :class:`~repro.core.sketches.
SketchEntry` plus enough metadata to size it.  Serialization is a compact
binary framing (interned keys, fixed-width entries) with a JSON alternative
for debugging; both round-trip exactly.

Epoch-windowed recording (``pres record --epoch-steps``) marks the log
with *epoch structure*: the entry indices where each retained epoch
begins plus how many entries/epochs deterministic truncation dropped off
the front.  Epoch-marked logs serialize as format version 2 (an extra
epoch block between the header and the key table); logs without epoch
structure keep emitting the byte-identical version-1 framing, and v1
artifacts load as a single untruncated epoch.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.sketches import SketchEntry, SketchKind, visible_kinds
from repro.errors import SketchFormatError, SimUsageError
from repro.sim.ops import OpKind

_MAGIC = b"PRES"
_CMAGIC = b"PREZ"
_VERSION = 1
#: version emitted when the log carries epoch structure; v1 readers of
#: old artifacts are unaffected because plain logs still write v1.
_EPOCH_VERSION = 2
_ENTRY = struct.Struct("<IBH")  # tid, kind code, key index
_EPOCH_HEAD = struct.Struct("<III")  # n epoch starts, truncated entries/epochs
_EPOCH_START = struct.Struct("<I")

_KIND_CODES = {kind: i for i, kind in enumerate(OpKind)}
_CODE_KINDS = {i: kind for kind, i in _KIND_CODES.items()}


def _key_to_token(key: Any) -> str:
    """Stable string form of an entry key for the intern table."""
    return json.dumps(_jsonable(key), sort_keys=True, separators=(",", ":"))


def _jsonable(key: Any) -> Any:
    if isinstance(key, tuple):
        return {"__t": [_jsonable(k) for k in key]}
    if isinstance(key, dict):
        # Dicts are pair-encoded so a payload dict that happens to carry a
        # "__t"/"__d" key can never be mistaken for a tag on the way back.
        return {"__d": [[_jsonable(k), _jsonable(v)] for k, v in key.items()]}
    if isinstance(key, list):
        return [_jsonable(k) for k in key]
    return key


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__t"}:
        return tuple(_from_jsonable(v) for v in value["__t"])
    if isinstance(value, dict) and set(value) == {"__d"}:
        return {_from_jsonable(k): _from_jsonable(v) for k, v in value["__d"]}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


def _token_to_key(token: str) -> Any:
    return _from_jsonable(json.loads(token))


@dataclass
class SketchLog:
    """The recorded sketch of one production run."""

    sketch: SketchKind
    entries: List[SketchEntry] = field(default_factory=list)
    #: entry indices (into ``entries``) where each retained epoch begins;
    #: ``[]`` means the whole log is one epoch.  When set, the first
    #: element is always 0 and the indices are strictly increasing.
    epoch_starts: List[int] = field(default_factory=list)
    #: sketch entries dropped off the front by the recording window.
    truncated_entries: int = 0
    #: whole epochs dropped off the front by the recording window.
    truncated_epochs: int = 0
    #: runtime-only replay-base tag (never serialized): epoch-suffix logs
    #: carry the identity of the snapshot they replay from, folded into
    #: :meth:`fingerprint` so attempt-cache/store keys cannot collide
    #: with a full-history log that happens to share the same entries.
    base_tag: str = field(default="", repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SketchEntry]:
        return iter(self.entries)

    def append(self, entry: SketchEntry) -> None:
        self.entries.append(entry)

    # -- epoch structure --------------------------------------------------

    def epoch_marked(self) -> bool:
        """Whether this log carries non-trivial epoch structure.

        A log whose structure is trivial (no truncation, at most one
        epoch starting at 0) serializes as plain version-1 bytes so
        pre-epoch readers and byte-level fixtures are unaffected.
        """
        if self.truncated_entries > 0 or self.truncated_epochs > 0:
            return True
        return bool(self.epoch_starts) and list(self.epoch_starts) != [0]

    @property
    def epoch_count(self) -> int:
        """Number of retained epochs (a plain log is one epoch)."""
        return max(1, len(self.epoch_starts))

    def epoch_spans(self) -> List[Tuple[int, int]]:
        """Retained epochs as ``(start, end)`` entry-index pairs."""
        starts = list(self.epoch_starts) or [0]
        ends = starts[1:] + [len(self.entries)]
        return list(zip(starts, ends))

    def _check_epoch_structure(self, n_entries: int) -> None:
        starts = list(self.epoch_starts)
        if not starts:
            return
        if starts[0] != 0 or starts != sorted(set(starts)) or starts[-1] > n_entries:
            raise SketchFormatError(
                f"corrupt epoch block: starts {starts!r} for {n_entries} entries"
            )

    # -- sizing ----------------------------------------------------------

    def size_bytes(self) -> int:
        """Size of the binary serialization (the paper's log-size metric)."""
        return len(self.to_bytes())

    def entries_per_kilo_events(self, total_events: int) -> float:
        """Entries logged per 1000 executed operations."""
        if total_events <= 0:
            return 0.0
        return 1000.0 * len(self.entries) / total_events

    # -- binary serialization ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compact framing: header, interned key table, fixed entries.

        Epoch-marked logs (see :meth:`epoch_marked`) emit version 2 with
        an epoch block between the header and the key table; plain logs
        emit the byte-identical version-1 framing.
        """
        tokens: Dict[str, int] = {}
        packed_entries = []
        for entry in self.entries:
            token = _key_to_token(entry.key)
            index = tokens.setdefault(token, len(tokens))
            if index > 0xFFFF:
                raise SketchFormatError("too many distinct keys for 16-bit intern table")
            packed_entries.append(
                _ENTRY.pack(entry.tid, _KIND_CODES[entry.kind], index)
            )
        table = json.dumps(list(tokens)).encode("utf-8")
        version = _EPOCH_VERSION if self.epoch_marked() else _VERSION
        header = _MAGIC + struct.pack(
            "<BBII", version, _SKETCH_CODES[self.sketch], len(table), len(packed_entries)
        )
        epoch_block = b""
        if version == _EPOCH_VERSION:
            self._check_epoch_structure(len(self.entries))
            starts = list(self.epoch_starts) or [0]
            epoch_block = _EPOCH_HEAD.pack(
                len(starts), self.truncated_entries, self.truncated_epochs
            ) + b"".join(_EPOCH_START.pack(s) for s in starts)
        return header + epoch_block + table + b"".join(packed_entries)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SketchLog":
        if data[:4] != _MAGIC:
            raise SketchFormatError("bad magic; not a PRES sketch log")
        try:
            version, sketch_code, table_len, n_entries = struct.unpack_from(
                "<BBII", data, 4
            )
        except struct.error as exc:
            raise SketchFormatError(f"truncated header: {exc}") from None
        if version not in (_VERSION, _EPOCH_VERSION):
            raise SketchFormatError(f"unsupported sketch log version {version}")
        offset = 4 + struct.calcsize("<BBII")
        epoch_starts: List[int] = []
        truncated_entries = 0
        truncated_epochs = 0
        if version == _EPOCH_VERSION:
            try:
                n_starts, truncated_entries, truncated_epochs = _EPOCH_HEAD.unpack_from(
                    data, offset
                )
                offset += _EPOCH_HEAD.size
                for _ in range(n_starts):
                    epoch_starts.append(_EPOCH_START.unpack_from(data, offset)[0])
                    offset += _EPOCH_START.size
            except struct.error as exc:
                raise SketchFormatError(f"truncated epoch block: {exc}") from None
        try:
            tokens = json.loads(data[offset:offset + table_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SketchFormatError(f"corrupt key table: {exc}") from None
        keys = [_token_to_key(t) for t in tokens]
        offset += table_len
        expected = offset + n_entries * _ENTRY.size
        if len(data) < expected:
            raise SketchFormatError(
                f"truncated entries: have {len(data)} bytes, need {expected}"
            )
        if len(data) > expected:
            # Distinct from truncation so `pres doctor` can tell a short
            # copy apart from tail corruption / concatenation damage.
            raise SketchFormatError(
                f"{len(data) - expected} byte(s) of trailing garbage after "
                f"the declared {n_entries} entries"
            )
        try:
            sketch = _CODE_SKETCHES[sketch_code]
        except KeyError:
            raise SketchFormatError(f"unknown sketch code {sketch_code}") from None
        log = cls(
            sketch=sketch,
            epoch_starts=epoch_starts,
            truncated_entries=truncated_entries,
            truncated_epochs=truncated_epochs,
        )
        for i in range(n_entries):
            tid, kind_code, key_index = _ENTRY.unpack_from(data, offset + i * _ENTRY.size)
            try:
                key = keys[key_index]
            except IndexError:
                raise SketchFormatError(f"entry {i} references unknown key {key_index}") from None
            try:
                kind = _CODE_KINDS[kind_code]
            except KeyError:
                raise SketchFormatError(f"entry {i} has unknown op kind {kind_code}") from None
            log.append(SketchEntry(tid=tid, kind=kind, key=key))
        if version == _EPOCH_VERSION:
            log._check_epoch_structure(n_entries)
        return log

    # -- compressed serialization ----------------------------------------------

    def to_bytes_compressed(self, level: int = 6) -> bytes:
        """Deflate-compressed binary framing.

        Sketch entries are extremely repetitive (the same handful of
        threads touching the same handful of objects), so generic
        compression recovers most of the redundancy the fixed-width
        framing leaves behind — the same trick production recorders use
        before shipping logs off-box.
        """
        return _CMAGIC + zlib.compress(self.to_bytes(), level)

    @classmethod
    def from_bytes_compressed(cls, data: bytes) -> "SketchLog":
        if len(data) < 4:
            # The slice below would be IndexError-safe, but a too-short
            # input deserves its own diagnosis rather than "bad magic".
            raise SketchFormatError(
                f"compressed sketch log too short: {len(data)} byte(s), "
                "need at least a 4-byte magic"
            )
        if data[:4] != _CMAGIC:
            raise SketchFormatError("bad magic; not a compressed PRES sketch log")
        try:
            raw = zlib.decompress(data[4:])
        except zlib.error as exc:
            raise SketchFormatError(f"corrupt compressed payload: {exc}") from None
        return cls.from_bytes(raw)

    def compressed_size_bytes(self) -> int:
        """Size of the compressed serialization."""
        return len(self.to_bytes_compressed())

    # -- JSON serialization ---------------------------------------------------

    def to_json(self) -> str:
        payload: Dict[str, Any] = {
            "sketch": self.sketch.value,
            "entries": [
                [e.tid, e.kind.value, _jsonable(e.key)] for e in self.entries
            ],
        }
        if self.epoch_marked():
            self._check_epoch_structure(len(self.entries))
            payload["epochs"] = {
                "starts": list(self.epoch_starts) or [0],
                "truncated_entries": self.truncated_entries,
                "truncated_epochs": self.truncated_epochs,
            }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "SketchLog":
        try:
            payload = json.loads(text)
            epochs = payload.get("epochs") or {}
            log = cls(
                sketch=SketchKind(payload["sketch"]),
                epoch_starts=[int(s) for s in epochs.get("starts", [])],
                truncated_entries=int(epochs.get("truncated_entries", 0)),
                truncated_epochs=int(epochs.get("truncated_epochs", 0)),
            )
            entries = payload["entries"]
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            raise SketchFormatError(f"corrupt JSON sketch log: {exc}") from None
        for number, record in enumerate(entries, start=1):
            try:
                log.append(entry_from_record(record))
            except SketchFormatError as exc:
                raise SketchFormatError(
                    f"corrupt JSON sketch log: entry {number}: {exc}"
                ) from None
        log._check_epoch_structure(len(log.entries))
        return log

    def fingerprint(self) -> str:
        """Stable content digest (memoized until entries are appended).

        Used as the log half of attempt-cache keys: two logs with equal
        fingerprints constrain replay identically.  ``hashlib`` rather
        than ``hash()`` so the digest is comparable across processes.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and cached[0] == len(self.entries):
            return cached[1]
        digest = hashlib.sha1(self.sketch.value.encode("utf-8"))
        if self.base_tag:
            # Epoch-suffix logs replay from a snapshot, not from step 0;
            # the snapshot identity is part of what the log constrains.
            digest.update(f"base:{self.base_tag}".encode("utf-8"))
        for entry in self.entries:
            digest.update(
                f"{entry.tid}:{entry.kind.value}:{_key_to_token(entry.key)}".encode("utf-8")
            )
        value = digest.hexdigest()
        self._fingerprint_cache = (len(self.entries), value)
        return value

    def describe(self, limit: int = 10) -> str:
        lines = [f"{self.sketch.value} sketch, {len(self.entries)} entries"]
        lines.extend(e.describe() for e in self.entries[:limit])
        if len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more")
        return "\n".join(lines)


_SKETCH_CODES = {kind: i for i, kind in enumerate(SketchKind)}
_CODE_SKETCHES = {i: kind for kind, i in _SKETCH_CODES.items()}


# -- journal records ---------------------------------------------------------


def entry_record(entry: SketchEntry) -> list:
    """One sketch entry as a journal-record payload ``[tid, kind, key]``."""
    return [entry.tid, entry.kind.value, _jsonable(entry.key)]


def entry_from_record(record: Any) -> SketchEntry:
    """Decode :func:`entry_record`; raises :class:`SketchFormatError`."""
    try:
        tid, kind, key = record
        return SketchEntry(tid=int(tid), kind=OpKind(kind), key=_from_jsonable(key))
    except (KeyError, ValueError, TypeError) as exc:
        raise SketchFormatError(f"bad sketch entry {record!r}: {exc}") from None


# -- degradation -------------------------------------------------------------


def derive_coarser(log: SketchLog, target: SketchKind) -> SketchLog:
    """Project a sketch log down to a coarser mechanism.

    Because the mechanisms are cumulative, the entries a coarser sketch
    *would have recorded* are exactly the subset of a finer log whose op
    kinds the coarser mechanism watches.  This is the degradation ladder's
    workhorse: a salvaged RW prefix still yields a complete-as-recorded
    SYNC prefix to replay against.
    """
    if target.level > log.sketch.level:
        raise SimUsageError(
            f"cannot derive a {target.value} sketch from a coarser "
            f"{log.sketch.value} log"
        )
    if target is log.sketch:
        return log
    # Memoized per source log: the degradation ladder projects the same
    # salvaged log once per rung, and benchmark reruns hit it repeatedly.
    # Keyed by entry count so a log appended to after a projection can
    # never serve a stale result.
    cache = getattr(log, "_coarser_cache", None)
    if cache is None:
        cache = log._coarser_cache = {}
    key = (target, len(log.entries))
    cached = cache.get(key)
    if cached is not None:
        return cached
    keep = visible_kinds(target)
    derived = SketchLog(sketch=target)
    starts = set(log.epoch_starts)
    projected_starts: List[int] = []
    for index, entry in enumerate(log.entries):
        if index in starts:
            projected_starts.append(len(derived.entries))
        if entry.kind in keep:
            derived.append(entry)
    if log.epoch_marked():
        # Epoch boundaries are positions, not entries: each retained
        # boundary projects to "how many kept entries precede it", and
        # epochs emptied by the projection collapse into their neighbour.
        # The truncated-entry count stays at the source sketch's
        # granularity (an upper bound for the coarser view); truncated
        # epochs are exact either way.
        derived.epoch_starts = sorted(set(projected_starts)) or [0]
        derived.truncated_entries = log.truncated_entries
        derived.truncated_epochs = log.truncated_epochs
        derived.base_tag = log.base_tag
    cache[key] = derived
    return derived
