"""Sketch logs: the on-disk artifact of a production run.

A :class:`SketchLog` is the ordered list of :class:`~repro.core.sketches.
SketchEntry` plus enough metadata to size it.  Serialization is a compact
binary framing (interned keys, fixed-width entries) with a JSON alternative
for debugging; both round-trip exactly.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.sketches import SketchEntry, SketchKind, visible_kinds
from repro.errors import SketchFormatError, SimUsageError
from repro.sim.ops import OpKind

_MAGIC = b"PRES"
_CMAGIC = b"PREZ"
_VERSION = 1
_ENTRY = struct.Struct("<IBH")  # tid, kind code, key index

_KIND_CODES = {kind: i for i, kind in enumerate(OpKind)}
_CODE_KINDS = {i: kind for kind, i in _KIND_CODES.items()}


def _key_to_token(key: Any) -> str:
    """Stable string form of an entry key for the intern table."""
    return json.dumps(_jsonable(key), sort_keys=True, separators=(",", ":"))


def _jsonable(key: Any) -> Any:
    if isinstance(key, tuple):
        return {"__t": [_jsonable(k) for k in key]}
    if isinstance(key, dict):
        # Dicts are pair-encoded so a payload dict that happens to carry a
        # "__t"/"__d" key can never be mistaken for a tag on the way back.
        return {"__d": [[_jsonable(k), _jsonable(v)] for k, v in key.items()]}
    if isinstance(key, list):
        return [_jsonable(k) for k in key]
    return key


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__t"}:
        return tuple(_from_jsonable(v) for v in value["__t"])
    if isinstance(value, dict) and set(value) == {"__d"}:
        return {_from_jsonable(k): _from_jsonable(v) for k, v in value["__d"]}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


def _token_to_key(token: str) -> Any:
    return _from_jsonable(json.loads(token))


@dataclass
class SketchLog:
    """The recorded sketch of one production run."""

    sketch: SketchKind
    entries: List[SketchEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SketchEntry]:
        return iter(self.entries)

    def append(self, entry: SketchEntry) -> None:
        self.entries.append(entry)

    # -- sizing ----------------------------------------------------------

    def size_bytes(self) -> int:
        """Size of the binary serialization (the paper's log-size metric)."""
        return len(self.to_bytes())

    def entries_per_kilo_events(self, total_events: int) -> float:
        """Entries logged per 1000 executed operations."""
        if total_events <= 0:
            return 0.0
        return 1000.0 * len(self.entries) / total_events

    # -- binary serialization ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compact framing: header, interned key table, fixed entries."""
        tokens: Dict[str, int] = {}
        packed_entries = []
        for entry in self.entries:
            token = _key_to_token(entry.key)
            index = tokens.setdefault(token, len(tokens))
            if index > 0xFFFF:
                raise SketchFormatError("too many distinct keys for 16-bit intern table")
            packed_entries.append(
                _ENTRY.pack(entry.tid, _KIND_CODES[entry.kind], index)
            )
        table = json.dumps(list(tokens)).encode("utf-8")
        header = _MAGIC + struct.pack(
            "<BBII", _VERSION, _SKETCH_CODES[self.sketch], len(table), len(packed_entries)
        )
        return header + table + b"".join(packed_entries)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SketchLog":
        if data[:4] != _MAGIC:
            raise SketchFormatError("bad magic; not a PRES sketch log")
        try:
            version, sketch_code, table_len, n_entries = struct.unpack_from(
                "<BBII", data, 4
            )
        except struct.error as exc:
            raise SketchFormatError(f"truncated header: {exc}") from None
        if version != _VERSION:
            raise SketchFormatError(f"unsupported sketch log version {version}")
        offset = 4 + struct.calcsize("<BBII")
        try:
            tokens = json.loads(data[offset:offset + table_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SketchFormatError(f"corrupt key table: {exc}") from None
        keys = [_token_to_key(t) for t in tokens]
        offset += table_len
        expected = offset + n_entries * _ENTRY.size
        if len(data) < expected:
            raise SketchFormatError(
                f"truncated entries: have {len(data)} bytes, need {expected}"
            )
        log = cls(sketch=_CODE_SKETCHES[sketch_code])
        for i in range(n_entries):
            tid, kind_code, key_index = _ENTRY.unpack_from(data, offset + i * _ENTRY.size)
            try:
                key = keys[key_index]
            except IndexError:
                raise SketchFormatError(f"entry {i} references unknown key {key_index}") from None
            log.append(SketchEntry(tid=tid, kind=_CODE_KINDS[kind_code], key=key))
        return log

    # -- compressed serialization ----------------------------------------------

    def to_bytes_compressed(self, level: int = 6) -> bytes:
        """Deflate-compressed binary framing.

        Sketch entries are extremely repetitive (the same handful of
        threads touching the same handful of objects), so generic
        compression recovers most of the redundancy the fixed-width
        framing leaves behind — the same trick production recorders use
        before shipping logs off-box.
        """
        return _CMAGIC + zlib.compress(self.to_bytes(), level)

    @classmethod
    def from_bytes_compressed(cls, data: bytes) -> "SketchLog":
        if data[:4] != _CMAGIC:
            raise SketchFormatError("bad magic; not a compressed PRES sketch log")
        try:
            raw = zlib.decompress(data[4:])
        except zlib.error as exc:
            raise SketchFormatError(f"corrupt compressed payload: {exc}") from None
        return cls.from_bytes(raw)

    def compressed_size_bytes(self) -> int:
        """Size of the compressed serialization."""
        return len(self.to_bytes_compressed())

    # -- JSON serialization ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "sketch": self.sketch.value,
                "entries": [
                    [e.tid, e.kind.value, _jsonable(e.key)] for e in self.entries
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "SketchLog":
        try:
            payload = json.loads(text)
            log = cls(sketch=SketchKind(payload["sketch"]))
            entries = payload["entries"]
        except (KeyError, ValueError, TypeError) as exc:
            raise SketchFormatError(f"corrupt JSON sketch log: {exc}") from None
        for number, record in enumerate(entries, start=1):
            try:
                log.append(entry_from_record(record))
            except SketchFormatError as exc:
                raise SketchFormatError(
                    f"corrupt JSON sketch log: entry {number}: {exc}"
                ) from None
        return log

    def fingerprint(self) -> str:
        """Stable content digest (memoized until entries are appended).

        Used as the log half of attempt-cache keys: two logs with equal
        fingerprints constrain replay identically.  ``hashlib`` rather
        than ``hash()`` so the digest is comparable across processes.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and cached[0] == len(self.entries):
            return cached[1]
        digest = hashlib.sha1(self.sketch.value.encode("utf-8"))
        for entry in self.entries:
            digest.update(
                f"{entry.tid}:{entry.kind.value}:{_key_to_token(entry.key)}".encode("utf-8")
            )
        value = digest.hexdigest()
        self._fingerprint_cache = (len(self.entries), value)
        return value

    def describe(self, limit: int = 10) -> str:
        lines = [f"{self.sketch.value} sketch, {len(self.entries)} entries"]
        lines.extend(e.describe() for e in self.entries[:limit])
        if len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more")
        return "\n".join(lines)


_SKETCH_CODES = {kind: i for i, kind in enumerate(SketchKind)}
_CODE_SKETCHES = {i: kind for kind, i in _SKETCH_CODES.items()}


# -- journal records ---------------------------------------------------------


def entry_record(entry: SketchEntry) -> list:
    """One sketch entry as a journal-record payload ``[tid, kind, key]``."""
    return [entry.tid, entry.kind.value, _jsonable(entry.key)]


def entry_from_record(record: Any) -> SketchEntry:
    """Decode :func:`entry_record`; raises :class:`SketchFormatError`."""
    try:
        tid, kind, key = record
        return SketchEntry(tid=int(tid), kind=OpKind(kind), key=_from_jsonable(key))
    except (KeyError, ValueError, TypeError) as exc:
        raise SketchFormatError(f"bad sketch entry {record!r}: {exc}") from None


# -- degradation -------------------------------------------------------------


def derive_coarser(log: SketchLog, target: SketchKind) -> SketchLog:
    """Project a sketch log down to a coarser mechanism.

    Because the mechanisms are cumulative, the entries a coarser sketch
    *would have recorded* are exactly the subset of a finer log whose op
    kinds the coarser mechanism watches.  This is the degradation ladder's
    workhorse: a salvaged RW prefix still yields a complete-as-recorded
    SYNC prefix to replay against.
    """
    if target.level > log.sketch.level:
        raise SimUsageError(
            f"cannot derive a {target.value} sketch from a coarser "
            f"{log.sketch.value} log"
        )
    if target is log.sketch:
        return log
    # Memoized per source log: the degradation ladder projects the same
    # salvaged log once per rung, and benchmark reruns hit it repeatedly.
    # Keyed by entry count so a log appended to after a projection can
    # never serve a stale result.
    cache = getattr(log, "_coarser_cache", None)
    if cache is None:
        cache = log._coarser_cache = {}
    key = (target, len(log.entries))
    cached = cache.get(key)
    if cached is not None:
        return cached
    keep = visible_kinds(target)
    derived = SketchLog(sketch=target)
    for entry in log.entries:
        if entry.kind in keep:
            derived.append(entry)
    cache[key] = derived
    return derived
