"""Schedule-prefix memoization: resume sibling attempts mid-simulation.

Feedback exploration is a tree: every mined candidate is its parent's
constraint set plus one flip, replayed under the same base seed.  The
flip's gate provably cannot alter anything before the candidate's
*safe prefix* (see :class:`~repro.core.feedback._PrefixIndex`), so the
child re-simulates the parent's opening steps — same picks, same RNG
draws, same events — before the search actually begins.  This module
skips that shared prefix: live attempts opportunistically snapshot
their simulator state as they pass a ladder of planned depths
(:func:`capture_hooks`), a :class:`PrefixTree` keeps the snapshots
keyed by ``(constraint set, seed, depth)``, and :func:`resume_machine`
materializes a child machine fast-forwarded to the deepest available
snapshot inside its safe prefix.

Design constraints, in order:

* **Exactness.**  A resumed attempt must produce the byte-identical
  trace of a cold run.  Snapshots deep-copy all mutable machine state
  and rebuild generators by feed replay (:meth:`Machine.capture_state`);
  the scheduler fast-forward carries the RNG, cursor, and occurrence
  counts (:meth:`PIRScheduler.capture_resume_state`).  Any surprise in
  the resume machinery falls back to a cold run — attempts are pure, so
  the result is the same either way, just slower.
* **Jobs-invariance.**  Capturing is pure observation: a deep copy of
  mid-run state cannot change the attempt's outcome, so whether a
  snapshot was taken (or which worker holds it) is invisible in
  reports.  Resume *plans* are issued engine-side at batch assembly
  from candidate metadata alone — a function of the exploration
  schedule, never of worker state — so ``parallel.prefix_hits`` is
  identical for every ``jobs`` value; a worker missing the snapshot
  simply runs the attempt cold.
* **Bounded memory and overhead.**  Capture depths double
  (48, 96, 192, ...), so a live attempt pays O(log steps) snapshots,
  and the tree holds at most ``max_nodes`` snapshots, evicting
  least-recently-used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.core.constraints import ConstraintSet, OrderConstraint
from repro.core.pir import PIRScheduler
from repro.sim.machine import Machine

#: Snapshots below this depth are not worth the restore cost.
MIN_RESUME_DEPTH = 24
#: First rung of the snapshot ladder; subsequent rungs double.
BASE_DEPTH = 48
#: The full capture ladder, covering any plausible attempt length.
CAPTURE_DEPTHS: Tuple[int, ...] = tuple(BASE_DEPTH * (1 << k) for k in range(12))


def planned_depths(parent_steps: int) -> Tuple[int, ...]:
    """The snapshot-ladder depths inside a parent of ``parent_steps``.

    A pure function of the step count, so every process (parent engine,
    any worker) plans identical depths for the same parent — which is
    what lets hit accounting happen engine-side while snapshots live
    wherever the parent happened to run.  All depths are strictly below
    ``parent_steps``: the parent's final step may have failed or
    diverged, and snapshots must be clean mid-run states.
    """
    return tuple(d for d in CAPTURE_DEPTHS if d < parent_steps)


def resume_depth(parent_steps: int, safe_prefix: int) -> int:
    """Deepest ladder depth usable for a child with this safe prefix.

    0 means "run cold" — no planned depth fits inside the prefix.
    """
    best = 0
    for depth in planned_depths(parent_steps):
        if depth <= safe_prefix:
            best = depth
    return best


@dataclass(frozen=True)
class ResumePlan:
    """A worker-portable instruction: where a child attempt may resume.

    Built engine-side at batch assembly (so hits are counted at a
    schedule-deterministic point); the executing process derives the
    parent as ``constraints - {flip}`` and looks snapshots up in its
    local :class:`PrefixTree`, running cold when none is present.
    """

    flip: OrderConstraint
    depth: int
    parent_steps: int


class PrefixTree:
    """Process-local LRU store of mid-attempt simulator snapshots.

    ``max_nodes`` bounds snapshots, not attempts: each attempt captures
    O(log steps) ladder depths, so the default holds snapshots for
    roughly the last ~80 attempts — enough that siblings scattered
    across the best-first frontier still find their parent warm.
    """

    def __init__(self, max_nodes: int = 256) -> None:
        self.max_nodes = max_nodes
        self._nodes: Dict[Tuple, Tuple[Any, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.captures = 0
        self.aliases = 0
        self.resumes = 0
        self.fallbacks = 0

    def get(self, key: Tuple) -> Optional[Tuple[Any, Any]]:
        node = self._nodes.get(key)
        if node is not None:
            self.hits += 1
            del self._nodes[key]  # LRU refresh (dict is insertion-ordered)
            self._nodes[key] = node
        else:
            self.misses += 1
        return node

    def put(self, key: Tuple, snapshot: Tuple[Any, Any]) -> None:
        if key in self._nodes:
            del self._nodes[key]
        self._nodes[key] = snapshot
        self.captures += 1
        while len(self._nodes) > self.max_nodes:
            oldest = next(iter(self._nodes))
            del self._nodes[oldest]

    def alias(self, src: Tuple, dst: Tuple) -> None:
        """Share ``src``'s snapshot under ``dst`` too (no copy is made).

        Sound whenever the two keys provably name identical states —
        snapshots are immutable once stored (restores copy out of them),
        so sharing is free.
        """
        node = self._nodes.get(src)
        if node is None:
            return
        if dst in self._nodes:
            del self._nodes[dst]
        self._nodes[dst] = node
        self.aliases += 1
        while len(self._nodes) > self.max_nodes:
            del self._nodes[next(iter(self._nodes))]

    def __len__(self) -> int:
        return len(self._nodes)


def capture_hooks(
    constraints: ConstraintSet,
    seed: int,
    scheduler: PIRScheduler,
    tree: PrefixTree,
) -> Tuple[Iterable[int], Callable[[Machine], None]]:
    """``(snapshot_depths, on_snapshot)`` for one live attempt.

    Passed to :meth:`Machine.run`, they snapshot the attempt's state as
    it passes each ladder depth — observation only, so the attempt's
    outcome is untouched.  Snapshots that cannot be taken cleanly (the
    machine already failed or diverged at the depth) are skipped.
    """

    def on_snapshot(machine: Machine) -> None:
        try:
            try:
                # pickle blobs: cheap to capture, each restore unpickles
                # its own fresh copy
                snapshot = (
                    machine.capture_state(serialize=True),
                    scheduler.capture_resume_state(serialize=True),
                )
            except Exception:
                # unpicklable state (e.g. closure thread bodies): the
                # deep-copy variant is slower but always works
                snapshot = (
                    machine.capture_state(),
                    scheduler.capture_resume_state(),
                )
            tree.put((constraints, seed, len(machine.schedule)), snapshot)
        except Exception:
            pass  # unclean state at this depth; deeper rungs may still work

    return CAPTURE_DEPTHS, on_snapshot


def resume_machine(
    ctx: Any,
    constraints: ConstraintSet,
    seed: int,
    plan: ResumePlan,
    tree: PrefixTree,
) -> Optional[Tuple[Machine, PIRScheduler]]:
    """A machine fast-forwarded to the deepest warm snapshot, or None.

    ``ctx`` is an :class:`~repro.core.parallel.AttemptContext` (duck-
    typed to avoid the import cycle).  None means "run this attempt
    cold" — no snapshot of the parent is warm in this process, or the
    resume machinery failed; purity of attempts makes the fallback
    result identical.  Probes the ladder downward from the plan's depth
    so a partially-captured parent (e.g. one that itself resumed) still
    serves its shallower snapshots.
    """
    try:
        parent: ConstraintSet = constraints - {plan.flip}
        if len(parent) != len(constraints) - 1:
            return None
        snapshot = None
        found = 0
        for depth in reversed(planned_depths(plan.parent_steps)):
            if depth > plan.depth:
                continue
            snapshot = tree._nodes.get((parent, seed, depth))
            if snapshot is not None:
                found = depth
                tree.get((parent, seed, depth))  # count + LRU refresh
                break
        if snapshot is None:
            tree.misses += 1
            return None
        # Alias the parent's rungs at or below the resume point under the
        # child's key: inside the safe prefix child and parent states are
        # identical, and the resumed run never revisits those depths — so
        # without the aliases a resumed lineage would starve its own
        # descendants of shallow snapshots.
        for depth in planned_depths(plan.parent_steps):
            if depth > found:
                break
            tree.alias((parent, seed, depth), (constraints, seed, depth))
        machine_state, scheduler_state = snapshot
        recorded = ctx.recorded
        scheduler = PIRScheduler(
            recorded.log,
            ctx.ordered(constraints),
            base_seed=seed,
            base_policy=ctx.base_policy,
        )
        machine = Machine(recorded.program, scheduler, recorded.config)
        machine.restore_state(machine_state)
        scheduler.restore_resume_state(scheduler_state)
        tree.resumes += 1
        return machine, scheduler
    except Exception:
        tree.fallbacks += 1
        return None
