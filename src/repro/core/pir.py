"""PIR: the Partial-Information Replay scheduler.

One replay attempt = one machine run under a :class:`PIRScheduler`, which
enforces three things at every step:

1. **Sketch order** (via :class:`SketchCursor`): the i-th sketch-visible
   event of the attempt must match the i-th recorded entry.  A thread
   whose pending op is sketch-visible but out of turn simply waits; a
   thread that is *in* turn but about to do something *different* than the
   recorded entry proves the attempt has diverged, and the attempt is
   aborted immediately (failing fast is a large chunk of PRES's replay
   efficiency).
2. **Flip constraints** (via :class:`~repro.core.constraints.
   ConstraintGate`): ordering edges injected by feedback generation.
3. **Base policy** for everything still unconstrained: a seeded RNG, so an
   attempt is a pure function of (sketch, constraints, base seed).

If no thread can be scheduled while unfinished threads remain *because of
the gates* (the machine itself had runnable threads), the attempt is stuck
— also a divergence.  Genuine program deadlocks (no machine-runnable
threads at all) are left to the machine, which records them as failures;
those are legitimate reproductions when the recorded bug *is* a deadlock.
"""

from __future__ import annotations

import copy
import enum
import pickle
import random
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.constraints import ConstraintGate, OrderConstraint
from repro.core.sketches import SketchKind, entry_for_op, visible_kinds
from repro.core.sketchlog import SketchLog
from repro.errors import ReplayDivergence
from repro.sim.machine import Machine
from repro.sim.ops import Op
from repro.sim.scheduler import Scheduler


class Gate(enum.Enum):
    """Verdict of a gate for one (thread, pending op)."""

    FREE = "free"  # not governed by this gate
    ALLOWED = "allowed"  # governed and it is this op's turn
    BLOCKED = "blocked"  # governed, not its turn yet


class SketchCursor:
    """Walks the recorded sketch log during one attempt."""

    def __init__(self, log: SketchLog) -> None:
        self.sketch: SketchKind = log.sketch
        self.entries = log.entries
        self.position = 0
        # gate() runs once per runnable thread per step; a frozenset
        # membership test beats re-deriving visibility per op.
        self._visible = visible_kinds(log.sketch)

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.entries)

    def gate(self, tid: int, op: Op) -> Gate:
        """Classify a pending op against the next expected entry.

        Raises :class:`ReplayDivergence` when the expected thread's next
        visible action provably differs from the recorded one.
        """
        if op.kind not in self._visible:
            return Gate.FREE
        if self.exhausted:
            # Past the recorded horizon (the production run ended here,
            # e.g. at its failure); the remainder is unconstrained.
            return Gate.FREE
        expected = self.entries[self.position]
        if tid != expected.tid:
            return Gate.BLOCKED
        if expected.matches_op(tid, op):
            return Gate.ALLOWED
        raise ReplayDivergence(
            f"thread {tid} is due to produce sketch entry "
            f"[{expected.describe()}] but its next visible op is "
            f"{entry_for_op(tid, op).describe()}",
            step=self.position,
        )

    def observe(self, tid: int, op: Op) -> None:
        """Advance past an executed sketch-visible op."""
        if self.exhausted or op.kind not in self._visible:
            return
        self.position += 1


class BaseChooser:
    """Policy for the genuinely unconstrained choices within an attempt."""

    def restart(self) -> None:
        raise NotImplementedError

    def choose(self, allowed: List[int]) -> int:
        raise NotImplementedError


class RandomChooser(BaseChooser):
    """Uniform random over the allowed set (the default)."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def restart(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, allowed: List[int]) -> int:
        return allowed[self._rng.randrange(len(allowed))]


class PCTChooser(BaseChooser):
    """PCT-style priorities over the allowed set.

    Used by the exploration-strategy ablation: a sketch-respecting PCT
    replayer that concentrates probability on few-ordering-point bugs
    without any feedback.
    """

    def __init__(self, seed: int, depth: int = 3, max_steps_hint: int = 1000):
        self.seed = seed
        self.depth = depth
        self.max_steps_hint = max_steps_hint
        self._rng = random.Random(seed)
        self._priorities: dict = {}
        self._change_points: set = set()
        self._steps = 0

    def restart(self) -> None:
        self._rng = random.Random(self.seed)
        self._priorities = {}
        self._steps = 0
        self._change_points = {
            self._rng.randrange(self.max_steps_hint)
            for _ in range(max(0, self.depth - 1))
        }

    def _priority_of(self, tid: int) -> float:
        if tid not in self._priorities:
            self._priorities[tid] = 1.0 + self._rng.random()
        return self._priorities[tid]

    def choose(self, allowed: List[int]) -> int:
        self._steps += 1
        winner = max(allowed, key=self._priority_of)
        if self._steps in self._change_points:
            self._priorities[winner] = self._rng.random()
            winner = max(allowed, key=self._priority_of)
        return winner


def make_chooser(policy: str, seed: int) -> BaseChooser:
    """Build a chooser by name: 'random' or 'pct'."""
    if policy == "random":
        return RandomChooser(seed)
    if policy == "pct":
        return PCTChooser(seed)
    raise ValueError(f"unknown base policy {policy!r}; expected 'random' or 'pct'")


class PIRScheduler(Scheduler):
    """Scheduler enforcing sketch + constraints, randomizing the rest."""

    def __init__(
        self,
        log: SketchLog,
        constraints: Sequence[OrderConstraint] = (),
        base_seed: int = 0,
        base_policy: str = "random",
    ) -> None:
        self.log = log
        self.constraints = list(constraints)
        self.base_seed = base_seed
        self.base_policy = base_policy
        self.cursor = SketchCursor(log)
        self.gate = ConstraintGate(self.constraints)
        self._chooser = make_chooser(base_policy, base_seed)
        self._seen_events = 0

    def on_run_start(self, machine: Machine) -> None:
        self.cursor = SketchCursor(self.log)
        self.gate = ConstraintGate(self.constraints)
        self._chooser = make_chooser(self.base_policy, self.base_seed)
        self._chooser.restart()
        self._seen_events = 0

    def pick(self, machine: Machine, runnable: Sequence[int]) -> int:
        self._catch_up(machine)
        allowed: List[int] = []
        blocked_reasons: List[str] = []
        for tid in runnable:
            op = machine.pending_op_of(tid)
            verdict = self.cursor.gate(tid, op)  # may raise ReplayDivergence
            if verdict is Gate.BLOCKED:
                blocked_reasons.append(f"T{tid} awaits its sketch turn")
                continue
            if self.gate.blocks(tid, op):
                blocked_reasons.append(f"T{tid} awaits an order constraint")
                continue
            allowed.append(tid)
        if not allowed:
            raise ReplayDivergence(
                "no schedulable thread: "
                + ("; ".join(blocked_reasons) or "all gated"),
                step=len(machine.events),
            )
        if len(allowed) == 1:
            return allowed[0]
        return self._chooser.choose(allowed)

    def _catch_up(self, machine: Machine) -> None:
        """Feed events executed since the last pick to cursor and gate."""
        events = machine.events
        while self._seen_events < len(events):
            event = events[self._seen_events]
            self._seen_events += 1
            self.gate.observe(event)
            if self.cursor.exhausted:
                continue
            expected = self.cursor.entries[self.cursor.position]
            if event.kind in self.cursor._visible:
                if event.tid != expected.tid:
                    raise ReplayDivergence(
                        f"executed visible event {event.describe()} out of "
                        f"sketch order (expected {expected.describe()})",
                        step=event.gidx,
                    )
                self.cursor.position += 1

    # -- epoch resume ------------------------------------------------------

    def prime_restored(self, machine: Machine) -> None:
        """Initialize against a machine restored from an epoch snapshot.

        The restored machine's event list already holds the production
        prefix that was *executed inside the snapshot*; this scheduler's
        log is the epoch-local suffix, so the cursor must start at 0
        while the constraint gate's occurrence counters are primed by
        observing the prefix (constraints generated from attempt traces
        count occurrences from the start of the run, prefix included).
        Call instead of ``on_run_start`` — a resumed machine skips that
        hook.
        """
        self.cursor = SketchCursor(self.log)
        self.gate = ConstraintGate(self.constraints)
        self._chooser = make_chooser(self.base_policy, self.base_seed)
        self._chooser.restart()
        for event in machine.events:
            self.gate.observe(event)
        self._seen_events = len(machine.events)

    # -- prefix resume -----------------------------------------------------

    def capture_resume_state(self, *, serialize: bool = False) -> Tuple[Any, ...]:
        """Scheduler state to pair with a :meth:`Machine.capture_state`
        snapshot taken at the same step.

        Everything here is constraint-independent (cursor position,
        executed-occurrence counts, RNG/chooser state, events consumed):
        within a child's safe prefix the child makes the very same picks
        as its parent, so a parent-built snapshot fast-forwards a child
        scheduler whose gate holds a *larger* constraint set.

        With ``serialize=True`` the chooser travels as a pickle blob
        (cheaper to capture; every restore unpickles a fresh copy).
        """
        if serialize:
            chooser: Any = pickle.dumps(
                self._chooser, protocol=pickle.HIGHEST_PROTOCOL
            )
        else:
            chooser = copy.deepcopy(self._chooser)
        return (
            self.cursor.position,
            self.gate.counter.capture(),
            chooser,
            self._seen_events,
        )

    def restore_resume_state(self, state: Tuple[Any, ...]) -> None:
        """Fast-forward this scheduler from :meth:`capture_resume_state`.

        Call instead of ``on_run_start`` (the machine resuming from a
        snapshot skips that hook); the gate keeps *this* scheduler's
        constraints — only the execution-progress state is loaded.
        """
        position, counter_state, chooser, seen = state
        self.cursor = SketchCursor(self.log)
        self.cursor.position = position
        self.gate = ConstraintGate(self.constraints)
        self.gate.counter.restore(counter_state)
        if isinstance(chooser, bytes):
            self._chooser = pickle.loads(chooser)
        else:
            self._chooser = copy.deepcopy(chooser)
        self._seen_events = seen

    def describe(self) -> str:
        return (
            f"PIR(sketch={self.log.sketch.value}, "
            f"constraints={len(self.constraints)}, seed={self.base_seed})"
        )
