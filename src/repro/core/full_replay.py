"""Complete-log deterministic replay.

Once any attempt reproduces the recorded failure, PRES saves the attempt's
*complete* schedule (one thread id per step).  From that point on, replay
is not probabilistic anymore: :func:`replay_complete` re-executes the exact
interleaving, every time, which is the paper's "after a bug is reproduced
once, PRES can reproduce it every time".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.recorder import Oracle, apply_oracle
from repro.errors import SketchFormatError
from repro.sim.machine import Machine, MachineConfig
from repro.sim.program import Program
from repro.sim.scheduler import FixedOrderScheduler
from repro.sim.trace import Trace


@dataclass
class CompleteLog:
    """A fully deterministic replay recipe for one reproduced bug."""

    program_name: str
    schedule: List[int] = field(default_factory=list)
    config: MachineConfig = field(default_factory=MachineConfig)
    failure_signature: Optional[tuple] = None

    def to_json(self) -> str:
        """Serialize for attaching to a bug report; see :meth:`from_json`."""
        return json.dumps(
            {
                "program": self.program_name,
                "schedule": self.schedule,
                "ncpus": self.config.ncpus,
                "max_steps": self.config.max_steps,
                "kernel_seed": self.config.kernel_seed,
                "failure_signature": list(self.failure_signature)
                if self.failure_signature
                else None,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CompleteLog":
        try:
            payload = json.loads(text)
            signature = payload["failure_signature"]
            return cls(
                program_name=payload["program"],
                schedule=list(payload["schedule"]),
                config=MachineConfig(
                    ncpus=payload["ncpus"],
                    max_steps=payload["max_steps"],
                    kernel_seed=payload["kernel_seed"],
                ),
                failure_signature=tuple(signature) if signature else None,
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise SketchFormatError(f"corrupt complete log: {exc}") from None


def replay_complete(
    program: Program,
    log: CompleteLog,
    oracle: Optional[Oracle] = None,
) -> Trace:
    """Re-execute a reproduced bug's exact interleaving."""
    machine = Machine(program, FixedOrderScheduler(log.schedule), log.config)
    trace = machine.run()
    failure = apply_oracle(trace, oracle)
    if failure is not None and trace.failure is None:
        trace.failure = failure
    return trace
