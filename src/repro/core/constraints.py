"""Ordering constraints for replay attempts.

A constraint says "this program action must execute before that one".
Actions are named by :class:`EventRef` — (thread, action family, key,
occurrence) — a coordinate system that survives re-scheduling: "thread 3's
2nd access to ``buf_len``" names the same action in any attempt where
thread 3's control flow has not diverged.  (If it *has* diverged, the
sketch-conformance monitor notices and the attempt is abandoned anyway.)

Three families cover every producer:

* ``mem`` — the k-th shared-memory access by a thread to an address
  (reads, writes, atomics and frees all count in one sequence);
* ``lock`` — the k-th acquisition of a mutex by a thread (LOCK, a
  successful TRYLOCK, or a condition-wait re-acquire).  Flips of
  lock-protected races are lifted to this family, because blocking a
  thread that already holds the common mutex would deadlock the attempt.
* ``region`` — the k-th shared-memory access by a thread to a *region*:
  the address itself for scalar addresses, the tuple head for indexed
  addresses like ``("row", i)``.  The static analyzer (which sees
  program structure, not concrete indices) emits refs in this family;
  they are coarser than ``mem`` refs but resolve deterministically
  against any schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.ops import MEMORY_KINDS, Address, Op, OpKind


@dataclass(frozen=True)
class EventRef:
    """A schedule-independent name for one program action."""

    tid: int
    family: str  # "mem", "lock" or "region"
    key: Address  # address for mem, mutex name for lock, region head for region
    occurrence: int  # 1-based

    def describe(self) -> str:
        return f"T{self.tid}:{self.family}[{self.key!r}]#{self.occurrence}"


@dataclass(frozen=True)
class OrderConstraint:
    """``before`` must have executed before ``after`` may execute."""

    before: EventRef
    after: EventRef

    def describe(self) -> str:
        return f"{self.before.describe()} -> {self.after.describe()}"


#: A replay attempt's full set of constraints, hashable for dedup.
ConstraintSet = FrozenSet[OrderConstraint]


def _key_token(key: Any) -> Tuple:
    """A totally ordered stand-in for an EventRef key.

    Keys are addresses or mutex names — str, int, or tuples thereof —
    and Python refuses to compare across those types.  Tagging each
    value with a type rank (and recursing into tuples) yields a cheap
    total order without building ``repr`` strings.
    """
    if isinstance(key, tuple):
        return (2, tuple(_key_token(part) for part in key))
    if isinstance(key, str):
        return (1, key)
    return (0, "", key)


def ref_sort_key(ref: EventRef) -> Tuple:
    """Total-order key for an :class:`EventRef` (no string building)."""
    return (ref.tid, ref.family, _key_token(ref.key), ref.occurrence)


def constraint_sort_key(constraint: OrderConstraint) -> Tuple:
    """Total-order key for an :class:`OrderConstraint`.

    Replaces ``sorted(constraints, key=str)``: dataclass ``__repr__``
    interpolation dominated the per-attempt setup cost, and the sort only
    exists to make attempt identity independent of set iteration order.
    """
    return (ref_sort_key(constraint.before), ref_sort_key(constraint.after))


def canonical_order(constraints: Iterable[OrderConstraint]) -> Tuple[OrderConstraint, ...]:
    """The canonical (sorted) tuple form of a constraint set.

    Every consumer that needs a deterministic sequence — the PIR gate,
    attempt fingerprints, parallel dispatch order — sorts through here,
    so serial and parallel replays see identical constraint order.
    """
    return tuple(sorted(constraints, key=constraint_sort_key))


#: Bounded memo for :func:`ordered_constraints`; constraint sets repeat
#: heavily within a session (plan ranking, cache keys, dispatch), and
#: E12's microbench puts sort-once at ~245x cheaper than re-sorting.
_ORDERED_MEMO: Dict[ConstraintSet, Tuple[OrderConstraint, ...]] = {}
_ORDERED_MEMO_LIMIT = 4096


def ordered_constraints(constraints: ConstraintSet) -> Tuple[OrderConstraint, ...]:
    """Memoized :func:`canonical_order` over hashable constraint sets.

    For call sites outside the engine (which hoists through
    ``AttemptContext.ordered``): sanitize plan ranking, cache keys, and
    anything else that canonicalizes the same set repeatedly.
    """
    cached = _ORDERED_MEMO.get(constraints)
    if cached is None:
        if len(_ORDERED_MEMO) >= _ORDERED_MEMO_LIMIT:
            _ORDERED_MEMO.clear()
        cached = canonical_order(constraints)
        _ORDERED_MEMO[constraints] = cached
    return cached


def region_key(addr: Address) -> Address:
    """The region an address belongs to: the tuple head for indexed
    addresses (``("row", 3)`` → ``"row"``), the address itself otherwise.

    Static analysis names accesses at region granularity because loop
    indices are schedule- or parameter-dependent; the runtime maps every
    concrete access back through this function when resolving
    ``region``-family refs.
    """
    if isinstance(addr, tuple) and addr:
        return addr[0]
    return addr


def _acquire_key(event_kind: OpKind, obj: object, value: object) -> Optional[str]:
    """Lock name if this event/op is a lock acquisition, else None.

    Mutex LOCK, successful TRYLOCK, and reader-writer acquisitions all
    count: each is a scheduling point whose order a flip can target.
    """
    if event_kind in (OpKind.LOCK, OpKind.RDLOCK, OpKind.WRLOCK):
        return obj
    if event_kind is OpKind.TRYLOCK and value:
        return obj
    return None


class OccurrenceCounter:
    """Counts executed actions so EventRefs can be resolved online."""

    def __init__(self) -> None:
        self._mem: Dict[Tuple[int, Address], int] = {}
        self._lock: Dict[Tuple[int, str], int] = {}
        self._region: Dict[Tuple[int, Address], int] = {}

    def observe(self, event: Event) -> None:
        """Account one executed event."""
        if event.kind in MEMORY_KINDS:
            key = (event.tid, event.addr)
            self._mem[key] = self._mem.get(key, 0) + 1
            rkey = (event.tid, region_key(event.addr))
            self._region[rkey] = self._region.get(rkey, 0) + 1
        else:
            mutex = _acquire_key(event.kind, event.obj, event.value)
            if mutex is not None:
                key = (event.tid, mutex)
                self._lock[key] = self._lock.get(key, 0) + 1

    def executed(self, ref: EventRef) -> bool:
        """Whether the named action has already happened."""
        if ref.family == "mem":
            table = self._mem
        elif ref.family == "region":
            table = self._region
        else:
            table = self._lock
        return table.get((ref.tid, ref.key), 0) >= ref.occurrence

    def pending_matches(self, tid: int, op: Op, ref: EventRef) -> bool:
        """Whether executing ``op`` now would *be* the named action."""
        if tid != ref.tid:
            return False
        if ref.family == "mem":
            if op.kind not in MEMORY_KINDS or op.addr != ref.key:
                return False
            done = self._mem.get((tid, op.addr), 0)
            return done + 1 == ref.occurrence
        if ref.family == "region":
            if op.kind not in MEMORY_KINDS or region_key(op.addr) != ref.key:
                return False
            done = self._region.get((tid, ref.key), 0)
            return done + 1 == ref.occurrence
        # lock family: TRYLOCK may fail, but blocking it until the
        # constraint is satisfied is still sound (just conservative).
        if (
            op.kind not in (OpKind.LOCK, OpKind.TRYLOCK, OpKind.RDLOCK,
                            OpKind.WRLOCK)
            or op.obj != ref.key
        ):
            return False
        done = self._lock.get((tid, op.obj), 0)
        return done + 1 == ref.occurrence

    def mem_count(self, tid: int, addr: Address) -> int:
        return self._mem.get((tid, addr), 0)

    def lock_count(self, tid: int, mutex: str) -> int:
        return self._lock.get((tid, mutex), 0)

    def region_count(self, tid: int, region: Address) -> int:
        return self._region.get((tid, region), 0)

    def capture(self) -> Tuple[Dict, Dict, Dict]:
        """Snapshot the executed-action counts (for prefix resume)."""
        return (dict(self._mem), dict(self._lock), dict(self._region))

    def restore(self, state: Tuple[Dict, ...]) -> None:
        """Load counts captured by :meth:`capture`.

        Counts are constraint-independent — they track what *executed*,
        which is identical for a parent attempt and a child resuming
        inside the parent's safe prefix — so a snapshot taken under one
        gate is valid under another whose constraints extend it.
        """
        self._mem = dict(state[0])
        self._lock = dict(state[1])
        self._region = dict(state[2]) if len(state) > 2 else {}


class ConstraintGate:
    """Online enforcement of a constraint set during one attempt."""

    def __init__(self, constraints: Iterable[OrderConstraint]) -> None:
        self.constraints: List[OrderConstraint] = list(constraints)
        self.counter = OccurrenceCounter()
        # blocks() runs once per runnable thread per step — the hottest
        # loop in an attempt.  A constraint can only block the thread its
        # ``after`` ref names, so index by that tid and scan the (tiny)
        # relevant slice instead of the whole set.
        self._by_after_tid: Dict[int, List[OrderConstraint]] = {}
        for constraint in self.constraints:
            self._by_after_tid.setdefault(
                constraint.after.tid, []
            ).append(constraint)

    def observe(self, event: Event) -> None:
        self.counter.observe(event)

    def blocks(self, tid: int, op: Op) -> bool:
        """Whether this thread's pending op must wait for a constraint."""
        for constraint in self._by_after_tid.get(tid, ()):
            if self.counter.executed(constraint.before):
                continue
            if self.counter.pending_matches(tid, op, constraint.after):
                return True
        return False

    def all_satisfiable_by(self, finished_tids: Iterable[int]) -> bool:
        """Sanity: a ``before`` owned by a finished thread can never fire."""
        finished = set(finished_tids)
        for constraint in self.constraints:
            if (
                not self.counter.executed(constraint.before)
                and constraint.before.tid in finished
            ):
                return False
        return True


class RefIndex:
    """Maps every memory access / lock acquisition of a trace to its EventRef.

    One pass over the events assigns occurrence numbers; afterwards
    :meth:`ref_of` answers by global index.
    """

    def __init__(self, events: Iterable[Event]) -> None:
        self._refs: Dict[int, EventRef] = {}
        self._gidx: Dict[EventRef, int] = {}
        mem: Dict[Tuple[int, Address], int] = {}
        lock: Dict[Tuple[int, str], int] = {}
        for event in events:
            if event.kind in MEMORY_KINDS:
                key = (event.tid, event.addr)
                mem[key] = mem.get(key, 0) + 1
                ref = EventRef(event.tid, "mem", event.addr, mem[key])
                self._refs[event.gidx] = ref
                self._gidx[ref] = event.gidx
            else:
                mutex = _acquire_key(event.kind, event.obj, event.value)
                if mutex is not None:
                    key = (event.tid, mutex)
                    lock[key] = lock.get(key, 0) + 1
                    ref = EventRef(event.tid, "lock", mutex, lock[key])
                    self._refs[event.gidx] = ref
                    self._gidx[ref] = event.gidx

    def ref_of(self, event: Event) -> Optional[EventRef]:
        """The ref naming this event, or None for unnamed kinds."""
        return self._refs.get(event.gidx)

    def gidx_of(self, ref: EventRef) -> Optional[int]:
        """The global index of the event a ref names, if it executed."""
        return self._gidx.get(ref)

    def lock_ref(self, tid: int, mutex: str, occurrence: int) -> EventRef:
        """Explicit lock-family ref (for lifted flips)."""
        return EventRef(tid, "lock", mutex, occurrence)
