"""Systematic schedule exploration with a preemption bound (CHESS-style).

PRES's related work contrasts sketch-guided replay with *systematic*
concurrency testing à la CHESS (Musuvathi & Qadeer): enumerate thread
schedules exhaustively, bounding the number of preemptions, because most
concurrency bugs need very few.  This module implements that search over
the simulator, for three uses:

* as a verification tool on small programs — "no failure is reachable
  within b preemptions" is a *proof* at that bound, something PRES's
  probabilistic search never gives;
* as the strongest possible baseline arm for exploration comparisons;
* in tests, to establish ground truth about which failures a micro
  program can reach at all.

The DFS enumerates decision sequences.  Within a run, the default policy
is non-preemptive (keep running the current thread while it stays
runnable); a *preemption* is choosing another thread while the current one
could continue.  Context switches at blocking points are free, exactly as
in CHESS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.recorder import Oracle, apply_oracle
from repro.sim.machine import Machine, MachineConfig
from repro.sim.program import Program
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace


class _GuidedScheduler(Scheduler):
    """Follows a decision prefix, then runs non-preemptively.

    Decisions are recorded as (step, runnable tuple, chosen) so the DFS
    driver can enumerate untried alternatives position by position.
    """

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        self.choices: List[Tuple[Tuple[int, ...], int]] = []
        self._last: Optional[int] = None

    def on_run_start(self, machine: Machine) -> None:
        self.choices = []
        self._last = None

    def pick(self, machine: Machine, runnable: Sequence[int]) -> int:
        step = len(self.choices)
        if step < len(self.prefix):
            tid = self.prefix[step]
            if tid not in runnable:
                # The prefix was recorded against this same program, so a
                # mismatch can only mean nondeterminism leaked in.
                raise AssertionError(
                    f"systematic prefix step {step}: {tid} not in {runnable}"
                )
        elif self._last is not None and self._last in runnable:
            tid = self._last  # non-preemptive default
        else:
            tid = runnable[0]  # blocked: free context switch
        self.choices.append((tuple(runnable), tid))
        self._last = tid
        return tid


def _preemptions(choices: Sequence[Tuple[Tuple[int, ...], int]]) -> int:
    count = 0
    last: Optional[int] = None
    for runnable, chosen in choices:
        if last is not None and last in runnable and chosen != last:
            count += 1
        last = chosen
    return count


@dataclass
class SystematicResult:
    """Outcome of one bounded exhaustive search."""

    schedules_run: int
    exhausted: bool  # the whole bounded space was covered
    preemption_bound: int
    failure_signatures: Set[tuple] = field(default_factory=set)
    first_failing_schedule: Optional[List[int]] = None
    first_failing_trace: Optional[Trace] = None

    @property
    def found_failure(self) -> bool:
        return bool(self.failure_signatures)

    def describe(self) -> str:
        """One-line verdict: found/absent, coverage, schedule count."""
        verdict = (
            f"found {len(self.failure_signatures)} failure signature(s)"
            if self.found_failure
            else "no failure reachable"
        )
        coverage = "exhausted" if self.exhausted else "budget hit"
        return (
            f"systematic search (<= {self.preemption_bound} preemptions): "
            f"{verdict} in {self.schedules_run} schedules ({coverage})"
        )


def systematic_search(
    program: Program,
    preemption_bound: int = 2,
    max_schedules: int = 10_000,
    config: Optional[MachineConfig] = None,
    oracle: Optional[Oracle] = None,
    stop_at_first_failure: bool = False,
) -> SystematicResult:
    """Exhaustively explore schedules within a preemption bound.

    DFS over decision sequences: after each run, backtrack to the deepest
    position with an untried alternative whose choice would keep the run
    within the preemption bound, and re-run with that prefix.
    """
    machine_config = config or MachineConfig()
    result = SystematicResult(
        schedules_run=0, exhausted=False, preemption_bound=preemption_bound
    )

    # Each stack entry mirrors one decision position of the current run:
    # the runnable set seen there and the alternatives already taken.
    prefix: List[int] = []
    tried: List[Set[int]] = []

    while result.schedules_run < max_schedules:
        scheduler = _GuidedScheduler(prefix)
        machine = Machine(program, scheduler, machine_config)
        trace = machine.run()
        result.schedules_run += 1

        failure = apply_oracle(trace, oracle)
        if failure is not None:
            result.failure_signatures.add(failure.signature())
            if result.first_failing_schedule is None:
                result.first_failing_schedule = list(trace.schedule)
                result.first_failing_trace = trace
            if stop_at_first_failure:
                return result

        choices = scheduler.choices
        # Grow the bookkeeping to cover this run's depth.
        while len(tried) < len(choices):
            position = len(tried)
            tried.append({choices[position][1]})
        for position in range(len(prefix), len(choices)):
            tried[position].add(choices[position][1])

        # Backtrack: deepest position with an untried, bound-respecting
        # alternative.
        backtrack = None
        for position in range(len(choices) - 1, -1, -1):
            runnable, chosen = choices[position]
            alternatives = [t for t in runnable if t not in tried[position]]
            if not alternatives:
                continue
            base = _preemptions(choices[:position])
            last = choices[position - 1][1] if position > 0 else None
            for alt in alternatives:
                extra = int(
                    last is not None and last in runnable and alt != last
                )
                if base + extra <= preemption_bound:
                    backtrack = (position, alt)
                    break
            if backtrack:
                break

        if backtrack is None:
            result.exhausted = True
            return result

        position, alt = backtrack
        prefix = [choices[i][1] for i in range(position)] + [alt]
        tried = tried[: position + 1]
        tried[position].add(alt)

    return result
