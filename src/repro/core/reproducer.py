"""The top-level reproduction driver.

Ties everything together: given a :class:`~repro.core.recorder.RecordedRun`
whose production run failed, run replay attempts (each a fresh machine
under a :class:`~repro.core.pir.PIRScheduler`) until one re-triggers the
recorded failure, then package the winning schedule as a
:class:`~repro.core.full_replay.CompleteLog`.

The usual flow::

    recorded = record(program, sketch=SketchKind.SYNC, seed=failing_seed)
    report = reproduce(recorded)
    assert report.success and report.attempts <= 10
    trace = replay_complete(program, report.complete_log)   # every time
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.explorer import (
    AttemptRecord,
    ExplorationResult,
    ExplorerConfig,
    FeedbackExplorer,
    RandomExplorer,
)
from repro.core.epochs import EpochBoundary, EpochResumeBase, suffix_log
from repro.core.feedback import AttemptCache
from repro.core.full_replay import CompleteLog
from repro.core.parallel import (
    AttemptContext,
    ParallelExplorer,
    PoolLease,
    run_attempt,
)
from repro.core.recorder import RecordedRun
from repro.core.sketches import SKETCH_ORDER, SketchKind
from repro.core.sketchlog import derive_coarser
from repro.errors import SimUsageError
from repro.obs.session import ObsSession, resolve_session
from repro.robust.supervise import SuperviseConfig
from repro.sim.trace import Trace

if TYPE_CHECKING:  # avoid core -> sanitize/analysis imports at runtime
    from repro.analysis.static_.model import StaticPlan
    from repro.sanitize.plan import ReplayPlan


@dataclass
class DegradationRung:
    """One rung of the degradation ladder: a sketch level that was tried."""

    sketch: SketchKind
    attempts: int
    success: bool
    entries: int
    reason: str = ""

    def describe(self) -> str:
        status = "reproduced" if self.success else "failed"
        tail = f" ({self.reason})" if self.reason else ""
        return (
            f"{self.sketch.value}: {status} after {self.attempts} "
            f"attempt(s), {self.entries} entries{tail}"
        )


@dataclass
class EpochRung:
    """One rung of the epoch walk: a replay base that was tried.

    ``epoch`` is the epoch index the base opens; ``step`` its boundary
    step.  The full-history fallback rung reports ``epoch=0, step=0``.
    """

    epoch: int
    step: int
    attempts: int
    success: bool
    entries: int
    reason: str = ""

    @property
    def full_history(self) -> bool:
        return self.step == 0

    def describe(self) -> str:
        status = "reproduced" if self.success else "failed"
        base = (
            "full history" if self.full_history
            else f"epoch {self.epoch} (step {self.step})"
        )
        tail = f" ({self.reason})" if self.reason else ""
        return (
            f"{base}: {status} after {self.attempts} attempt(s), "
            f"{self.entries} suffix entries{tail}"
        )


@dataclass
class ReproductionReport:
    """Outcome of one reproduction session.

    The salvage/degradation fields are populated by
    :func:`reproduce_degraded`; a plain :func:`reproduce` leaves them at
    their defaults.  They exist so a run against a damaged log ends in a
    *structured* answer — what was salvaged, which rung succeeded, why it
    stopped — instead of an unhandled traceback.
    """

    program_name: str
    sketch: SketchKind
    success: bool
    attempts: int
    records: List[AttemptRecord] = field(default_factory=list)
    complete_log: Optional[CompleteLog] = None
    winning_constraints: ConstraintSet = frozenset()
    total_replay_steps: int = 0
    duplicate_traces: int = 0
    #: attempts answered from the attempt cache instead of a fresh replay.
    cache_hits: int = 0
    #: attempts dispatched with a schedule-prefix resume plan (see
    #: :mod:`repro.core.prefix`).  Jobs-invariant; 0 for serial runs.
    prefix_hits: int = 0
    #: entries available after salvage, when the log came from salvage
    #: (``None`` when the log was pristine).
    salvaged_entries: Optional[int] = None
    #: journal lines discarded by salvage.
    dropped_records: int = 0
    #: every rung the degradation ladder tried, in order.
    degradation_path: List[DegradationRung] = field(default_factory=list)
    #: every replay base the epoch walk tried, newest first (populated by
    #: :func:`reproduce_windowed`; empty for full-history sessions).
    epoch_path: List[EpochRung] = field(default_factory=list)
    #: the sketch level that finally reproduced the bug (success only).
    winning_sketch: Optional[SketchKind] = None
    #: structured explanation of the final outcome.
    outcome_reason: str = ""
    #: True when exploration was cut short by a KeyboardInterrupt; the
    #: report describes *partial* progress, not a verdict.
    interrupted: bool = False

    @property
    def degraded(self) -> bool:
        """Whether success came from a coarser rung than was recorded."""
        return (
            self.winning_sketch is not None and self.winning_sketch is not self.sketch
        )

    def describe(self) -> str:
        """One-line outcome summary for logs and the CLI."""
        if self.interrupted:
            status = f"INTERRUPTED after {self.attempts} attempt(s)"
        elif self.success:
            status = f"reproduced in {self.attempts} attempt(s)"
        else:
            status = f"NOT reproduced within {self.attempts} attempts"
        extras = []
        if self.degraded:
            extras.append(f"degraded to {self.winning_sketch.value}")
        if self.salvaged_entries is not None:
            extras.append(f"salvaged {self.salvaged_entries} entries")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return (
            f"{self.program_name} [{self.sketch.value} sketch]: {status}, "
            f"{self.total_replay_steps} replay steps, "
            f"{len(self.winning_constraints)} feedback constraints{suffix}"
        )


def render_report(report: ReproductionReport) -> str:
    """The canonical multi-line report text, ending in one newline.

    This is the *byte-exact* contract surface shared by the CLI
    (``pres reproduce``, which prints it, and ``--report-out``, which
    writes it) and the reproduction service (``GET /jobs/{id}/result``
    returns it): the summary line followed by one line per attempt.
    Anything that should be comparable across transports belongs here;
    anything environment-specific (store hit ratios, timings, rungs)
    stays out.
    """
    lines = [report.describe()]
    for attempt in report.records:
        lines.append(
            f"  attempt {attempt.index}: {attempt.outcome} "
            f"(constraints={attempt.n_constraints}, seed={attempt.base_seed})"
        )
    return "\n".join(lines) + "\n"


class Reproducer:
    """Runs replay attempts against one recorded run."""

    def __init__(
        self,
        recorded: RecordedRun,
        config: Optional[ExplorerConfig] = None,
        use_feedback: bool = True,
        base_policy: str = "random",
        match_output: bool = False,
        cache: Optional[AttemptCache] = None,
        obs: Optional[ObsSession] = None,
        plan: Optional["ReplayPlan"] = None,
        static_plan: Optional["StaticPlan"] = None,
        supervise: Optional["SuperviseConfig"] = None,
        chaos: object = None,
        pool: Optional[PoolLease] = None,
        epoch_base: Optional[EpochResumeBase] = None,
    ) -> None:
        if recorded.failure is None:
            raise SimUsageError(
                "the recorded run did not fail; there is nothing to reproduce"
            )
        self.recorded = recorded
        self.config = config or ExplorerConfig()
        self.plan = plan
        if plan is not None:
            self.config = dataclasses.replace(
                self.config, plan_seeds=plan.seeds_for(recorded.sketch)
            )
        self.static_plan = static_plan
        if static_plan is not None:
            self.config = dataclasses.replace(
                self.config,
                static_seeds=static_plan.seeds_for(recorded.sketch),
            )
        self.obs = resolve_session(self.config, obs)
        self.base_policy = base_policy
        #: ODR-style strictness: besides re-triggering the failure, the
        #: attempt must reproduce the production run's observable output.
        self.match_output = match_output
        #: shared attempt semantics: sorts each constraint set once per
        #: session (canonical order) instead of once per replay.
        self.context = AttemptContext(
            recorded=recorded,
            base_policy=base_policy,
            match_output=match_output,
            max_candidates_per_attempt=self.config.max_candidates_per_attempt,
            max_constraint_depth=self.config.max_constraint_depth,
            epoch_base=epoch_base,
        )
        self.explorer: object
        # Supervision and chaos live in the batch engine, so asking for
        # either routes through it even at jobs=1 (where it runs the
        # exact serial schedule: batch_size defaults to 1).
        if (
            self.config.jobs > 1
            or self.config.batch_size > 1
            or cache is not None
            or supervise is not None
            or chaos is not None
            or pool is not None
        ):
            self.explorer = ParallelExplorer(
                recorded,
                self.config,
                base_policy=base_policy,
                match_output=match_output,
                use_feedback=use_feedback,
                cache=cache,
                obs=self.obs,
                supervise=supervise,
                chaos=chaos,
                pool=pool,
                epoch_base=epoch_base,
            )
        elif use_feedback:
            self.explorer = FeedbackExplorer(
                recorded.sketch, self.config, obs=self.obs
            )
        else:
            self.explorer = RandomExplorer(
                recorded.sketch, self.config, obs=self.obs
            )

    def run(self) -> ReproductionReport:
        """Run the exploration loop and package the outcome."""
        if self.plan is not None:
            metrics = self.obs.metrics
            metrics.counter("sanitize.races_predicted").inc(
                len(self.plan.races)
            )
            metrics.counter("sanitize.deadlocks_predicted").inc(
                len(self.plan.deadlocks)
            )
            metrics.counter("sanitize.atomicity_predicted").inc(
                len(self.plan.violations)
            )
            metrics.counter("sanitize.plan_candidates").inc(
                len(self.plan.candidates)
            )
            metrics.counter("sanitize.plan_applicable").inc(
                len(self.config.plan_seeds)
            )
        if self.static_plan is not None:
            metrics = self.obs.metrics
            metrics.counter("sanitize.static.races").inc(
                len(self.static_plan.races)
            )
            metrics.counter("sanitize.static.atomicity").inc(
                len(self.static_plan.violations)
            )
            metrics.counter("sanitize.static.deadlocks").inc(
                len(self.static_plan.deadlocks)
            )
            metrics.counter("sanitize.static.candidates").inc(
                len(self.static_plan.candidates)
            )
            metrics.counter("sanitize.static.applicable").inc(
                len(self.config.static_seeds)
            )
        with self.obs.tracer.span(
            "reproduce", category="session",
            program=self.recorded.program.name,
            sketch=self.recorded.sketch.value,
        ):
            if isinstance(self.explorer, ParallelExplorer):
                result = self.explorer.explore()
            else:
                result = self.explorer.explore(self._attempt)
        report = self._package(result)
        metrics = self.obs.metrics
        metrics.counter("reproductions").inc()
        if report.success:
            metrics.counter("reproductions_succeeded").inc()
            metrics.histogram("attempts_to_match").observe(report.attempts)
        return report

    # -- one attempt -------------------------------------------------------

    def _attempt(self, constraints: ConstraintSet, seed: int) -> Tuple[Trace, bool]:
        return run_attempt(self.context, constraints, seed)

    # -- packaging ------------------------------------------------------------

    def _package(self, result: ExplorationResult) -> ReproductionReport:
        complete_log = None
        if result.success and result.winning_trace is not None:
            complete_log = CompleteLog(
                program_name=self.recorded.program.name,
                schedule=list(result.winning_trace.schedule),
                config=self.recorded.config,
                failure_signature=self.recorded.failure.signature(),
            )
        return ReproductionReport(
            program_name=self.recorded.program.name,
            sketch=self.recorded.sketch,
            success=result.success,
            attempts=result.attempt_count,
            records=result.attempts,
            complete_log=complete_log,
            winning_constraints=result.winning_constraints,
            total_replay_steps=result.total_steps,
            duplicate_traces=result.duplicate_traces,
            cache_hits=result.cache_hits,
            prefix_hits=result.prefix_hits,
            interrupted=result.interrupted,
            outcome_reason=(
                f"interrupted after {result.attempt_count} attempt(s); "
                "partial results only"
                if result.interrupted else ""
            ),
        )


def _store_cache(store: object) -> AttemptCache:
    """A write-through persistent cache over ``store`` (a store directory
    path or an open :class:`~repro.store.attempt_store.AttemptStore`).

    Imported lazily: ``repro.store`` builds on this module, so the
    dependency must not run at import time.
    """
    from repro.store.persistent import PersistentAttemptCache

    return PersistentAttemptCache(store)


def _resolve_store(store: object, cache: Optional[AttemptCache]) -> Tuple[
    Optional[AttemptCache], Optional[AttemptCache]
]:
    """Turn a ``store=`` argument into the cache to use.

    Returns ``(cache, close_after)``: ``close_after`` is the persistent
    tier this call created and must close on the way out (``None`` when
    the caller supplied the cache, or no store was requested).
    """
    if store is None:
        return cache, None
    if cache is not None:
        raise SimUsageError(
            "pass either cache= or store=, not both (wrap the store in a "
            "PersistentAttemptCache to share it with an explicit cache)"
        )
    created = _store_cache(store)
    return created, created


def reproduce(
    recorded: RecordedRun,
    config: Optional[ExplorerConfig] = None,
    use_feedback: bool = True,
    base_policy: str = "random",
    match_output: bool = False,
    jobs: Optional[int] = None,
    cache: Optional[AttemptCache] = None,
    store: object = None,
    obs: Optional[ObsSession] = None,
    plan: Optional["ReplayPlan"] = None,
    static_plan: Optional["StaticPlan"] = None,
    supervise: Optional[SuperviseConfig] = None,
    chaos: object = None,
    run: object = None,
    pool: Optional[PoolLease] = None,
) -> ReproductionReport:
    """Reproduce a recorded failure; see :class:`Reproducer`.

    :param base_policy: how unconstrained choices are made within an
        attempt — ``"random"`` (uniform) or ``"pct"`` (PCT priorities,
        the stronger stress baseline for the E9 ablation).
    :param match_output: ODR-style strictness — the attempt must also
        reproduce the production run's captured output exactly, not just
        its failure.  Typically needs more attempts.
    :param jobs: replay workers (overrides ``config.jobs``).  Results are
        identical for every value; >1 dispatches attempt batches to a
        process pool (:class:`~repro.core.parallel.ParallelExplorer`).
    :param cache: optional shared :class:`AttemptCache`; memoized attempt
        outcomes are folded in without re-running the replay.
    :param store: optional cross-run attempt store — a store directory
        path or an open :class:`~repro.store.attempt_store.AttemptStore`.
        Outcomes are written through to it and a warm store answers
        attempts without live replays; the reported schedule and winner
        are identical with the store cold, warm, or partially populated.
        Mutually exclusive with ``cache``.
    :param obs: optional :class:`~repro.obs.session.ObsSession` to record
        spans and metrics into; defaults to the ``config.trace`` /
        ``config.metrics`` knobs (off = zero cost).
    :param plan: optional sanitizer :class:`~repro.sanitize.plan.ReplayPlan`;
        its candidates applicable at ``recorded.sketch`` seed the first
        attempts (after the baseline empty attempt).
    :param static_plan: optional
        :class:`~repro.analysis.static_.model.StaticPlan` from
        ``analyze_program`` — candidates mined from program *structure*
        with no recording.  They seed at ``TIER_STATIC``, after every
        dynamic plan seed (dynamic evidence dominates static
        approximation), and any that duplicate a dynamic seed are
        dropped.  This is the sketchless-guidance path: with a NONE
        sketch and no dynamic plan, static candidates are all the
        search has beyond blind stress.
    :param supervise: optional
        :class:`~repro.robust.supervise.SuperviseConfig` — attempt
        deadlines, retry/backoff on worker death, pool rebuild limits.
        Supervision never changes the report, only how faults on the way
        to it are absorbed.
    :param chaos: optional fault injection (a ``--chaos`` spec string, a
        :class:`~repro.robust.inject.ChaosSpec`, or a
        :class:`~repro.robust.inject.ChaosInjector`); deterministic given
        the spec seed, and report-preserving by the same argument.
    :param run: optional resumable-run journal
        (:class:`~repro.robust.runs.RunJournalCache`): decided attempts
        are journaled as they fold, an interrupted run can be resumed,
        and the journal is committed when the report completes.  Layers
        *over* ``cache``/``store`` (they become its inner tier).
    :param pool: optional shared :class:`~repro.core.parallel.PoolLease`
        — borrow a host-owned warm worker pool instead of building a
        private one (the reproduction service lends one pool to every
        concurrent job).  Identical results either way.
    """
    if jobs is not None:
        config = dataclasses.replace(config or ExplorerConfig(), jobs=jobs)
    cache, close_after = _resolve_store(store, cache)
    if run is not None:
        if cache is not None:
            run.attach_inner(cache)
        cache = run
    try:
        report = Reproducer(
            recorded, config=config, use_feedback=use_feedback,
            base_policy=base_policy, match_output=match_output, cache=cache,
            obs=obs, plan=plan, static_plan=static_plan,
            supervise=supervise, chaos=chaos, pool=pool,
        ).run()
        if run is not None and not report.interrupted:
            run.commit(report)
        return report
    finally:
        if run is not None:
            run.close()
        if close_after is not None:
            close_after.close()


# -- epoch-windowed reproduction ---------------------------------------------


def epoch_replay_ladder(recorded: RecordedRun) -> List[Optional[EpochBoundary]]:
    """The replay bases an epoch walk tries, newest boundary first.

    ``None`` marks the full-history rung (replay from step 0 with the
    whole retained log).  It is only reachable when nothing was
    truncated: with entries dropped off the front, the oldest retained
    boundary *is* the horizon — the window was too tight for anything
    older, and the walk must say so instead of replaying a log that no
    longer matches step 0.
    """
    timeline = recorded.epochs
    if timeline is None:
        return [None]
    ladder: List[Optional[EpochBoundary]] = list(timeline.replay_bases())
    if timeline.truncated_entries == 0 and timeline.truncated_epochs == 0:
        ladder.append(None)
    return ladder or [None]


def reproduce_windowed(
    recorded: RecordedRun,
    config: Optional[ExplorerConfig] = None,
    use_feedback: bool = True,
    base_policy: str = "random",
    match_output: bool = False,
    seed_backoff: int = 101,
    jobs: Optional[int] = None,
    cache: Optional[AttemptCache] = None,
    store: object = None,
    obs: Optional[ObsSession] = None,
    supervise: Optional[SuperviseConfig] = None,
    chaos: object = None,
) -> ReproductionReport:
    """Reproduce an epoch-windowed recording by last-epoch in-situ replay.

    Instead of re-simulating from step 0, each rung restores one
    boundary snapshot (newest healthy boundary first) and searches only
    the epoch-local suffix of the sketch; older boundaries widen the
    search window, and the full-history rung runs last — but only when
    the window truncated nothing, the ladder's fallback rule.  The walk
    is a pure function of its inputs: budgets split exactly across rungs
    (remainder to the newest — the PRES bet is that the bug lives in the
    last epoch) and the base seed backs off deterministically per rung,
    so reports are byte-identical across ``jobs`` and across window
    sizes that cover the reproducing epoch.

    A recording without an epoch timeline falls back to plain
    :func:`reproduce` untouched.

    With a ``store``, attempt entries persisted under boundaries that
    have since been dropped from the window are expired before the walk
    (see :meth:`~repro.store.attempt_store.AttemptStore.expire_epochs`).
    """
    timeline = recorded.epochs
    if timeline is None:
        return reproduce(
            recorded, config=config, use_feedback=use_feedback,
            base_policy=base_policy, match_output=match_output, jobs=jobs,
            cache=cache, store=store, obs=obs, supervise=supervise,
            chaos=chaos,
        )
    base_config = config or ExplorerConfig()
    if jobs is not None:
        base_config = dataclasses.replace(base_config, jobs=jobs)
    session = resolve_session(base_config, obs)
    cache, close_after = _resolve_store(store, cache)
    try:
        ladder = epoch_replay_ladder(recorded)
        rung_logs = [
            recorded.log if boundary is None else suffix_log(
                recorded.log, timeline, boundary,
                program_name=recorded.program.name, seed=recorded.seed,
            )
            for boundary in ladder
        ]
        _expire_dropped_epochs(cache, recorded, rung_logs, session)
        budgets = split_rung_budgets(base_config.max_attempts, len(ladder))
        shared_cache = cache if cache is not None else AttemptCache()
        path: List[EpochRung] = []
        merged_records: List[AttemptRecord] = []
        total_attempts = 0
        total_steps = 0
        duplicates = 0
        cache_hits = 0
        prefix_hits = 0
        session.metrics.counter("epoch.replay_bases").inc(len(ladder))

        for index, boundary in enumerate(ladder):
            if budgets[index] <= 0:
                continue
            session.metrics.counter("epoch.rungs").inc()
            rung_log = rung_logs[index]
            epoch_base = None
            if boundary is not None:
                epoch_base = EpochResumeBase(
                    state=boundary.snapshot,
                    step=boundary.step,
                    epoch=boundary.epoch,
                )
            rung_recorded = dataclasses.replace(recorded, log=rung_log)
            rung_config = dataclasses.replace(
                base_config,
                max_attempts=budgets[index],
                base_seed=base_config.base_seed + index * seed_backoff,
            )
            span_base = "full-history" if boundary is None else (
                f"epoch {boundary.epoch}"
            )
            with session.tracer.span(
                f"epoch rung {span_base}", category="ladder",
                budget=budgets[index], entries=len(rung_log),
            ):
                report = Reproducer(
                    rung_recorded,
                    config=rung_config,
                    use_feedback=use_feedback,
                    base_policy=base_policy,
                    match_output=match_output,
                    cache=shared_cache,
                    obs=session,
                    supervise=supervise,
                    chaos=chaos,
                    epoch_base=epoch_base,
                ).run()
            total_attempts += report.attempts
            total_steps += report.total_replay_steps
            duplicates += report.duplicate_traces
            cache_hits = shared_cache.hits
            prefix_hits += report.prefix_hits
            merged_records.extend(report.records)
            path.append(
                EpochRung(
                    epoch=0 if boundary is None else boundary.epoch,
                    step=0 if boundary is None else boundary.step,
                    attempts=report.attempts,
                    success=report.success,
                    entries=len(rung_log),
                    reason="" if report.success else _rung_failure_reason(report),
                )
            )
            if report.interrupted or report.success:
                reason = ""
                if report.success:
                    session.metrics.counter("epoch.reproduced").inc()
                    reason = (
                        "reproduced from the full history"
                        if boundary is None else
                        f"reproduced from the epoch {boundary.epoch} "
                        f"boundary (step {boundary.step})"
                    )
                return dataclasses.replace(
                    report,
                    attempts=total_attempts,
                    records=merged_records,
                    total_replay_steps=total_steps,
                    duplicate_traces=duplicates,
                    cache_hits=cache_hits,
                    prefix_hits=prefix_hits,
                    epoch_path=path,
                    outcome_reason=reason or report.outcome_reason,
                )

        truncated = timeline.truncated_epochs > 0 or timeline.truncated_entries > 0
        return ReproductionReport(
            program_name=recorded.program.name,
            sketch=recorded.sketch,
            success=False,
            attempts=total_attempts,
            records=merged_records,
            total_replay_steps=total_steps,
            duplicate_traces=duplicates,
            cache_hits=cache_hits,
            prefix_hits=prefix_hits,
            epoch_path=path,
            outcome_reason=(
                "exhausted the epoch ladder within "
                f"{total_attempts} total attempt(s)"
                + (
                    "; the epoch window was too tight to reach full "
                    f"history ({timeline.truncated_epochs} truncated "
                    "epoch(s) are unreachable)"
                    if truncated else ""
                )
            ),
        )
    finally:
        if close_after is not None:
            close_after.close()


def _expire_dropped_epochs(
    cache: Optional[AttemptCache],
    recorded: RecordedRun,
    rung_logs: List["object"],
    session: ObsSession,
) -> None:
    """Expire store entries persisted under no-longer-live epoch bases.

    Only fires when the cache is store-backed: the live set is the
    fingerprints of this timeline's replay-base suffix logs (plus the
    retained full log); registered epoch entries outside it belong to
    boundaries the rolling window has dropped and can never be looked up
    again.
    """
    store = getattr(cache, "store", None)
    if store is None or not hasattr(store, "expire_epochs"):
        return
    tags = {}
    for log in rung_logs:
        if getattr(log, "base_tag", ""):
            tags[log.fingerprint()] = {
                "program": recorded.program.name,
                "seed": recorded.seed,
                "base": log.base_tag,
            }
    live = {log.fingerprint() for log in rung_logs}
    store.register_epoch_fingerprints(tags)
    report = store.expire_epochs(live)
    if report.expired:
        session.metrics.counter("store.epochs_expired").inc(len(report.expired))


# -- graceful degradation ----------------------------------------------------


def degradation_ladder(start: SketchKind) -> List[SketchKind]:
    """The rungs tried, finest first: start, then coarser down to SYNC.

    A damaged or salvaged-partial sketch may be un-followable at its
    recorded fidelity (attempts keep diverging on the torn tail), but
    because mechanisms are cumulative, a coarser projection of the same
    prefix constrains *less* and therefore diverges less — at the price
    of more attempts, which is PRES's home turf anyway.
    """
    rungs = [s for s in reversed(SKETCH_ORDER) if SketchKind.NONE.level < s.level <= start.level]
    return rungs or [SketchKind.SYNC]


def split_rung_budgets(total: int, rungs: int) -> List[int]:
    """Split an attempt budget across ladder rungs without losing any.

    ``total // rungs`` alone silently drops the remainder (budget 7 over
    5 rungs used to run only 5 attempts); the remainder goes to the
    *finest* rungs — they follow the most recorded detail, so extra
    attempts there are likeliest to pay off.  Rungs can receive 0 when
    the budget is smaller than the ladder; callers skip those entirely.
    """
    if rungs <= 0:
        return []
    base, remainder = divmod(max(0, total), rungs)
    return [base + (1 if index < remainder else 0) for index in range(rungs)]


def reproduce_degraded(
    recorded: RecordedRun,
    config: Optional[ExplorerConfig] = None,
    use_feedback: bool = True,
    base_policy: str = "random",
    match_output: bool = False,
    salvaged_entries: Optional[int] = None,
    dropped_records: int = 0,
    seed_backoff: int = 101,
    jobs: Optional[int] = None,
    cache: Optional[AttemptCache] = None,
    store: object = None,
    obs: Optional[ObsSession] = None,
    plan: Optional["ReplayPlan"] = None,
    static_plan: Optional["StaticPlan"] = None,
    supervise: Optional[SuperviseConfig] = None,
    chaos: object = None,
) -> ReproductionReport:
    """Reproduce with graceful degradation over the sketch ladder.

    Walks ``recorded.sketch`` → ... → SYNC, deriving each coarser sketch
    from the (possibly salvaged) log, splitting the attempt budget across
    rungs (exactly — remainders go to the finest rungs) and backing the
    base seed off deterministically per rung
    (``base_seed + rung_index * seed_backoff``), so the whole session is
    still a pure function of its inputs.  Always returns a structured
    :class:`ReproductionReport`; neither ``SketchFormatError`` nor
    ``ReplayDivergence`` can escape (divergences are already absorbed per
    attempt by the machine/explorer).

    Each rung's log is derived from the previous (finer) rung's — the
    mechanisms are cumulative, so chained projection is equivalent to
    projecting from the original log but touches ever-shrinking entry
    lists; :func:`derive_coarser` additionally memoizes per source log.

    :param salvaged_entries: entry count recovered by salvage, recorded
        on the report for the bug ticket (``None`` = log was pristine).
    :param dropped_records: journal lines salvage had to discard.
    :param jobs: replay workers per rung (overrides ``config.jobs``).
    :param cache: shared :class:`AttemptCache` for all rungs (one is
        created when ``None``), so a re-walk of the ladder replays
        nothing it has already learned.
    :param store: optional cross-run attempt store (a directory path or
        an open :class:`~repro.store.attempt_store.AttemptStore`); every
        rung shares the one persistent tier, so a crashed or re-run
        ladder walk resumes warm from whatever earlier rungs persisted.
        Mutually exclusive with ``cache``.
    :param obs: optional :class:`~repro.obs.session.ObsSession` shared by
        every rung, so the exported timeline shows the whole ladder walk;
        defaults to the ``config.trace`` / ``config.metrics`` knobs.
    :param plan: optional sanitizer plan; each rung seeds the candidates
        applicable at *its* sketch level, so a plan built from a rich log
        keeps helping as the ladder coarsens.
    :param static_plan: optional static plan (see :func:`reproduce`);
        each rung re-filters its candidates at that rung's sketch level,
        still behind any dynamic plan seeds.
    :param supervise: optional supervision policy, shared by every rung
        (see :func:`reproduce`).
    :param chaos: optional fault injection, shared by every rung.
    """
    cache, close_after = _resolve_store(store, cache)
    try:
        return _degraded_walk(
            recorded,
            config=config,
            use_feedback=use_feedback,
            base_policy=base_policy,
            match_output=match_output,
            salvaged_entries=salvaged_entries,
            dropped_records=dropped_records,
            seed_backoff=seed_backoff,
            jobs=jobs,
            cache=cache,
            obs=obs,
            plan=plan,
            static_plan=static_plan,
            supervise=supervise,
            chaos=chaos,
        )
    finally:
        if close_after is not None:
            close_after.close()


def _degraded_walk(
    recorded: RecordedRun,
    *,
    config: Optional[ExplorerConfig],
    use_feedback: bool,
    base_policy: str,
    match_output: bool,
    salvaged_entries: Optional[int],
    dropped_records: int,
    seed_backoff: int,
    jobs: Optional[int],
    cache: Optional[AttemptCache],
    obs: Optional[ObsSession],
    plan: Optional["ReplayPlan"],
    static_plan: Optional["StaticPlan"],
    supervise: Optional[SuperviseConfig],
    chaos: object,
) -> ReproductionReport:
    """The ladder walk behind :func:`reproduce_degraded`."""
    base_config = config or ExplorerConfig()
    if jobs is not None:
        base_config = dataclasses.replace(base_config, jobs=jobs)
    session = resolve_session(base_config, obs)
    rungs = degradation_ladder(recorded.sketch)
    budgets = split_rung_budgets(base_config.max_attempts, len(rungs))
    shared_cache = cache if cache is not None else AttemptCache()
    path: List[DegradationRung] = []
    merged_records: List[AttemptRecord] = []
    total_attempts = 0
    total_steps = 0
    duplicates = 0
    cache_hits = 0
    prefix_hits = 0
    source_log = recorded.log

    for index, rung in enumerate(rungs):
        if budgets[index] <= 0:
            continue
        session.metrics.counter("ladder_rungs").inc()
        session.metrics.histogram("rung_budget").observe(budgets[index])
        rung_log = derive_coarser(source_log, rung)
        source_log = rung_log
        rung_recorded = dataclasses.replace(
            recorded, sketch=rung, log=rung_log
        )
        rung_config = dataclasses.replace(
            base_config,
            max_attempts=budgets[index],
            base_seed=base_config.base_seed + index * seed_backoff,
        )
        with session.tracer.span(
            f"rung {rung.value}", category="ladder",
            budget=budgets[index], entries=len(rung_log),
        ):
            report = Reproducer(
                rung_recorded,
                config=rung_config,
                use_feedback=use_feedback,
                base_policy=base_policy,
                match_output=match_output,
                cache=shared_cache,
                obs=session,
                plan=plan,
                static_plan=static_plan,
                supervise=supervise,
                chaos=chaos,
            ).run()
        total_attempts += report.attempts
        total_steps += report.total_replay_steps
        duplicates += report.duplicate_traces
        cache_hits = shared_cache.hits
        prefix_hits += report.prefix_hits
        merged_records.extend(report.records)
        path.append(
            DegradationRung(
                sketch=rung,
                attempts=report.attempts,
                success=report.success,
                entries=len(rung_log),
                reason="" if report.success else _rung_failure_reason(report),
            )
        )
        if report.interrupted:
            # Ctrl-C mid-rung: stop the walk and report partial progress
            # instead of burning the remaining rungs' budgets.
            return dataclasses.replace(
                report,
                sketch=recorded.sketch,
                attempts=total_attempts,
                records=merged_records,
                total_replay_steps=total_steps,
                duplicate_traces=duplicates,
                cache_hits=cache_hits,
                prefix_hits=prefix_hits,
                salvaged_entries=salvaged_entries,
                dropped_records=dropped_records,
                degradation_path=path,
            )
        if report.success:
            return dataclasses.replace(
                report,
                sketch=recorded.sketch,
                attempts=total_attempts,
                records=merged_records,
                total_replay_steps=total_steps,
                duplicate_traces=duplicates,
                prefix_hits=prefix_hits,
                salvaged_entries=salvaged_entries,
                dropped_records=dropped_records,
                degradation_path=path,
                winning_sketch=rung,
                outcome_reason=(
                    f"reproduced at the {rung.value} rung"
                    + ("" if rung is recorded.sketch else
                       f" (degraded from {recorded.sketch.value})")
                ),
            )

    return ReproductionReport(
        program_name=recorded.program.name,
        sketch=recorded.sketch,
        success=False,
        attempts=total_attempts,
        records=merged_records,
        total_replay_steps=total_steps,
        duplicate_traces=duplicates,
        cache_hits=cache_hits,
        prefix_hits=prefix_hits,
        salvaged_entries=salvaged_entries,
        dropped_records=dropped_records,
        degradation_path=path,
        outcome_reason=(
            "exhausted the degradation ladder "
            f"({' -> '.join(r.sketch.value for r in path)}) within "
            f"{total_attempts} total attempt(s)"
        ),
    )


def _rung_failure_reason(report: ReproductionReport) -> str:
    """Summarize why one rung failed, from its attempt outcomes."""
    outcomes: dict = {}
    for record in report.records:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
    summary = ", ".join(f"{count}x {name}" for name, count in sorted(outcomes.items()))
    return summary or "no attempts ran"
