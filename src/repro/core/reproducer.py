"""The top-level reproduction driver.

Ties everything together: given a :class:`~repro.core.recorder.RecordedRun`
whose production run failed, run replay attempts (each a fresh machine
under a :class:`~repro.core.pir.PIRScheduler`) until one re-triggers the
recorded failure, then package the winning schedule as a
:class:`~repro.core.full_replay.CompleteLog`.

The usual flow::

    recorded = record(program, sketch=SketchKind.SYNC, seed=failing_seed)
    report = reproduce(recorded)
    assert report.success and report.attempts <= 10
    trace = replay_complete(program, report.complete_log)   # every time
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.explorer import (
    AttemptRecord,
    ExplorationResult,
    ExplorerConfig,
    FeedbackExplorer,
    RandomExplorer,
)
from repro.core.full_replay import CompleteLog
from repro.core.pir import PIRScheduler
from repro.core.recorder import RecordedRun, apply_oracle
from repro.core.sketches import SketchKind
from repro.errors import SimUsageError
from repro.sim.machine import Machine
from repro.sim.trace import Trace


@dataclass
class ReproductionReport:
    """Outcome of one reproduction session."""

    program_name: str
    sketch: SketchKind
    success: bool
    attempts: int
    records: List[AttemptRecord] = field(default_factory=list)
    complete_log: Optional[CompleteLog] = None
    winning_constraints: ConstraintSet = frozenset()
    total_replay_steps: int = 0
    duplicate_traces: int = 0

    def describe(self) -> str:
        """One-line outcome summary for logs and the CLI."""
        status = (
            f"reproduced in {self.attempts} attempt(s)"
            if self.success
            else f"NOT reproduced within {self.attempts} attempts"
        )
        return (
            f"{self.program_name} [{self.sketch.value} sketch]: {status}, "
            f"{self.total_replay_steps} replay steps, "
            f"{len(self.winning_constraints)} feedback constraints"
        )


class Reproducer:
    """Runs replay attempts against one recorded run."""

    def __init__(
        self,
        recorded: RecordedRun,
        config: Optional[ExplorerConfig] = None,
        use_feedback: bool = True,
        base_policy: str = "random",
        match_output: bool = False,
    ) -> None:
        if recorded.failure is None:
            raise SimUsageError(
                "the recorded run did not fail; there is nothing to reproduce"
            )
        self.recorded = recorded
        self.config = config or ExplorerConfig()
        self.base_policy = base_policy
        #: ODR-style strictness: besides re-triggering the failure, the
        #: attempt must reproduce the production run's observable output.
        self.match_output = match_output
        if use_feedback:
            self.explorer = FeedbackExplorer(recorded.sketch, self.config)
        else:
            self.explorer = RandomExplorer(recorded.sketch, self.config)

    def run(self) -> ReproductionReport:
        """Run the exploration loop and package the outcome."""
        result = self.explorer.explore(self._attempt)
        return self._package(result)

    # -- one attempt -------------------------------------------------------

    def _attempt(self, constraints: ConstraintSet, seed: int) -> Tuple[Trace, bool]:
        scheduler = PIRScheduler(
            self.recorded.log,
            sorted(constraints, key=str),
            base_seed=seed,
            base_policy=self.base_policy,
        )
        machine = Machine(self.recorded.program, scheduler, self.recorded.config)
        trace = machine.run()
        failure = apply_oracle(trace, self.recorded.oracle)
        if failure is not None and trace.failure is None:
            trace.failure = failure
        matched = (
            not trace.diverged
            and failure is not None
            and self.recorded.failure.matches(failure)
        )
        if matched and self.match_output:
            matched = trace.stdout == self.recorded.stdout
        return trace, matched

    # -- packaging ------------------------------------------------------------

    def _package(self, result: ExplorationResult) -> ReproductionReport:
        complete_log = None
        if result.success and result.winning_trace is not None:
            complete_log = CompleteLog(
                program_name=self.recorded.program.name,
                schedule=list(result.winning_trace.schedule),
                config=self.recorded.config,
                failure_signature=self.recorded.failure.signature(),
            )
        return ReproductionReport(
            program_name=self.recorded.program.name,
            sketch=self.recorded.sketch,
            success=result.success,
            attempts=result.attempt_count,
            records=result.attempts,
            complete_log=complete_log,
            winning_constraints=result.winning_constraints,
            total_replay_steps=result.total_steps,
            duplicate_traces=result.duplicate_traces,
        )


def reproduce(
    recorded: RecordedRun,
    config: Optional[ExplorerConfig] = None,
    use_feedback: bool = True,
    base_policy: str = "random",
    match_output: bool = False,
) -> ReproductionReport:
    """Reproduce a recorded failure; see :class:`Reproducer`.

    :param base_policy: how unconstrained choices are made within an
        attempt — ``"random"`` (uniform) or ``"pct"`` (PCT priorities,
        the stronger stress baseline for the E9 ablation).
    :param match_output: ODR-style strictness — the attempt must also
        reproduce the production run's captured output exactly, not just
        its failure.  Typically needs more attempts.
    """
    return Reproducer(
        recorded, config=config, use_feedback=use_feedback,
        base_policy=base_policy, match_output=match_output,
    ).run()
