"""PRES: probabilistic replay via execution sketching.

The paper's contribution, in four movements:

* :mod:`repro.core.sketches` / :mod:`repro.core.recorder` — production-run
  recording of *partial* execution information (five mechanisms: SYNC, SYS,
  FUNC, BB, RW, plus the degenerate NONE), with a virtual-time cost model
  (:mod:`repro.core.cost`) measuring what recording would have cost.
* :mod:`repro.core.pir` — the Partial-Information Replayer: a scheduler
  that enforces the recorded sketch order plus any accumulated ordering
  constraints, and detects divergence early.
* :mod:`repro.core.feedback` / :mod:`repro.core.explorer` — feedback
  generation: failed attempts are mined for happens-before races, races
  become flip constraints, duplicates are pruned, and the next attempt is
  steered.
* :mod:`repro.core.reproducer` / :mod:`repro.core.full_replay` — the
  driver loop, and the reproduce-every-time guarantee: a successful
  attempt's complete schedule replays deterministically forever after.
"""

from repro.core.cost import CostModel
from repro.core.diagnose import Diagnosis, diagnose
from repro.core.explorer import ExplorerConfig, FeedbackExplorer, RandomExplorer
from repro.core.full_replay import CompleteLog, replay_complete
from repro.core.recorder import RecordedRun, record
from repro.core.reproducer import ReproductionReport, Reproducer, reproduce
from repro.core.sketches import SKETCH_ORDER, SketchKind
from repro.core.systematic import SystematicResult, systematic_search

__all__ = [
    "CompleteLog",
    "CostModel",
    "Diagnosis",
    "ExplorerConfig",
    "FeedbackExplorer",
    "RandomExplorer",
    "RecordedRun",
    "Reproducer",
    "ReproductionReport",
    "SKETCH_ORDER",
    "SketchKind",
    "SystematicResult",
    "diagnose",
    "record",
    "replay_complete",
    "reproduce",
    "systematic_search",
]
