"""Exception hierarchy for the repro package.

Exceptions fall into two families:

* Errors raised because the *library user* misused an API
  (:class:`SimUsageError` and friends).  These propagate normally.
* Errors raised because the *simulated program* did something illegal
  (:class:`SimProgramError` and friends).  The machine converts these into
  :class:`~repro.sim.failures.Failure` records on the trace instead of
  letting them escape, because a crashing simulated program is a legitimate
  outcome that recording/replay must capture.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class SimUsageError(ReproError):
    """The host code (not the simulated program) misused a simulator API."""


class SchedulerError(ReproError):
    """A scheduler produced an invalid decision (e.g. a non-runnable tid)."""


class ReplayDivergence(ReproError):
    """A replay attempt can no longer follow its sketch or constraints.

    Raised by replay schedulers when the execution has provably diverged
    from the recorded sketch (signature mismatch, or no thread can make
    progress without violating the recorded order).  The replayer catches
    this and records a failed attempt; it never escapes to the user.
    """

    def __init__(self, reason: str, step: int = -1) -> None:
        super().__init__(reason)
        self.reason = reason
        self.step = step


class SimProgramError(ReproError):
    """Base for illegal actions performed by the simulated program."""


class SimMemoryError(SimProgramError):
    """Access to an address that does not exist (never written or freed)."""

    def __init__(self, addr: object, detail: str = "") -> None:
        message = f"invalid memory access at {addr!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.addr = addr
        self.diagnosis = detail

    def crash_site(self) -> str:
        """Schedule-independent identity of the crash.

        The dynamic parts of the address (indices like a request id) are
        stripped down to the region, because the *same* use-after-free hitting
        request 7 instead of request 1 is the same bug — what a real
        debugger would call "same faulting instruction".
        """
        region = self.addr[0] if isinstance(self.addr, tuple) and self.addr else self.addr
        return f"{self.diagnosis or 'invalid access'} in region {region!r}"


class SimSyncError(SimProgramError):
    """Illegal use of a synchronization object (e.g. unlocking a mutex the
    thread does not own)."""


class SimSyscallError(SimProgramError):
    """A simulated system call was invoked with invalid arguments."""


class SketchFormatError(ReproError):
    """A serialized sketch log could not be parsed."""


class RecorderKilled(ReproError):
    """The recorder was killed mid-run by the fault injector.

    Models the production process dying while recording — the defining
    scenario PRES must survive.  When raised, any journal the recorder was
    writing holds the flushed prefix of the run, and
    :func:`repro.robust.journal.salvage` recovers it.
    """

    def __init__(self, at_event: int) -> None:
        super().__init__(f"recorder killed at event {at_event}")
        self.at_event = at_event


class BudgetExceededError(ReproError):
    """A reproduction session ran out of its attempt or step budget."""
