"""CTrigger-style atomicity-violation inference over a sketch log.

An atomicity violation is a *window*: two accesses by one thread to the
same address that the programmer meant to be atomic, with a remote access
interleaved between them.  Four interleavings are unserializable (no
serial execution of the two code regions could produce them):

========  ======================================================
R-W-R     remote write between two local reads (stale re-read)
W-W-R     remote write between a local write and its read-back
W-R-W     remote read between two local writes (sees a half state)
R-W-W     remote write between a local read and the dependent write
          (the classic lost-update / check-then-act)
========  ======================================================

The predictor scans the RW-level sketch for exactly these shapes *as they
manifested in production*: local accesses ``a1``, ``a2`` adjacent in the
thread's per-address sequence, a remote access ``b`` logged between them,
matching one of the patterns above, with ``b`` happens-before-unordered
against both ends (an ordered interleaving is not a violation, it is
synchronization).  Each finding seeds the window pin ``a1 -> b -> a2`` —
two production-order constraints that force the next replay to rebuild
the same unserializable interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.constraints import OrderConstraint
from repro.core.sketches import SketchKind
from repro.core.sketchlog import SketchLog
from repro.sanitize.race import SketchAccess, SketchHB, TRYLOCK_PENALTY
from repro.sim.ops import Address

#: Base confidence of a manifested unserializable window.
ATOMICITY_BASE_CONFIDENCE = 0.85

#: The unserializable (local, remote, local) shapes, as R/W triples.
UNSERIALIZABLE: FrozenSet[Tuple[str, str, str]] = frozenset(
    {
        ("R", "W", "R"),
        ("W", "W", "R"),
        ("W", "R", "W"),
        ("R", "W", "W"),
    }
)


def _rw(access: SketchAccess) -> str:
    return "W" if access.is_write else "R"


@dataclass(frozen=True)
class AtomicityViolation:
    """One manifested unserializable window ``local1 -> remote -> local2``."""

    local_first: SketchAccess
    remote: SketchAccess
    local_second: SketchAccess
    addr: Address
    pattern: str  # e.g. "R-W-R"
    confidence: float

    def pins(self) -> Tuple[OrderConstraint, OrderConstraint]:
        """The window pins: ``local1 -> remote`` and ``remote -> local2``."""
        return (
            OrderConstraint(
                before=self.local_first.ref(), after=self.remote.ref()
            ),
            OrderConstraint(
                before=self.remote.ref(), after=self.local_second.ref()
            ),
        )

    def describe(self) -> str:
        """One-line summary with the pattern and confidence score."""
        return (
            f"atomicity violation ({self.pattern}) on {self.addr!r}: "
            f"{self.local_first.describe()} .. {self.remote.describe()} .. "
            f"{self.local_second.describe()} "
            f"(confidence {self.confidence:.2f})"
        )


def predict_atomicity(
    log: SketchLog, max_violations: int = 500
) -> List[AtomicityViolation]:
    """Infer manifested atomicity violations from an RW-level sketch.

    Coarser logs carry no memory accesses and yield nothing.  Findings
    are reported in log order of the closing local access, so the result
    is deterministic for a given log.
    """
    if not log.sketch.includes(SketchKind.RW):
        return []
    hb = SketchHB(log)
    violations: List[AtomicityViolation] = []
    for addr in sorted(hb.by_addr, key=repr):
        accesses = hb.by_addr[addr]
        by_tid: Dict[int, List[SketchAccess]] = {}
        for access in accesses:
            by_tid.setdefault(access.tid, []).append(access)
        for tid, locals_ in sorted(by_tid.items()):
            for a1, a2 in zip(locals_, locals_[1:]):
                for b in accesses:
                    if b.tid == tid:
                        continue
                    if not (a1.index < b.index < a2.index):
                        continue
                    pattern = (_rw(a1), _rw(b), _rw(a2))
                    if pattern not in UNSERIALIZABLE:
                        continue
                    if not (hb.concurrent(a1, b) and hb.concurrent(b, a2)):
                        continue  # synchronized interleaving, not a bug shape
                    confidence = ATOMICITY_BASE_CONFIDENCE
                    if hb.inconsistent(addr):
                        confidence = min(1.0, confidence + 0.05)
                    if a1.tentative or b.tentative or a2.tentative:
                        confidence *= TRYLOCK_PENALTY
                    violations.append(
                        AtomicityViolation(
                            local_first=a1,
                            remote=b,
                            local_second=a2,
                            addr=addr,
                            pattern="-".join(pattern),
                            confidence=round(confidence, 4),
                        )
                    )
                    if len(violations) >= max_violations:
                        return violations
    return violations
