"""Predictive sanitizer: analyze a sketch log *before* replaying.

PRES records cheap execution sketches and searches for a matching replay
afterwards.  This package shortens that search without running a single
attempt: static predictors sweep the recorded
:class:`~repro.core.sketchlog.SketchLog` for race pairs
(:mod:`~repro.sanitize.race`), unserializable atomicity windows
(:mod:`~repro.sanitize.atomicity`) and lock-order cycles
(:mod:`~repro.sanitize.deadlock`), and :func:`build_plan` folds the
findings into a ranked :class:`ReplayPlan` whose constraint sets seed the
explorers' first attempts (``ExplorerConfig.plan_seeds``).

The intended flow is *record rich, replay coarse*: analyze an RW-level
recording, then reproduce under a cheaper sketch with the plan pinning
the predicted orderings the coarse sketch no longer captures.
"""

from repro.sanitize.atomicity import (
    ATOMICITY_BASE_CONFIDENCE,
    UNSERIALIZABLE,
    AtomicityViolation,
    predict_atomicity,
)
from repro.sanitize.deadlock import (
    CYCLE_LENGTH_DECAY,
    DEADLOCK_BASE_CONFIDENCE,
    PredictedDeadlock,
    predict_deadlocks,
    sketch_lock_order,
    trigger_constraints,
)
from repro.sanitize.plan import (
    MAX_PIN_CONSTRAINTS,
    MAX_PLAN_CANDIDATES,
    PlannedCandidate,
    ReplayPlan,
    build_plan,
)
from repro.sanitize.race import (
    LOCKSET_BONUS,
    RACE_BASE_CONFIDENCE,
    TRYLOCK_PENALTY,
    PredictedRace,
    SketchAccess,
    SketchHB,
    predict_races,
    race_confidence,
)

__all__ = [
    "ATOMICITY_BASE_CONFIDENCE",
    "AtomicityViolation",
    "CYCLE_LENGTH_DECAY",
    "DEADLOCK_BASE_CONFIDENCE",
    "LOCKSET_BONUS",
    "MAX_PIN_CONSTRAINTS",
    "MAX_PLAN_CANDIDATES",
    "PlannedCandidate",
    "PredictedDeadlock",
    "PredictedRace",
    "RACE_BASE_CONFIDENCE",
    "ReplayPlan",
    "SketchAccess",
    "SketchHB",
    "TRYLOCK_PENALTY",
    "UNSERIALIZABLE",
    "build_plan",
    "predict_atomicity",
    "predict_deadlocks",
    "predict_races",
    "race_confidence",
    "sketch_lock_order",
    "trigger_constraints",
]
