"""Hybrid lockset + happens-before race prediction over a sketch log.

A recorded :class:`~repro.core.sketchlog.SketchLog` is a *total order* of
production events with no values attached — poorer than a trace, but rich
enough at the RW level to predict races without running a single replay:
each entry names (thread, op kind, key), memory entries carry the address,
and occurrence numbers fall out of simple counting (the RW log records
every shared access, so per-(thread, address) entry counts equal the
:class:`~repro.core.constraints.OccurrenceCounter` coordinates the replay
gate uses).

The sweep rebuilds the happens-before relation the log supports:

* program order within each thread;
* ``UNLOCK -> LOCK`` (and ``COND_WAIT``'s lock release) per mutex;
* reader-writer and semaphore release -> acquire, accumulated
  conservatively;
* ``SPAWN`` -> child's first event — child tids are not recorded, but the
  simulator assigns tids sequentially in spawn execution order, so the
  k-th SPAWN entry in the log created thread k;
* child's last event -> ``JOIN`` (the join entry's key *is* the tid);
* barrier arrivals, approximated as each arrival joining all earlier
  arrivals of the same barrier;
* channel ``send`` -> the same-ranked ``recv``.

Value-blindness is handled conservatively and *scored*: a ``TRYLOCK``
entry does not say whether it succeeded, so it is treated as an
acquisition and every prediction built on top of one carries a confidence
penalty; condition-variable signals do not name the woken thread, so
those edges are simply dropped (fewer HB edges can only add predictions,
never hide one).

The lockset half of the hybrid: per-address Eraser-style candidate sets
are intersected during the same sweep, and a race on an address with an
*empty* lockset (shared, written, never consistently protected) is
upgraded — that is the classic under-protection signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.vector_clock import VectorClock
from repro.core.constraints import EventRef, OrderConstraint
from repro.core.sketches import SketchKind
from repro.core.sketchlog import SketchLog
from repro.sim.ops import MEMORY_KINDS, WRITE_KINDS, Address, OpKind

#: Base confidence of a race predicted from a full RW order.
RACE_BASE_CONFIDENCE = 0.9
#: Extra confidence when the address's lockset is Eraser-inconsistent.
LOCKSET_BONUS = 0.05
#: Multiplier applied once per prediction that leans on an assumed-
#: successful TRYLOCK (the log does not record the outcome).
TRYLOCK_PENALTY = 0.75


@dataclass(frozen=True)
class SketchAccess:
    """One memory access as a sketch log names it."""

    tid: int
    kind: OpKind
    addr: Address
    index: int  # position in the sketch log
    occurrence: int  # k-th access by ``tid`` to ``addr`` (1-based)
    #: locks held at the access, with acquisition occurrences.
    held: Tuple[Tuple[str, int], ...] = ()
    #: whether any held lock was acquired via TRYLOCK (outcome unrecorded).
    tentative: bool = False

    @property
    def is_write(self) -> bool:
        """Whether this access writes (WRITE / RMW / CAS / FREE)."""
        return self.kind in WRITE_KINDS

    def ref(self) -> EventRef:
        """The schedule-independent replay coordinate of this access."""
        return EventRef(self.tid, "mem", self.addr, self.occurrence)

    def describe(self) -> str:
        """Render as ``T2 write buf#3``."""
        return f"T{self.tid} {self.kind.value} {self.addr!r}#{self.occurrence}"


@dataclass(frozen=True)
class PredictedRace:
    """Two conflicting accesses the recorded HB relation leaves unordered.

    ``first`` preceded ``second`` in the production order; replaying them
    in that same order is what reproduces whatever the production run
    observed, so the seed constraint *pins* production order rather than
    flipping it.
    """

    first: SketchAccess
    second: SketchAccess
    addr: Address
    confidence: float

    def pin(self) -> OrderConstraint:
        """The production-order pin: ``first`` before ``second``."""
        return OrderConstraint(before=self.first.ref(), after=self.second.ref())

    def describe(self) -> str:
        """One-line summary with the confidence score."""
        return (
            f"race on {self.addr!r}: {self.first.describe()} || "
            f"{self.second.describe()} (confidence {self.confidence:.2f})"
        )


class SketchHB:
    """Happens-before sweep over sketch entries (shared by the predictors).

    Exposes the per-entry vector clocks, the per-address access history
    and the Eraser lockset verdicts; :func:`predict_races` and
    :mod:`repro.sanitize.atomicity` are both thin layers over it.
    """

    def __init__(self, log: SketchLog) -> None:
        self.log = log
        self.entry_vcs: List[VectorClock] = []
        #: every memory access, in log order.
        self.accesses: List[SketchAccess] = []
        #: addr -> accesses, in log order.
        self.by_addr: Dict[Address, List[SketchAccess]] = {}
        #: addr -> Eraser candidate lockset (None until first access).
        self.locksets: Dict[Address, Set[str]] = {}
        #: addr -> tids that touched it / whether any access wrote.
        self._addr_tids: Dict[Address, Set[int]] = {}
        self._addr_written: Dict[Address, bool] = {}
        self._sweep()

    def inconsistent(self, addr: Address) -> bool:
        """Eraser verdict: shared, written, and never fully lock-protected."""
        return (
            not self.locksets.get(addr, {None})
            and len(self._addr_tids.get(addr, ())) > 1
            and self._addr_written.get(addr, False)
        )

    def concurrent(self, a: SketchAccess, b: SketchAccess) -> bool:
        """Whether the recorded HB relation orders neither access."""
        va, vb = self.entry_vcs[a.index], self.entry_vcs[b.index]
        return not va.leq(vb) and not vb.leq(va)

    # -- the sweep -------------------------------------------------------

    def _sweep(self) -> None:
        zero = VectorClock.zero()
        thread_vc: Dict[int, VectorClock] = {}
        mutex_vc: Dict[str, VectorClock] = {}
        rwlock_vc: Dict[str, VectorClock] = {}
        sem_vc: Dict[str, VectorClock] = {}
        pending: Dict[int, VectorClock] = {}  # joined at tid's next entry
        barrier_vc: Dict[str, VectorClock] = {}
        channel_sends: Dict[str, List[VectorClock]] = {}
        channel_recvs: Dict[str, int] = {}
        spawned = 0

        mem_counts: Dict[Tuple[int, Address], int] = {}
        lock_counts: Dict[Tuple[int, str], int] = {}
        #: tid -> mutex -> (acquisition occurrence, via trylock)
        held: Dict[int, Dict[str, Tuple[int, bool]]] = {}

        for index, entry in enumerate(self.log):
            tid, kind, key = entry.tid, entry.kind, entry.key
            vc = thread_vc.get(tid, zero)

            # Incoming edges ------------------------------------------------
            if tid in pending:
                vc = vc.join(pending.pop(tid))
            if kind in (OpKind.LOCK, OpKind.TRYLOCK):
                vc = vc.join(mutex_vc.get(key, zero))
            elif kind in (OpKind.RDLOCK, OpKind.WRLOCK):
                vc = vc.join(rwlock_vc.get(key, zero))
            elif kind is OpKind.SEM_ACQUIRE:
                vc = vc.join(sem_vc.get(key, zero))
            elif kind is OpKind.JOIN:
                vc = vc.join(thread_vc.get(key, zero))
            elif kind is OpKind.BARRIER_WAIT:
                # Approximation (the tripping arrival is not recorded):
                # each arrival happens-after every earlier arrival.
                vc = vc.join(barrier_vc.get(key, zero))
            elif kind is OpKind.SYSCALL and self._syscall_name(key) in (
                "recv", "try_recv",
            ):
                chan = self._syscall_arg(key)
                if chan is not None:
                    k = channel_recvs.get(chan, 0)
                    sends = channel_sends.get(chan, [])
                    if k < len(sends):
                        vc = vc.join(sends[k])
                    channel_recvs[chan] = k + 1

            vc = vc.tick(tid)
            thread_vc[tid] = vc
            self.entry_vcs.append(vc)

            # Lockset maintenance -------------------------------------------
            tid_held = held.setdefault(tid, {})
            if kind in (OpKind.LOCK, OpKind.RDLOCK, OpKind.WRLOCK, OpKind.TRYLOCK):
                count_key = (tid, key)
                lock_counts[count_key] = lock_counts.get(count_key, 0) + 1
                tid_held[key] = (lock_counts[count_key], kind is OpKind.TRYLOCK)
            elif kind in (OpKind.UNLOCK, OpKind.RWUNLOCK):
                tid_held.pop(key, None)
            elif kind is OpKind.COND_WAIT:
                _, lock_name = key
                tid_held.pop(lock_name, None)

            # Outgoing edges ------------------------------------------------
            if kind is OpKind.UNLOCK:
                mutex_vc[key] = vc
            elif kind is OpKind.RWUNLOCK:
                rwlock_vc[key] = rwlock_vc.get(key, zero).join(vc)
            elif kind is OpKind.COND_WAIT:
                _, lock_name = key
                mutex_vc[lock_name] = vc
            elif kind is OpKind.SEM_RELEASE:
                sem_vc[key] = sem_vc.get(key, zero).join(vc)
            elif kind is OpKind.BARRIER_WAIT:
                barrier_vc[key] = barrier_vc.get(key, zero).join(vc)
            elif kind is OpKind.SPAWN:
                # tids are assigned sequentially in spawn execution order
                # (main is 0), so the k-th SPAWN entry created thread k.
                spawned += 1
                pending[spawned] = pending.get(spawned, zero).join(vc)
            elif kind is OpKind.SYSCALL and self._syscall_name(key) == "send":
                chan = self._syscall_arg(key)
                if chan is not None:
                    channel_sends.setdefault(chan, []).append(vc)

            # Access bookkeeping --------------------------------------------
            if kind in MEMORY_KINDS:
                count_key = (tid, key)
                mem_counts[count_key] = mem_counts.get(count_key, 0) + 1
                access = SketchAccess(
                    tid=tid,
                    kind=kind,
                    addr=key,
                    index=index,
                    occurrence=mem_counts[count_key],
                    held=tuple(sorted(
                        (name, occ) for name, (occ, _) in tid_held.items()
                    )),
                    tentative=any(t for _, t in tid_held.values()),
                )
                self.accesses.append(access)
                self.by_addr.setdefault(key, []).append(access)
                held_names = set(tid_held)
                if key in self.locksets:
                    self.locksets[key] &= held_names
                else:
                    self.locksets[key] = set(held_names)
                self._addr_tids.setdefault(key, set()).add(tid)
                self._addr_written[key] = (
                    self._addr_written.get(key, False) or kind in WRITE_KINDS
                )

    @staticmethod
    def _syscall_name(key) -> Optional[str]:
        if isinstance(key, tuple) and key:
            return key[0]
        return None

    @staticmethod
    def _syscall_arg(key) -> Optional[str]:
        if isinstance(key, tuple) and len(key) > 1:
            return key[1]
        return None


def race_confidence(hb: SketchHB, a: SketchAccess, b: SketchAccess) -> float:
    """Score one predicted race pair in [0, 1]."""
    confidence = RACE_BASE_CONFIDENCE
    if hb.inconsistent(a.addr):
        confidence = min(1.0, confidence + LOCKSET_BONUS)
    if a.tentative or b.tentative:
        confidence *= TRYLOCK_PENALTY
    return round(confidence, 4)


def predict_races(log: SketchLog, max_races: int = 2_000) -> List[PredictedRace]:
    """Predict race pairs from a sketch log, best-effort per level.

    Memory accesses only appear in RW-level logs; coarser logs yield no
    race predictions (the deadlock predictor covers those levels).  Races
    are reported FastTrack-style — each access against the latest
    conflicting access of every other thread — in log order, so the
    result is deterministic for a given log.
    """
    if not log.sketch.includes(SketchKind.RW):
        return []
    hb = SketchHB(log)
    races: List[PredictedRace] = []
    last_read: Dict[Address, Dict[int, SketchAccess]] = {}
    last_write: Dict[Address, Dict[int, SketchAccess]] = {}
    for access in hb.accesses:
        histories = [last_write.setdefault(access.addr, {})]
        if access.is_write:
            histories.append(last_read.setdefault(access.addr, {}))
        for history in histories:
            for other_tid in sorted(history):
                if other_tid == access.tid:
                    continue
                prev = history[other_tid]
                if hb.concurrent(prev, access):
                    races.append(
                        PredictedRace(
                            first=prev,
                            second=access,
                            addr=access.addr,
                            confidence=race_confidence(hb, prev, access),
                        )
                    )
                    if len(races) >= max_races:
                        return races
        table = last_write if access.is_write else last_read
        table.setdefault(access.addr, {})[access.tid] = access
    return races
