"""Assemble sanitizer findings into a ranked, seedable ReplayPlan.

The plan is the sanitizer's contract with the replayer: a deduplicated,
confidence-ranked list of constraint sets that the explorers try *first*,
before any feedback-mined candidates (see ``TIER_PLAN`` in
:mod:`repro.core.feedback`).  Attempt 1 always stays the unconstrained
baseline attempt, so seeding a plan can never slow down a bug the
baseline already reproduces immediately.

Candidate order is fixed: the **pin-all** candidate first (every race and
atomicity pin at once, capped — production manifested the bug, so
re-pinning all of production's suspicious orderings is the single most
likely reproducer), then individual findings by descending confidence,
breaking ties toward windows that close *later* in the log (concurrency
bugs manifest near the failure).

Applicability is sketch-aware (:meth:`ReplayPlan.seeds_for`): a plan is
built from a *rich* (RW) recording but applied when replaying a coarser
projection of it — memory pins are redundant under an RW sketch and
deadlock triggers contradict any SYNC-or-richer sketch, so each candidate
only ships to the sketch levels where it can help.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.core.constraints import (
    ConstraintSet,
    EventRef,
    OrderConstraint,
    canonical_order,
    constraint_sort_key,
    ordered_constraints,
)
from repro.core.sketches import SketchKind
from repro.core.sketchlog import SketchLog, _from_jsonable, _jsonable
from repro.sanitize.atomicity import AtomicityViolation, predict_atomicity
from repro.sanitize.deadlock import PredictedDeadlock, predict_deadlocks
from repro.sanitize.race import PredictedRace, SketchAccess, predict_races
from repro.sim.ops import OpKind

#: Plan-wide caps: candidates shipped to the explorer, and constraints
#: folded into the pin-all candidate.
MAX_PLAN_CANDIDATES = 16
MAX_PIN_CONSTRAINTS = 64
#: Minimum distinct production-order pins before memory candidates ship.
#: Sparse evidence means a small schedule space that feedback mining
#: already searches in a couple of attempts — seeding a thin plan there
#: can only delay the mined candidates, never beat them.
MIN_PLAN_EVIDENCE = 10


@dataclass(frozen=True)
class PlannedCandidate:
    """One seedable constraint set, with its provenance and score."""

    constraints: ConstraintSet
    source: str  # "pin-all" | "atomicity" | "race" | "deadlock"
    confidence: float
    anchor: int  # latest log index the candidate's findings touch
    note: str = ""

    @property
    def family(self) -> str:
        """``lock`` if any constraint targets the lock family, else ``mem``."""
        for constraint in self.constraints:
            if (
                constraint.before.family == "lock"
                or constraint.after.family == "lock"
            ):
                return "lock"
        return "mem"

    def describe(self) -> str:
        """Render as ``[race 0.90] pin T1:mem[x]#2 -> T2:mem[x]#1``."""
        pins = "; ".join(
            c.describe() for c in canonical_order(self.constraints)
        )
        return f"[{self.source} {self.confidence:.2f}] {pins}"


@dataclass(frozen=True)
class ReplayPlan:
    """The sanitizer's output: ranked candidates plus the raw findings."""

    sketch: SketchKind  # level of the log the plan was built from
    candidates: Tuple[PlannedCandidate, ...] = ()
    races: Tuple[PredictedRace, ...] = ()
    deadlocks: Tuple[PredictedDeadlock, ...] = ()
    violations: Tuple[AtomicityViolation, ...] = ()

    @property
    def evidence(self) -> int:
        """Distinct production-order pins backing the memory candidates."""
        pins: Set[OrderConstraint] = set()
        for violation in self.violations:
            pins.update(violation.pins())
        for race in self.races:
            pins.add(race.pin())
        return len(pins)

    def seeds_for(self, replay_sketch: SketchKind) -> Tuple[ConstraintSet, ...]:
        """The candidate constraint sets applicable at a replay level.

        An RW sketch already pins every memory access, so nothing ships;
        memory-family candidates apply below RW *when the evidence mass
        clears* ``MIN_PLAN_EVIDENCE`` (sparse plans lose to feedback
        mining — see the constant's note); lock-family candidates
        (deadlock triggers, which *invert* the recorded order) apply only
        to sketchless replay, where no recorded order can contradict
        them.
        """
        if replay_sketch.includes(SketchKind.RW):
            return ()
        ship_mem = self.evidence >= MIN_PLAN_EVIDENCE
        seeds: List[ConstraintSet] = []
        for candidate in self.candidates:
            if candidate.family == "lock":
                if replay_sketch is not SketchKind.NONE:
                    continue
            elif not ship_mem:
                continue
            seeds.append(candidate.constraints)
        return tuple(seeds)

    def describe(self) -> str:
        """Multi-line human report of findings and the ranked candidates."""
        lines = [
            f"replay plan from {self.sketch.name} sketch: "
            f"{len(self.races)} race(s), {len(self.violations)} atomicity "
            f"violation(s), {len(self.deadlocks)} deadlock cycle(s), "
            f"{len(self.candidates)} candidate(s)"
        ]
        for race in self.races:
            lines.append(f"  {race.describe()}")
        for violation in self.violations:
            lines.append(f"  {violation.describe()}")
        for deadlock in self.deadlocks:
            lines.append(f"  {deadlock.describe()}")
        for rank, candidate in enumerate(self.candidates):
            lines.append(f"  #{rank} {candidate.describe()}")
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize the full plan (candidates and findings) to JSON."""
        payload = {
            "format": "pres-plan-v1",
            "sketch": self.sketch.name,
            "candidates": [_candidate_json(c) for c in self.candidates],
            "races": [_race_json(r) for r in self.races],
            "deadlocks": [_deadlock_json(d) for d in self.deadlocks],
            "violations": [_violation_json(v) for v in self.violations],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ReplayPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        payload = json.loads(text)
        if payload.get("format") != "pres-plan-v1":
            raise ValueError("not a PRES replay plan (missing format tag)")
        return cls(
            sketch=SketchKind[payload["sketch"]],
            candidates=tuple(
                _candidate_from(c) for c in payload["candidates"]
            ),
            races=tuple(_race_from(r) for r in payload["races"]),
            deadlocks=tuple(_deadlock_from(d) for d in payload["deadlocks"]),
            violations=tuple(
                _violation_from(v) for v in payload["violations"]
            ),
        )


def build_plan(
    log: SketchLog,
    max_candidates: int = MAX_PLAN_CANDIDATES,
    max_pin_constraints: int = MAX_PIN_CONSTRAINTS,
) -> ReplayPlan:
    """Run every predictor over a sketch log and rank the results.

    Deterministic for a given log: predictors iterate in sorted order and
    ranking ties break on canonical constraint keys, never on hashes.
    """
    races = predict_races(log)
    violations = predict_atomicity(log)
    deadlocks = predict_deadlocks(log)

    ranked: List[PlannedCandidate] = []
    seen: Set[ConstraintSet] = set()

    def add(candidate: PlannedCandidate) -> None:
        if candidate.constraints and candidate.constraints not in seen:
            seen.add(candidate.constraints)
            ranked.append(candidate)

    pin_all = _pin_all_candidate(races, violations, max_pin_constraints)
    if pin_all is not None:
        add(pin_all)

    scored: List[PlannedCandidate] = []
    for violation in violations:
        scored.append(
            PlannedCandidate(
                constraints=frozenset(violation.pins()),
                source="atomicity",
                confidence=violation.confidence,
                anchor=violation.local_second.index,
                note=violation.describe(),
            )
        )
    for race in races:
        scored.append(
            PlannedCandidate(
                constraints=frozenset({race.pin()}),
                source="race",
                confidence=race.confidence,
                anchor=race.second.index,
                note=race.describe(),
            )
        )
    for deadlock in deadlocks:
        scored.append(
            PlannedCandidate(
                constraints=deadlock.trigger,
                source="deadlock",
                confidence=deadlock.confidence,
                anchor=0,
                note=deadlock.describe(),
            )
        )
    # ordered_constraints memoizes the canonical sort per set: ranking
    # re-reads the same sets the predictors just built, so sorting each
    # once per session (not once per ranking pass) is pure savings.
    scored.sort(
        key=lambda c: (
            -c.confidence,
            -c.anchor,
            tuple(
                constraint_sort_key(x) for x in ordered_constraints(c.constraints)
            ),
        )
    )
    for candidate in scored:
        if len(ranked) >= max_candidates:
            break
        add(candidate)

    return ReplayPlan(
        sketch=log.sketch,
        candidates=tuple(ranked[:max_candidates]),
        races=tuple(races),
        deadlocks=tuple(deadlocks),
        violations=tuple(violations),
    )


def _pin_all_candidate(
    races: List[PredictedRace],
    violations: List[AtomicityViolation],
    max_pin_constraints: int,
) -> "PlannedCandidate | None":
    """The rank-0 candidate: every production-order pin at once.

    All pins agree with production order, so their union is satisfiable
    by construction (the production schedule witnesses it).  When the
    union overflows the cap, pins anchored latest in the log win.
    """
    pool: Dict[OrderConstraint, int] = {}
    best = 0.0
    for violation in violations:
        best = max(best, violation.confidence)
        for pin in violation.pins():
            anchor = violation.local_second.index
            pool[pin] = max(pool.get(pin, 0), anchor)
    for race in races:
        best = max(best, race.confidence)
        pool[race.pin()] = max(pool.get(race.pin(), 0), race.second.index)
    if not pool:
        return None
    chosen = sorted(
        pool.items(), key=lambda kv: (-kv[1], constraint_sort_key(kv[0]))
    )[:max_pin_constraints]
    return PlannedCandidate(
        constraints=frozenset(pin for pin, _ in chosen),
        source="pin-all",
        confidence=best,
        anchor=max(anchor for _, anchor in chosen),
        note=f"all {len(chosen)} production-order pins",
    )


# -- JSON helpers --------------------------------------------------------


def _ref_json(ref: EventRef) -> Dict[str, Any]:
    return {
        "tid": ref.tid,
        "family": ref.family,
        "key": _jsonable(ref.key),
        "occurrence": ref.occurrence,
    }


def _ref_from(data: Dict[str, Any]) -> EventRef:
    return EventRef(
        data["tid"], data["family"], _from_jsonable(data["key"]),
        data["occurrence"],
    )


def _constraint_json(constraint: OrderConstraint) -> Dict[str, Any]:
    return {
        "before": _ref_json(constraint.before),
        "after": _ref_json(constraint.after),
    }


def _constraint_from(data: Dict[str, Any]) -> OrderConstraint:
    return OrderConstraint(
        before=_ref_from(data["before"]), after=_ref_from(data["after"])
    )


def _constraints_json(constraints: ConstraintSet) -> List[Dict[str, Any]]:
    return [_constraint_json(c) for c in canonical_order(constraints)]


def _candidate_json(candidate: PlannedCandidate) -> Dict[str, Any]:
    return {
        "constraints": _constraints_json(candidate.constraints),
        "source": candidate.source,
        "confidence": candidate.confidence,
        "anchor": candidate.anchor,
        "note": candidate.note,
    }


def _candidate_from(data: Dict[str, Any]) -> PlannedCandidate:
    return PlannedCandidate(
        constraints=frozenset(
            _constraint_from(c) for c in data["constraints"]
        ),
        source=data["source"],
        confidence=data["confidence"],
        anchor=data["anchor"],
        note=data.get("note", ""),
    )


def _access_json(access: SketchAccess) -> Dict[str, Any]:
    return {
        "tid": access.tid,
        "kind": access.kind.value,
        "addr": _jsonable(access.addr),
        "index": access.index,
        "occurrence": access.occurrence,
        "held": [[name, occ] for name, occ in access.held],
        "tentative": access.tentative,
    }


def _access_from(data: Dict[str, Any]) -> SketchAccess:
    return SketchAccess(
        tid=data["tid"],
        kind=OpKind(data["kind"]),
        addr=_from_jsonable(data["addr"]),
        index=data["index"],
        occurrence=data["occurrence"],
        held=tuple((name, occ) for name, occ in data["held"]),
        tentative=data["tentative"],
    )


def _race_json(race: PredictedRace) -> Dict[str, Any]:
    return {
        "first": _access_json(race.first),
        "second": _access_json(race.second),
        "addr": _jsonable(race.addr),
        "confidence": race.confidence,
    }


def _race_from(data: Dict[str, Any]) -> PredictedRace:
    return PredictedRace(
        first=_access_from(data["first"]),
        second=_access_from(data["second"]),
        addr=_from_jsonable(data["addr"]),
        confidence=data["confidence"],
    )


def _violation_json(violation: AtomicityViolation) -> Dict[str, Any]:
    return {
        "local_first": _access_json(violation.local_first),
        "remote": _access_json(violation.remote),
        "local_second": _access_json(violation.local_second),
        "addr": _jsonable(violation.addr),
        "pattern": violation.pattern,
        "confidence": violation.confidence,
    }


def _violation_from(data: Dict[str, Any]) -> AtomicityViolation:
    return AtomicityViolation(
        local_first=_access_from(data["local_first"]),
        remote=_access_from(data["remote"]),
        local_second=_access_from(data["local_second"]),
        addr=_from_jsonable(data["addr"]),
        pattern=data["pattern"],
        confidence=data["confidence"],
    )


def _deadlock_json(deadlock: PredictedDeadlock) -> Dict[str, Any]:
    return {
        "cycle": list(deadlock.cycle),
        "tids": list(deadlock.tids),
        "confidence": deadlock.confidence,
        "trigger": _constraints_json(deadlock.trigger),
    }


def _deadlock_from(data: Dict[str, Any]) -> PredictedDeadlock:
    return PredictedDeadlock(
        cycle=tuple(data["cycle"]),
        tids=tuple(data["tids"]),
        confidence=data["confidence"],
        trigger=frozenset(_constraint_from(c) for c in data["trigger"]),
    )
