"""Lock-order cycle prediction straight from a sketch log.

Deadlock prediction is the one analysis a *SYNC-level* sketch can feed:
lock acquisitions and releases are exactly what the cheapest mechanism
records.  This module adapts sketch entries into the event shape
:func:`repro.analysis.lockorder.collect_lock_order` sweeps (the same
Goodlock pass the post-mortem trace analysis uses, including gate-lock
suppression) and turns each surviving cycle into *trigger constraints*:
an interleaving seed that parks every thread on its first lock of the
cycle before any neighbour reaches for it as a second lock.

Trigger constraints deliberately contradict the recorded lock order — in
production the cycle did **not** close, which is precisely why the run
survived to be recorded.  They are therefore only seedable when replay
runs without a sketch (:meth:`repro.sanitize.plan.ReplayPlan.seeds_for`
enforces that); under a SYNC-or-richer sketch the PIR scheduler would
just diverge on them.

A ``TRYLOCK`` entry does not record success, so it is treated as an
acquisition; cycles whose locks saw trylocks carry a confidence penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.analysis.lockorder import (
    LockOrderEdge,
    collect_lock_order,
    find_potential_deadlocks,
)
from repro.core.constraints import EventRef, OrderConstraint
from repro.core.sketchlog import SketchLog
from repro.sanitize.race import TRYLOCK_PENALTY
from repro.sim.ops import OpKind

#: Base confidence of a two-lock inversion predicted from a sketch.
DEADLOCK_BASE_CONFIDENCE = 0.7
#: Longer cycles need more threads to line up; decay per extra lock.
CYCLE_LENGTH_DECAY = 0.85


class _EntryEvent:
    """Adapter giving a sketch entry the attribute shape of a trace event.

    ``value`` is pinned to True so an (outcome-less) TRYLOCK entry counts
    as an acquisition — the conservative reading a predictor wants.
    """

    __slots__ = ("tid", "kind", "obj", "value", "gidx")

    def __init__(self, tid: int, kind: OpKind, obj, gidx: int) -> None:
        self.tid = tid
        self.kind = kind
        self.obj = obj
        self.value = True
        self.gidx = gidx


@dataclass(frozen=True)
class PredictedDeadlock:
    """A lock-order cycle predicted from the sketch, with trigger seeds."""

    cycle: Tuple[str, ...]
    tids: Tuple[int, ...]
    confidence: float
    #: constraints that steer a sketchless replay into the deadlock.
    trigger: FrozenSet[OrderConstraint]

    def describe(self) -> str:
        """One-line summary with the confidence score."""
        hops = " -> ".join(self.cycle + (self.cycle[0],))
        who = ", ".join(f"T{tid}" for tid in self.tids)
        return (
            f"predicted deadlock: {hops} (acquired by {who}, "
            f"confidence {self.confidence:.2f})"
        )


def sketch_lock_order(log: SketchLog) -> List[LockOrderEdge]:
    """The lock-order edges a sketch log witnesses."""
    return collect_lock_order(
        _EntryEvent(entry.tid, entry.kind, entry.key, index)
        for index, entry in enumerate(log)
    )


def _hop_edge(
    edges: List[LockOrderEdge],
    holder: str,
    acquired: str,
    avoid_tid: Optional[int],
) -> Optional[LockOrderEdge]:
    """The edge instance backing one cycle hop, preferring a fresh thread."""
    matching = [e for e in edges if e.holder == holder and e.acquired == acquired]
    for edge in matching:
        if edge.tid != avoid_tid:
            return edge
    return matching[0] if matching else None


def trigger_constraints(
    cycle: Tuple[str, ...], edges: List[LockOrderEdge]
) -> FrozenSet[OrderConstraint]:
    """Constraints that interleave a cycle's acquisitions into a deadlock.

    For each hop ``L_i -> L_{i+1}`` (thread ``t_i`` held ``L_i`` while
    acquiring ``L_{i+1}``), the trigger makes ``t_i`` acquire ``L_i``
    *before* the previous hop's thread reaches for ``L_i`` as its second
    lock — once every thread holds its first lock, the cycle closes.
    Hops whose backing edges collapse onto one thread contribute nothing
    (a thread cannot race itself).
    """
    k = len(cycle)
    hops: List[Optional[LockOrderEdge]] = []
    previous_tid: Optional[int] = None
    for i in range(k):
        edge = _hop_edge(edges, cycle[i], cycle[(i + 1) % k], previous_tid)
        hops.append(edge)
        previous_tid = edge.tid if edge is not None else None
    constraints = []
    for i in range(k):
        mine, previous = hops[i], hops[i - 1]
        if mine is None or previous is None or mine.tid == previous.tid:
            continue
        constraints.append(
            OrderConstraint(
                before=EventRef(
                    mine.tid, "lock", mine.holder, mine.holder_occurrence
                ),
                after=EventRef(
                    previous.tid, "lock", previous.acquired,
                    previous.acquired_occurrence,
                ),
            )
        )
    return frozenset(constraints)


def predict_deadlocks(log: SketchLog) -> List[PredictedDeadlock]:
    """Predict lock-order cycles (and their triggers) from a sketch log.

    Works from SYNC upward — the level hierarchy only ever *adds* entries,
    and the sweep ignores non-lock kinds.  Results are deterministic for
    a given log (the cycle finder walks locks in sorted order).
    """
    edges = sketch_lock_order(log)
    cycles, _gated = find_potential_deadlocks(edges)
    trylocked = {
        entry.key for entry in log if entry.kind is OpKind.TRYLOCK
    }
    predictions: List[PredictedDeadlock] = []
    for cycle in cycles:
        confidence = DEADLOCK_BASE_CONFIDENCE * (
            CYCLE_LENGTH_DECAY ** max(0, len(cycle.cycle) - 2)
        )
        if trylocked.intersection(cycle.cycle):
            confidence *= TRYLOCK_PENALTY
        predictions.append(
            PredictedDeadlock(
                cycle=cycle.cycle,
                tids=cycle.tids,
                confidence=round(confidence, 4),
                trigger=trigger_constraints(cycle.cycle, edges),
            )
        )
    return predictions
