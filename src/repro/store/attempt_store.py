"""Crash-safe, disk-backed store of replay-attempt outcomes.

A replay attempt is a pure function of (sketch log, constraint set, base
seed, base policy, output strictness) — which means its outcome is worth
keeping *across* processes, not just within one
(:class:`~repro.core.feedback.AttemptCache` already memoizes within a
session).  The :class:`AttemptStore` persists every outcome under a
content-addressed layout sharded by sketch-log fingerprint::

    store_root/
      meta.json                      # {"epoch": N, ...} bumped per open
      <fp[:2]>/<fp>/attempts.jsonl   # one journal shard per recorded log

Each shard is a :class:`~repro.robust.journal.JournalWriter` journal of
kind ``"attempts"`` opened with ``resume=True``: records accumulate
across runs, a torn tail (process killed mid-append) is healed on the
next open and costs at most that one record, and salvage recovers the
valid prefix of any damaged shard.  Shards never write completion
footers — a store is never "finished" — so "no completion footer" is a
shard's healthy steady state, not damage.

Recorded order and GC
---------------------

Every record carries a ``tick``: ``[epoch, n]`` where ``epoch`` is the
store-open counter from ``meta.json`` and ``n`` a per-session append
counter.  Ticks are schedule-deterministic (appends happen at the
engine's deterministic fold points), so :meth:`AttemptStore.gc` can bound
the store with a *deterministic* least-recently-recorded eviction: sort
every record by ``(epoch, n, fingerprint, seq)``, drop from the front,
rewrite the surviving shards atomically.  Crashing mid-GC leaves either
the old shard or the new one, never a half-written file.

Concurrency: one writer per store at a time is the supported mode (the
engine funnels every lookup and append through the parent process's fold
loop).  Readers of a store being written see a journal-valid prefix.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SketchFormatError
from repro.robust.atomic import atomic_write_text
from repro.robust.journal import ATTEMPTS_KIND, JournalWriter, salvage
from repro.store.codec import decode_record, encode_record

#: ``meta.json`` / shard-header format tag.
STORE_FORMAT = "pres-attempt-store"
STORE_VERSION = 1
#: File name of every shard journal.
SHARD_FILE = "attempts.jsonl"
#: File name of the store-level metadata blob.
META_FILE = "meta.json"
#: File name of the epoch-base registry (which shards replay from a
#: boundary snapshot, and from which one).
EPOCHS_FILE = "epochs.json"

__all__ = [
    "AttemptStore",
    "EpochExpiryReport",
    "GCReport",
    "ShardReport",
    "StoreStats",
    "StoreVerifyReport",
    "find_quarantine_files",
    "find_stale_files",
    "iter_shard_files",
    "verify_store",
]

#: file-name suffixes of temp files the store writes and renames away;
#: one left behind means a run was killed mid-rewrite (stale debris).
_TEMP_SUFFIXES = (".gc", ".rebuild")
#: substring marking :func:`repro.robust.atomic.atomic_writer` temp files.
_ATOMIC_TMP_MARK = ".tmp."
#: suffixes of quarantine sidecars (damage evidence, not live data).
_QUARANTINE_SUFFIXES = (".corrupt", ".quarantine")


def iter_shard_files(root: str) -> List[Tuple[str, str]]:
    """Every on-disk ``(fingerprint, shard_path)`` under ``root``, sorted."""
    found: List[Tuple[str, str]] = []
    if not os.path.isdir(root):
        return found
    for prefix in sorted(os.listdir(root)):
        prefix_dir = os.path.join(root, prefix)
        if len(prefix) != 2 or not os.path.isdir(prefix_dir):
            continue
        for fingerprint in sorted(os.listdir(prefix_dir)):
            path = os.path.join(prefix_dir, fingerprint, SHARD_FILE)
            if fingerprint.startswith(prefix) and os.path.isfile(path):
                found.append((fingerprint, path))
    return found


def _walk_files(root: str) -> List[str]:
    files: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        files.extend(os.path.join(dirpath, name) for name in sorted(filenames))
    return files


def find_stale_files(root: str) -> List[str]:
    """Temp/partial files a killed run left behind under ``root``, sorted.

    Covers the store's own rewrite temps (``*.gc``, ``*.rebuild``) and
    :func:`~repro.robust.atomic.atomic_writer` temps (``*.tmp.*``).
    All are safe to delete: each is either superseded by the file it was
    about to replace or an abandoned partial write.
    """
    stale: List[str] = []
    for path in _walk_files(root):
        name = os.path.basename(path)
        if name.endswith(_TEMP_SUFFIXES) or _ATOMIC_TMP_MARK in name:
            stale.append(path)
    return stale


def find_quarantine_files(root: str) -> List[str]:
    """Quarantine sidecars under ``root`` (rotated/damaged bytes), sorted.

    These are *evidence*, not damage: the live store no longer reads
    them.  They are reported for triage and left alone by cleaning.
    """
    return [
        path for path in _walk_files(root)
        if os.path.basename(path).endswith(_QUARANTINE_SUFFIXES)
    ]


@dataclass
class StoreStats:
    """Totals over one store (``pres store stats``)."""

    root: str
    epoch: int
    shards: int = 0
    records: int = 0
    size_bytes: int = 0
    #: shards whose header did not survive (counted, not included above).
    corrupt_shards: int = 0

    def describe(self) -> str:
        lines = [
            f"{self.root}: {self.records} attempt record(s) in "
            f"{self.shards} shard(s), {self.size_bytes} bytes, "
            f"epoch {self.epoch}"
        ]
        if self.corrupt_shards:
            lines.append(f"  {self.corrupt_shards} corrupt shard(s)")
        return "\n".join(lines)


@dataclass
class ShardReport:
    """One shard's health, as ``pres store verify`` sees it."""

    fingerprint: str
    path: str
    #: ``"ok"`` | ``"torn"`` (healable tail) | ``"corrupt"`` (header gone)
    #: | ``"committed"`` (footer anomaly) | ``"invalid-records"``.
    status: str
    records: int = 0
    dropped: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return (
            f"{self.fingerprint[:12]}: {self.status}, {self.records} "
            f"record(s), {self.dropped} dropped{tail}"
        )


@dataclass
class StoreVerifyReport:
    """Every shard's verdict (``pres store verify``)."""

    root: str
    shards: List[ShardReport] = field(default_factory=list)
    #: leftover temp/partial files from a killed run (damage: see
    #: :func:`find_stale_files`; ``pres doctor --clean`` removes them).
    stale: List[str] = field(default_factory=list)
    #: quarantine sidecars (informational: see
    #: :func:`find_quarantine_files`; not damage).
    quarantine: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every shard validated and no stale debris remains."""
        return not self.stale and all(shard.ok for shard in self.shards)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def describe(self) -> str:
        lines = [f"{self.root}: {len(self.shards)} shard(s)"]
        lines.extend("  " + shard.describe() for shard in self.shards)
        for path in self.stale:
            lines.append(f"  stale: {path} (partial write from a killed run)")
        for path in self.quarantine:
            lines.append(f"  quarantined: {path}")
        lines.append("store: " + ("ok" if self.ok else "DAMAGED"))
        return "\n".join(lines)


@dataclass
class EpochExpiryReport:
    """What one :meth:`AttemptStore.expire_epochs` pass did."""

    root: str
    #: registered epoch-base fingerprints still live after the pass.
    live: int = 0
    #: fingerprints whose registration was dropped (no longer live).
    expired: List[str] = field(default_factory=list)
    #: expired fingerprints that also had an on-disk shard removed.
    shards_removed: int = 0

    def describe(self) -> str:
        return (
            f"{self.root}: {len(self.expired)} epoch base(s) expired "
            f"({self.shards_removed} shard(s) removed), {self.live} live"
        )


@dataclass
class GCReport:
    """What one :meth:`AttemptStore.gc` pass did."""

    root: str
    max_records: int
    records_before: int = 0
    records_after: int = 0
    evicted: int = 0
    shards_removed: int = 0
    shards_rewritten: int = 0

    def describe(self) -> str:
        return (
            f"{self.root}: gc to {self.max_records} record(s): "
            f"{self.records_before} -> {self.records_after} "
            f"({self.evicted} evicted, {self.shards_rewritten} shard(s) "
            f"rewritten, {self.shards_removed} removed)"
        )


class AttemptStore:
    """The persistent shard set; see the module docstring for layout.

    Opening a store creates ``root`` if needed and bumps the epoch in
    ``meta.json``.  Shards load lazily (first :meth:`get`/:meth:`put`
    touching a fingerprint salvages its journal once), so opening a
    large store costs one small file write, not a full scan.

    :param fsync: force every appended record to stable storage (the
        same knob :class:`~repro.robust.journal.JournalWriter` takes).
    """

    def __init__(self, root: str, fsync: bool = False) -> None:
        self.root = root
        self.fsync = fsync
        #: damaged-state observations: healed torn tails, rotated corrupt
        #: shards, skipped undecodable records, unreadable ``meta.json``.
        self.salvage_events = 0
        #: records/lines moved aside into quarantine sidecars this
        #: session.  A quarantined entry is a cache *miss*, never an
        #: error: corruption on disk degrades the store to "replay it
        #: live", it does not reach the exploration loop.
        self.quarantined = 0
        #: records appended (this session).
        self.appends = 0
        #: records evicted by :meth:`gc` (this session).
        self.evictions = 0
        self._shards: Dict[str, Dict[Tuple, Any]] = {}
        self._writers: Dict[str, JournalWriter] = {}
        self._tick = 0
        #: serializes get/put/gc/close within this process, so one open
        #: store can back concurrent sessions (the reproduction service
        #: shares per-tenant stores across job threads).  The one-writer-
        #: per-store *process* contract is unchanged.
        self._lock = threading.RLock()
        os.makedirs(root, exist_ok=True)
        self.epoch = self._bump_epoch()

    # -- layout ---------------------------------------------------------

    @staticmethod
    def fingerprint_of(key: Tuple) -> str:
        """The shard fingerprint inside one ``AttemptCache.key_for`` key."""
        return key[0][2]

    def shard_path(self, fingerprint: str) -> str:
        """Where the shard for ``fingerprint`` lives (may not exist yet)."""
        return os.path.join(
            self.root, fingerprint[:2], fingerprint, SHARD_FILE
        )

    def _shard_files(self) -> List[Tuple[str, str]]:
        """Every on-disk ``(fingerprint, shard_path)``, in sorted order."""
        return iter_shard_files(self.root)

    # -- epoch ----------------------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self.root, META_FILE)

    def _bump_epoch(self) -> int:
        """Read, increment, and atomically rewrite the open counter."""
        epoch = 0
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                epoch = int(json.load(handle).get("epoch", 0))
        except FileNotFoundError:
            pass
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            # A torn meta.json costs only eviction-order fidelity for
            # older epochs, never records; restart the counter.
            self.salvage_events += 1
        epoch += 1
        atomic_write_text(
            self._meta_path(),
            json.dumps(
                {
                    "format": STORE_FORMAT,
                    "version": STORE_VERSION,
                    "epoch": epoch,
                },
                sort_keys=True,
            )
            + "\n",
        )
        return epoch

    def _next_tick(self) -> Tuple[int, int]:
        tick = (self.epoch, self._tick)
        self._tick += 1
        return tick

    # -- shard loading ---------------------------------------------------

    def _quarantine(self, path: str, entries: List[str], count: int) -> None:
        """Move damage evidence into the ``.quarantine`` sidecar.

        Best-effort by design: quarantining is bookkeeping on an
        already-degraded path, so an unwritable sidecar must not turn a
        cache miss into an exploration-loop error.
        """
        self.quarantined += count
        if not entries:
            return
        try:
            with open(path + ".quarantine", "a", encoding="utf-8") as sidecar:
                for entry in entries:
                    sidecar.write(entry.rstrip("\n") + "\n")
        except OSError:
            pass

    def _load_shard(self, fingerprint: str) -> Dict[Tuple, Any]:
        shard = self._shards.get(fingerprint)
        if shard is not None:
            return shard
        shard = {}
        damaged = False
        path = self.shard_path(fingerprint)
        if os.path.isfile(path):
            try:
                report = salvage(path)
            except OSError:
                # Unreadable shard file (permissions, I/O error): every
                # key in it is a miss; the engine replays those live.
                report = None
                self.salvage_events += 1
            if report is None:
                pass
            elif report.unrecoverable:
                # Nothing trustworthy inside; rotate it out of the way so
                # a fresh shard can grow, but keep the bytes for forensics.
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                self.salvage_events += 1
                self.quarantined += max(1, report.total_lines)
            else:
                if report.dropped_lines > 0:
                    self.salvage_events += 1
                    damaged = True
                    self._quarantine(
                        path, self._raw_tail(path, report.dropped_lines),
                        report.dropped_lines,
                    )
                for payload in report.records:
                    try:
                        key, outcome, _tick = decode_record(payload)
                    except SketchFormatError:
                        self.salvage_events += 1
                        damaged = True
                        self._quarantine(
                            path, [json.dumps(payload, sort_keys=True)], 1
                        )
                        continue
                    if self.fingerprint_of(key) != fingerprint:
                        self.salvage_events += 1  # misfiled record
                        damaged = True
                        self._quarantine(
                            path, [json.dumps(payload, sort_keys=True)], 1
                        )
                        continue
                    shard[key] = outcome
        self._shards[fingerprint] = shard
        if damaged:
            # Quarantining is a *move*: with the evidence in the sidecar,
            # rewrite the shard to just its decodable records so the next
            # verify (and every future load) sees a clean file.  Best
            # effort — a failed rewrite leaves the old miss semantics.
            try:
                self._rebuild_shard(fingerprint)
            except OSError:
                pass
        return shard

    @staticmethod
    def _raw_tail(path: str, n_lines: int) -> List[str]:
        """The last ``n_lines`` raw lines of ``path`` (damage evidence),
        captured *before* the next journal resume heals the file."""
        if n_lines <= 0:
            return []
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                return handle.read().splitlines()[-n_lines:]
        except OSError:
            return []

    def _shard_meta(self, fingerprint: str) -> Dict[str, Any]:
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
        }

    def _writer(self, fingerprint: str) -> JournalWriter:
        writer = self._writers.get(fingerprint)
        if writer is None:
            path = self.shard_path(fingerprint)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            meta = self._shard_meta(fingerprint)
            try:
                writer = JournalWriter(
                    path, ATTEMPTS_KIND, meta, fsync=self.fsync, resume=True
                )
            except SketchFormatError:
                # Wrong kind or a stray completion footer: rebuild the
                # shard from the records already loaded, then resume.
                self.salvage_events += 1
                self._rebuild_shard(fingerprint)
                writer = JournalWriter(
                    path, ATTEMPTS_KIND, meta, fsync=self.fsync, resume=True
                )
            self._writers[fingerprint] = writer
        return writer

    def _rebuild_shard(self, fingerprint: str) -> None:
        """Atomically rewrite one shard from its loaded records."""
        path = self.shard_path(fingerprint)
        temp = path + ".rebuild"
        with JournalWriter(
            temp, ATTEMPTS_KIND, self._shard_meta(fingerprint),
            fsync=self.fsync,
        ) as writer:
            for key, outcome in self._load_shard(fingerprint).items():
                writer.append(encode_record(key, outcome, self._next_tick()))
        os.replace(temp, path)

    # -- record access ---------------------------------------------------

    def get(self, key: Tuple) -> Optional[Any]:
        """The persisted outcome for one cache key, or ``None``."""
        with self._lock:
            return self._load_shard(self.fingerprint_of(key)).get(key)

    def put(self, key: Tuple, outcome: Any) -> bool:
        """Persist one outcome; True when a record was actually appended.

        Idempotent per key: a key already present in the shard (loaded
        from disk or appended earlier this session) is left alone, so
        the engine's re-put of a folded cache hit costs nothing.
        """
        with self._lock:
            fingerprint = self.fingerprint_of(key)
            shard = self._load_shard(fingerprint)
            if key in shard:
                return False
            if getattr(outcome, "spans", ()):
                outcome = replace(outcome, spans=())
            shard[key] = outcome
            self._writer(fingerprint).append(
                encode_record(key, outcome, self._next_tick())
            )
            self.appends += 1
            return True

    def close(self) -> None:
        """Close every shard writer (records are already on disk)."""
        with self._lock:
            for fingerprint in sorted(self._writers):
                self._writers[fingerprint].close()
            self._writers.clear()

    def __enter__(self) -> "AttemptStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- maintenance -----------------------------------------------------

    def stats(self) -> StoreStats:
        """Totals over the on-disk store (reads every shard)."""
        with self._lock:
            stats = StoreStats(root=self.root, epoch=self.epoch)
            for _fingerprint, path in self._shard_files():
                report = salvage(path)
                if report.unrecoverable:
                    stats.corrupt_shards += 1
                    continue
                stats.shards += 1
                stats.records += len(report.records)
                stats.size_bytes += os.path.getsize(path)
            return stats

    def verify(self) -> StoreVerifyReport:
        """Validate every shard end to end (``pres store verify``).

        Delegates to the module-level :func:`verify_store`; see there
        for the read-only contract.
        """
        return verify_store(self.root)

    def gc(self, max_records: int) -> GCReport:
        """Bound the store to ``max_records``, evicting oldest-recorded
        first.

        Deterministic: records sort by ``(epoch, n, fingerprint, seq)``
        — the recorded-order tick, with the shard address breaking
        (cross-process) ties — so two GC passes over equal stores evict
        equal records.  Surviving shards are rewritten atomically
        (journal to a temp file, then rename); emptied shards are
        removed along with their directories.  Also heals any torn tail
        or undecodable record it passes over.
        """
        if max_records < 0:
            raise ValueError(f"max_records must be >= 0, got {max_records}")
        with self._lock:
            return self._gc_locked(max_records)

    def _gc_locked(self, max_records: int) -> GCReport:
        out = GCReport(root=self.root, max_records=max_records)
        # Writers hold open handles into files about to be replaced.
        self.close()
        self._shards.clear()

        entries: List[Tuple[int, int, str, int, Any]] = []
        per_shard_total: Dict[str, int] = {}
        damaged: Dict[str, bool] = {}
        for fingerprint, path in self._shard_files():
            report = salvage(path)
            if report.unrecoverable:
                os.replace(path, path + ".corrupt")
                self.salvage_events += 1
                continue
            if report.dropped_lines > 0:
                self.salvage_events += 1
                damaged[fingerprint] = True
            kept = 0
            for seq, payload in enumerate(report.records):
                try:
                    _key, _outcome, tick = decode_record(payload)
                except SketchFormatError:
                    self.salvage_events += 1
                    damaged[fingerprint] = True
                    continue
                entries.append((tick[0], tick[1], fingerprint, seq, payload))
                kept += 1
            per_shard_total[fingerprint] = kept

        out.records_before = len(entries)
        entries.sort(key=lambda entry: entry[:4])
        evict = max(0, len(entries) - max_records)
        survivors = entries[evict:]
        out.evicted = evict
        out.records_after = len(survivors)
        self.evictions += evict

        surviving: Dict[str, List[Any]] = {}
        for _epoch, _n, fingerprint, _seq, payload in survivors:
            surviving.setdefault(fingerprint, []).append(payload)

        for fingerprint in sorted(per_shard_total):
            payloads = surviving.get(fingerprint, [])
            path = self.shard_path(fingerprint)
            if not payloads:
                os.unlink(path)
                self._remove_empty_dirs(path)
                out.shards_removed += 1
                continue
            if (
                len(payloads) == per_shard_total[fingerprint]
                and not damaged.get(fingerprint)
            ):
                continue  # untouched, healthy shard: leave the file alone
            temp = path + ".gc"
            with JournalWriter(
                temp, ATTEMPTS_KIND, self._shard_meta(fingerprint),
                fsync=self.fsync,
            ) as writer:
                for payload in payloads:
                    writer.append(payload)
            os.replace(temp, path)
            out.shards_rewritten += 1
        return out

    # -- epoch-base expiry ----------------------------------------------
    #
    # Not to be confused with the store's *open counter* (also called
    # "epoch" in ``meta.json``): the registry below tracks recording-side
    # epoch boundaries — shards whose sketch fingerprint is bound to a
    # boundary snapshot.  Once the rolling window drops a boundary, its
    # suffix-log fingerprint can never be looked up again (the fingerprint
    # carries the boundary identity), so the shard is dead weight that
    # ordinary LRU gc would only reclaim under record pressure.

    def _epochs_path(self) -> str:
        return os.path.join(self.root, EPOCHS_FILE)

    def _load_epoch_registry(self) -> Dict[str, Any]:
        try:
            with open(self._epochs_path(), "r", encoding="utf-8") as handle:
                bases = json.load(handle).get("bases", {})
                if isinstance(bases, dict):
                    return bases
        except FileNotFoundError:
            return {}
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            pass
        # A torn registry costs only expiry bookkeeping, never records.
        self.salvage_events += 1
        return {}

    def _write_epoch_registry(self, bases: Dict[str, Any]) -> None:
        atomic_write_text(
            self._epochs_path(),
            json.dumps(
                {
                    "format": STORE_FORMAT,
                    "version": STORE_VERSION,
                    "bases": {k: bases[k] for k in sorted(bases)},
                },
                sort_keys=True,
            )
            + "\n",
        )

    def register_epoch_fingerprints(self, tags: Dict[str, Any]) -> None:
        """Record that these sketch fingerprints are epoch-base-bound.

        ``tags`` maps fingerprint -> descriptive metadata (program, seed,
        boundary tag).  Merged into ``epochs.json`` atomically; repeat
        registrations of a live base are idempotent.
        """
        if not tags:
            return
        with self._lock:
            bases = self._load_epoch_registry()
            bases.update(tags)
            self._write_epoch_registry(bases)

    def expire_epochs(self, live: Any) -> EpochExpiryReport:
        """Expire attempt shards of epoch bases not in ``live``.

        ``live`` is the collection of fingerprints still reachable from
        some recording's retained window.  Registered fingerprints
        outside it are unregistered and their shards (if any) removed —
        deterministically, in sorted fingerprint order.  Fingerprints
        never registered are untouched: full-history shards do not
        expire here, only :meth:`gc` bounds those.
        """
        live_set = set(live)
        with self._lock:
            out = EpochExpiryReport(root=self.root)
            bases = self._load_epoch_registry()
            survivors: Dict[str, Any] = {}
            for fingerprint in sorted(bases):
                if fingerprint in live_set:
                    survivors[fingerprint] = bases[fingerprint]
                    continue
                out.expired.append(fingerprint)
                writer = self._writers.pop(fingerprint, None)
                if writer is not None:
                    writer.close()
                self._shards.pop(fingerprint, None)
                path = self.shard_path(fingerprint)
                if os.path.isfile(path):
                    try:
                        os.unlink(path)
                    except OSError:
                        continue
                    self._remove_empty_dirs(path)
                    out.shards_removed += 1
                    self.evictions += 1
            out.live = len(survivors)
            if out.expired:
                self._write_epoch_registry(survivors)
            return out

    def _remove_empty_dirs(self, shard_file: str) -> None:
        """Prune ``<fp>/`` and then ``<fp[:2]>/`` when they emptied out."""
        for directory in (
            os.path.dirname(shard_file),
            os.path.dirname(os.path.dirname(shard_file)),
        ):
            try:
                os.rmdir(directory)
            except OSError:
                return  # not empty (e.g. a .corrupt sibling); keep it


def verify_store(root: str) -> StoreVerifyReport:
    """Validate every shard of the store at ``root`` end to end.

    Strictly read-only — unlike opening an :class:`AttemptStore`, this
    neither creates ``root`` nor bumps the epoch in ``meta.json``, so
    ``pres store verify`` and ``pres doctor`` can run against a store
    another process owns.  Damage is *reported* (torn tails, corrupt
    headers, undecodable or misfiled records, stray footers, stale temp
    files from a killed run), never repaired — repair happens on the
    write path (:meth:`AttemptStore.put`), via :meth:`AttemptStore.gc`,
    or with ``pres doctor --clean`` for stale temp files.
    """
    out = StoreVerifyReport(
        root=root,
        stale=find_stale_files(root),
        quarantine=find_quarantine_files(root),
    )
    for fingerprint, path in iter_shard_files(root):
        try:
            report = salvage(path)
        except OSError as exc:
            out.shards.append(
                ShardReport(
                    fingerprint=fingerprint,
                    path=path,
                    status="corrupt",
                    detail=f"unreadable: {exc}",
                )
            )
            continue
        if report.unrecoverable:
            out.shards.append(
                ShardReport(
                    fingerprint=fingerprint,
                    path=path,
                    status="corrupt",
                    dropped=report.total_lines,
                    detail=report.reason,
                )
            )
            continue
        bad = 0
        detail = ""
        for payload in report.records:
            try:
                key, _outcome, _tick = decode_record(payload)
            except SketchFormatError as exc:
                bad += 1
                detail = detail or str(exc)
                continue
            if AttemptStore.fingerprint_of(key) != fingerprint:
                bad += 1
                detail = detail or "record filed under wrong fingerprint"
        if report.footer is not None:
            status = "committed"
            detail = "unexpected completion footer"
        elif report.dropped_lines > 0:
            status = "torn"
            detail = report.reason
        elif bad:
            status = "invalid-records"
        else:
            status = "ok"
        out.shards.append(
            ShardReport(
                fingerprint=fingerprint,
                path=path,
                status=status,
                records=len(report.records) - bad,
                dropped=report.dropped_lines + bad,
                detail=detail,
            )
        )
    return out
