"""The write-through tier: :class:`AttemptCache` backed by a store.

:class:`PersistentAttemptCache` is a drop-in
:class:`~repro.core.feedback.AttemptCache` whose misses fall through to
an :class:`~repro.store.attempt_store.AttemptStore` and whose puts are
written through to it.  The exploration engine
(:class:`~repro.core.parallel.ParallelExplorer`) needs no changes — it
already keys every lookup and fold through the cache interface — which
is exactly what keeps the store inside the jobs-invariance contract: a
warm store can only turn live replays into folds of identical (pure)
outcomes, never change what is explored, so the reported schedule and
winner are byte-identical with the store cold, warm, or partially
populated.

Metrics (the ``store.*`` family, see ``docs/observability.md``) are
charged at cache get/put time — the engine's deterministic batch-assembly
and fold points — so, like every other counter, they are identical for
every ``jobs`` value.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.core.feedback import AttemptCache
from repro.errors import SketchFormatError
from repro.obs.metrics import NULL_METRICS
from repro.store.attempt_store import AttemptStore

__all__ = ["PersistentAttemptCache"]


class PersistentAttemptCache(AttemptCache):
    """Two tiers: the in-memory memo in front, a disk store behind.

    * :meth:`get` — memory first; on a memory miss the shard for the
      key's sketch-log fingerprint is consulted and a disk hit is
      promoted into the memory tier (where the ``max_entries`` bound
      applies as usual).
    * :meth:`put` — memoizes in memory *and* appends to the store
      (idempotently: a key the store already holds is not re-written).

    :param store: the backing :class:`AttemptStore`, or a directory
        path to open one at.
    :param max_entries: optional bound on the *memory* tier only (see
        :class:`AttemptCache`); the disk tier is bounded separately via
        :meth:`AttemptStore.gc`.
    """

    def __init__(
        self,
        store: Union[AttemptStore, str],
        max_entries: Optional[int] = None,
    ) -> None:
        super().__init__(max_entries=max_entries)
        self.store = store if isinstance(store, AttemptStore) else AttemptStore(store)
        #: memory-tier misses answered by the disk tier.
        self.disk_hits = 0
        self.metrics = NULL_METRICS
        self._salvage_charged = 0
        self._evictions_charged = 0
        self._quarantined_charged = 0

    def bind_metrics(self, registry) -> None:
        """Charge ``store.*`` metrics into ``registry`` from now on.

        The engine binds its session registry here at construction; the
        first subsequent get/put also back-fills events (salvaged shards,
        a torn ``meta.json``) observed before binding.
        """
        self.metrics = registry

    def get(self, key: Tuple) -> Optional[object]:
        """Memory tier, then disk tier; counts hits/misses per tier.

        A disk tier that cannot be read — I/O error, undecodable shard —
        is a *miss*, never an exception: the engine replays the attempt
        live with an identical outcome (``store.errors`` counts these).
        """
        # The check-then-promote sequence must be atomic when job
        # threads share one tenant cache (the base lock is reentrant).
        with self._lock:
            if key not in self._outcomes:
                try:
                    outcome = self.store.get(key)
                except (OSError, SketchFormatError):
                    outcome = None
                    self.metrics.counter("store.errors").inc()
                if outcome is not None:
                    self.disk_hits += 1
                    self.metrics.counter("store.hits").inc()
                    # Promote, so repeated folds of this key stay in memory.
                    AttemptCache.put(self, key, outcome)
                else:
                    self.metrics.counter("store.misses").inc()
            self._sync_event_counters()
            return super().get(key)

    def put(self, key: Tuple, outcome: object) -> None:
        """Memoize and write through to the store.

        Like :meth:`get`, an unwritable disk tier degrades (the outcome
        stays memoized in memory; ``store.errors`` is charged) instead
        of failing the exploration loop.
        """
        with self._lock:
            super().put(key, outcome)
            try:
                if self.store.put(key, outcome):
                    self.metrics.counter("store.appends").inc()
            except (OSError, SketchFormatError):
                self.metrics.counter("store.errors").inc()
            self._sync_event_counters()

    def close(self) -> None:
        """Close the backing store's shard writers."""
        self.store.close()

    def __enter__(self) -> "PersistentAttemptCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _sync_event_counters(self) -> None:
        """Fold store- and eviction-event totals into the registry.

        Salvage events fire inside shard loads and evictions inside the
        memory tier's bound — both strictly within get/put calls, which
        the engine only makes at deterministic points, so draining the
        deltas here keeps the counters jobs-invariant.
        """
        salvage = self.store.salvage_events
        if salvage > self._salvage_charged:
            self.metrics.counter("store.salvage_events").inc(
                salvage - self._salvage_charged
            )
            self._salvage_charged = salvage
        quarantined = self.store.quarantined
        if quarantined > self._quarantined_charged:
            self.metrics.counter("store.quarantined").inc(
                quarantined - self._quarantined_charged
            )
            self._quarantined_charged = quarantined
        evicted = self.evictions + self.store.evictions
        if evicted > self._evictions_charged:
            self.metrics.counter("store.evictions").inc(
                evicted - self._evictions_charged
            )
            self._evictions_charged = evicted
