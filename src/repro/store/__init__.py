"""Cross-run attempt store: replay outcomes that survive the process.

PRES's costs concentrate at diagnosis time — replay attempts.  Within one
session the :class:`~repro.core.feedback.AttemptCache` already memoizes
them; this package extends the memo across sessions.  Outcomes are
journaled to a content-addressed, fingerprint-sharded store
(:class:`AttemptStore`), and :class:`PersistentAttemptCache` layers that
store behind the existing cache interface, so a *warm* reproduction of a
previously-seen recording folds its attempts straight from disk — same
schedule, same winner, strictly fewer live replays (the E14 benchmark
pins this).

Crash safety comes from the :mod:`repro.robust.journal` machinery: every
shard is an append-only checksummed journal, resumed (and healed) across
runs; a torn write costs at most one record, never the store.  See
``docs/store.md`` for the layout, keying, and GC story, and ``pres store
stats|verify|gc`` for the operator surface.
"""

from repro.store.attempt_store import (
    AttemptStore,
    EpochExpiryReport,
    GCReport,
    ShardReport,
    StoreStats,
    StoreVerifyReport,
    find_quarantine_files,
    find_stale_files,
    verify_store,
)
from repro.store.codec import (
    decode_key,
    decode_record,
    encode_key,
    encode_record,
)
from repro.store.persistent import PersistentAttemptCache

__all__ = [
    "AttemptStore",
    "EpochExpiryReport",
    "GCReport",
    "PersistentAttemptCache",
    "ShardReport",
    "StoreStats",
    "StoreVerifyReport",
    "decode_key",
    "decode_record",
    "encode_key",
    "encode_record",
    "find_quarantine_files",
    "find_stale_files",
    "verify_store",
]
