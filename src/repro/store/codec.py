"""JSON codec for persisted attempt outcomes.

The attempt store journals one record per replay attempt; each record
must survive a round trip through JSON *exactly*, because a warm run
folds decoded outcomes back into the exploration engine in place of live
replays — any drift (a candidate field lost, a tuple decoded as a list)
would change the frontier and break the store's core invariant that a
warm store only *skips* replays, never changes what is explored.

Three shapes are encoded:

* the **cache key** — everything that determines an attempt:
  ``(log_token, constraints, seed, base_policy, match_output)`` exactly
  as :meth:`repro.core.feedback.AttemptCache.key_for` builds it, with
  the log token opened up into (sketch, entries, fingerprint);
* the **outcome** — the :class:`~repro.core.parallel.AttemptOutcome`
  minus its ``spans`` (spans describe one process's wall clock and are
  stripped before any caching, in-memory or on disk);
* **candidates** — the mined next-attempt
  :class:`~repro.core.feedback.Candidate` set riding on each failed
  outcome, which the warm run re-pushes onto its frontier.

Constraint sets are serialized in :func:`~repro.core.constraints.
canonical_order`, so encoding is deterministic: the same attempt always
produces byte-identical record text (which also makes shard files
diffable across runs).  Tuples inside event keys are tagged via the
sketch-log ``_jsonable`` convention so addresses come back as tuples.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.constraints import (
    ConstraintSet,
    EventRef,
    OrderConstraint,
    canonical_order,
)
from repro.core.feedback import Candidate
from repro.core.parallel import AttemptOutcome
from repro.core.sketchlog import _from_jsonable, _jsonable
from repro.errors import SketchFormatError

__all__ = [
    "decode_key",
    "decode_record",
    "encode_key",
    "encode_record",
]


# -- constraints -------------------------------------------------------------


def _ref_json(ref: EventRef) -> Dict[str, Any]:
    return {
        "tid": ref.tid,
        "family": ref.family,
        "key": _jsonable(ref.key),
        "occurrence": ref.occurrence,
    }


def _ref_from(data: Dict[str, Any]) -> EventRef:
    return EventRef(
        tid=data["tid"],
        family=data["family"],
        key=_from_jsonable(data["key"]),
        occurrence=data["occurrence"],
    )


def _constraint_json(constraint: OrderConstraint) -> Dict[str, Any]:
    return {
        "before": _ref_json(constraint.before),
        "after": _ref_json(constraint.after),
    }


def _constraint_from(data: Dict[str, Any]) -> OrderConstraint:
    return OrderConstraint(
        before=_ref_from(data["before"]), after=_ref_from(data["after"])
    )


def _constraints_json(constraints: ConstraintSet) -> list:
    return [_constraint_json(c) for c in canonical_order(constraints)]


def _constraints_from(data: Any) -> ConstraintSet:
    return frozenset(_constraint_from(c) for c in data)


# -- keys --------------------------------------------------------------------


def encode_key(key: Tuple) -> Dict[str, Any]:
    """One :meth:`AttemptCache.key_for` key as a JSON-ready dict."""
    (sketch, entries, fingerprint), constraints, seed, policy, match = key
    return {
        "sketch": sketch,
        "entries": entries,
        "fingerprint": fingerprint,
        "constraints": _constraints_json(constraints),
        "seed": seed,
        "policy": policy,
        "match_output": bool(match),
    }


def decode_key(data: Dict[str, Any]) -> Tuple:
    """Rebuild the exact key tuple :func:`encode_key` flattened."""
    return (
        (data["sketch"], data["entries"], data["fingerprint"]),
        _constraints_from(data["constraints"]),
        data["seed"],
        data["policy"],
        bool(data["match_output"]),
    )


# -- candidates and outcomes -------------------------------------------------


def _candidate_json(candidate: Candidate) -> Dict[str, Any]:
    data = {
        "constraints": _constraints_json(candidate.constraints),
        "depth": candidate.depth,
        "anchor": candidate.anchor_gidx,
        "shape": candidate.shape,
        "tier": candidate.tier,
        "rank": candidate.rank,
    }
    # Prefix-resume provenance: present only when mined, so shards from
    # versions that predate schedule-prefix memoization decode cleanly.
    if candidate.flip is not None:
        data["flip"] = _constraint_json(candidate.flip)
    if candidate.safe_prefix:
        data["safe_prefix"] = candidate.safe_prefix
    if candidate.parent_steps:
        data["parent_steps"] = candidate.parent_steps
    return data


def _candidate_from(data: Dict[str, Any]) -> Candidate:
    flip = data.get("flip")
    return Candidate(
        constraints=_constraints_from(data["constraints"]),
        depth=data["depth"],
        anchor_gidx=data["anchor"],
        shape=data["shape"],
        tier=data["tier"],
        rank=data["rank"],
        flip=_constraint_from(flip) if flip is not None else None,
        safe_prefix=data.get("safe_prefix", 0),
        parent_steps=data.get("parent_steps", 0),
    )


def encode_record(key: Tuple, outcome: AttemptOutcome, tick: Tuple[int, int]) -> Dict[str, Any]:
    """One store record: the key, the outcome, and its recorded-order tick.

    The outcome's ``constraints``/``seed`` equal the key's by construction
    (the engine keys every memoization on the outcome itself), so they
    are stored once, on the key side.  ``spans`` are never persisted.
    """
    return {
        "key": encode_key(key),
        "outcome": {
            "outcome": outcome.outcome,
            "detail": outcome.detail,
            "steps": outcome.steps,
            "matched": outcome.matched,
            "fingerprint": outcome.fingerprint,
            "candidates": [_candidate_json(c) for c in outcome.candidates],
            "schedule": list(outcome.schedule) if outcome.schedule is not None else None,
        },
        "tick": [tick[0], tick[1]],
    }


def decode_record(data: Any) -> Tuple[Tuple, AttemptOutcome, Tuple[int, int]]:
    """Decode one store record back to ``(key, outcome, tick)``.

    Raises :class:`SketchFormatError` on structurally bad payloads, so
    shard readers can skip a damaged record instead of crashing the run.
    """
    try:
        key = decode_key(data["key"])
        raw = data["outcome"]
        schedule = raw.get("schedule")
        outcome = AttemptOutcome(
            constraints=key[1],
            seed=key[2],
            outcome=raw["outcome"],
            detail=raw["detail"],
            steps=raw["steps"],
            matched=bool(raw["matched"]),
            fingerprint=raw["fingerprint"],
            candidates=tuple(_candidate_from(c) for c in raw["candidates"]),
            schedule=tuple(schedule) if schedule is not None else None,
        )
        epoch, index = data["tick"]
        return key, outcome, (int(epoch), int(index))
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SketchFormatError(f"corrupt attempt record: {exc}") from None


def record_fingerprint(data: Any) -> Optional[str]:
    """The shard fingerprint a decoded record claims to belong to."""
    try:
        return str(data["key"]["fingerprint"])
    except (KeyError, TypeError):
        return None
