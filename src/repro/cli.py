"""Command-line interface: ``pres`` (or ``python -m repro``).

Subcommands::

    pres bugs                         list the evaluated bug suite
    pres find-seed BUG                find a failing production run
    pres record BUG [--sketch SYNC]   record a production run, show stats
    pres reproduce BUG [...]          full pipeline: record -> PIR -> log
    pres replay BUG --log FILE        deterministic replay of a saved log
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.apps import all_bugs, get_bug
from repro.bench.seeds import find_failing_seed
from repro.core.explorer import ExplorerConfig
from repro.core.full_replay import CompleteLog, replay_complete
from repro.core.diagnose import diagnose
from repro.core.recorder import record
from repro.core.reproducer import reproduce
from repro.core.sketches import parse_sketch_kind
from repro.sim import MachineConfig


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("bug", help="bug id from `pres bugs`")
    parser.add_argument("--sketch", default="sync",
                        help="none|sync|sys|func|bb|rw (default: sync)")
    parser.add_argument("--seed", type=int, default=None,
                        help="production-run seed (default: search)")
    parser.add_argument("--ncpus", type=int, default=4)


def _resolve_seed(args, spec) -> Optional[int]:
    if args.seed is not None:
        return args.seed
    print(f"searching for a failing production run of {spec.bug_id} ...")
    seed = find_failing_seed(spec, ncpus=args.ncpus)
    if seed is None:
        print("no failing seed found within the search budget", file=sys.stderr)
        return None
    print(f"found failing seed {seed}")
    return seed


def cmd_bugs(args) -> int:
    for spec in all_bugs():
        print(spec.describe())
    return 0


def cmd_find_seed(args) -> int:
    spec = get_bug(args.bug)
    seed = find_failing_seed(spec, budget=args.budget, ncpus=args.ncpus)
    if seed is None:
        print("no failing seed found", file=sys.stderr)
        return 1
    print(seed)
    return 0


def cmd_record(args) -> int:
    spec = get_bug(args.bug)
    seed = _resolve_seed(args, spec)
    if seed is None:
        return 1
    recorded = record(
        spec.make_program(),
        sketch=parse_sketch_kind(args.sketch),
        seed=seed,
        config=MachineConfig(ncpus=args.ncpus),
        oracle=spec.oracle,
    )
    print(recorded.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(recorded.log.to_json())
        print(f"sketch log written to {args.out}")
    return 0


def cmd_reproduce(args) -> int:
    spec = get_bug(args.bug)
    seed = _resolve_seed(args, spec)
    if seed is None:
        return 1
    sketch = parse_sketch_kind(args.sketch)
    recorded = record(
        spec.make_program(),
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=args.ncpus),
        oracle=spec.oracle,
    )
    if not recorded.failed:
        print("that production run did not fail; try another seed",
              file=sys.stderr)
        return 1
    print(f"production: {recorded.failure.describe()}")
    print(f"sketch: {len(recorded.log)} entries, "
          f"{recorded.stats.log_bytes} bytes, "
          f"overhead {recorded.stats.overhead_percent:.1f}%")
    report = reproduce(
        recorded,
        ExplorerConfig(max_attempts=args.max_attempts),
        use_feedback=not args.no_feedback,
    )
    print(report.describe())
    for attempt in report.records:
        print(f"  attempt {attempt.index}: {attempt.outcome} "
              f"(constraints={attempt.n_constraints}, seed={attempt.base_seed})")
    if not report.success:
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.complete_log.to_json())
        print(f"complete log written to {args.out}; replays deterministically")
    if args.trace_out:
        from repro.sim.persist import save_trace

        trace = replay_complete(
            spec.make_program(), report.complete_log, oracle=spec.oracle
        )
        save_trace(trace, args.trace_out)
        print(f"reproduced execution written to {args.trace_out}")
    return 0


def cmd_diagnose(args) -> int:
    spec = get_bug(args.bug)
    seed = _resolve_seed(args, spec)
    if seed is None:
        return 1
    sketch = parse_sketch_kind(args.sketch)
    recorded = record(
        spec.make_program(),
        sketch=sketch,
        seed=seed,
        config=MachineConfig(ncpus=args.ncpus),
        oracle=spec.oracle,
    )
    if not recorded.failed:
        print("that production run did not fail", file=sys.stderr)
        return 1
    report = reproduce(recorded, ExplorerConfig(max_attempts=args.max_attempts))
    if not report.success:
        print("could not reproduce the failure", file=sys.stderr)
        return 1
    trace = replay_complete(
        spec.make_program(), report.complete_log, oracle=spec.oracle
    )
    print(diagnose(trace).render())
    return 0


def cmd_stats(args) -> int:
    from repro.analysis import lock_order_report
    from repro.sim import Machine, RandomScheduler, trace_stats

    spec = get_bug(args.bug)
    seed = args.seed if args.seed is not None else 0
    machine = Machine(
        spec.make_program(),
        RandomScheduler(seed),
        MachineConfig(ncpus=args.ncpus),
    )
    trace = machine.run()
    print(f"run of {spec.bug_id} (seed {seed}): "
          f"{'FAILED - ' + trace.failure.describe() if trace.failed else 'clean'}")
    print(trace_stats(trace).describe())
    print(lock_order_report(trace).describe())
    return 0


def cmd_bench(args) -> int:
    from repro.bench.runner import available_experiments, run_experiment

    if args.experiment == "list":
        for name in available_experiments():
            print(name)
        return 0
    try:
        print(run_experiment(args.experiment))
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    return 0


def cmd_replay(args) -> int:
    spec = get_bug(args.bug)
    with open(args.log, "r", encoding="utf-8") as handle:
        log = CompleteLog.from_json(handle.read())
    trace = replay_complete(spec.make_program(), log, oracle=spec.oracle)
    if trace.failure is None:
        print("replay completed without the failure (wrong log?)",
              file=sys.stderr)
        return 1
    print(f"reproduced: {trace.failure.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pres",
        description="PRES: probabilistic replay with execution sketching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("bugs", help="list the evaluated bug suite")

    p_seed = sub.add_parser("find-seed", help="find a failing production run")
    p_seed.add_argument("bug")
    p_seed.add_argument("--budget", type=int, default=500)
    p_seed.add_argument("--ncpus", type=int, default=4)

    p_record = sub.add_parser("record", help="record one production run")
    _add_common(p_record)
    p_record.add_argument("--out", help="write the sketch log (JSON) here")

    p_repro = sub.add_parser("reproduce", help="record and reproduce a bug")
    _add_common(p_repro)
    p_repro.add_argument("--max-attempts", type=int, default=400)
    p_repro.add_argument("--no-feedback", action="store_true",
                         help="ablation: random re-rolls instead of feedback")
    p_repro.add_argument("--out", help="write the complete log (JSON) here")
    p_repro.add_argument("--trace-out",
                         help="write the reproduced execution (JSONL) here")

    p_diag = sub.add_parser(
        "diagnose", help="reproduce a bug and print a root-cause report"
    )
    _add_common(p_diag)
    p_diag.add_argument("--max-attempts", type=int, default=400)

    p_replay = sub.add_parser("replay", help="replay a saved complete log")
    p_replay.add_argument("bug")
    p_replay.add_argument("--log", required=True)

    p_stats = sub.add_parser(
        "stats", help="run once and print execution statistics + lock hazards"
    )
    p_stats.add_argument("bug")
    p_stats.add_argument("--seed", type=int, default=None)
    p_stats.add_argument("--ncpus", type=int, default=4)

    p_bench = sub.add_parser(
        "bench", help="render an evaluation table (t1, e1..e6, or 'list')"
    )
    p_bench.add_argument("experiment")

    return parser


_HANDLERS = {
    "bugs": cmd_bugs,
    "find-seed": cmd_find_seed,
    "record": cmd_record,
    "reproduce": cmd_reproduce,
    "diagnose": cmd_diagnose,
    "replay": cmd_replay,
    "bench": cmd_bench,
    "stats": cmd_stats,
}


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except KeyError as exc:  # unknown bug id
        print(exc.args[0], file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
